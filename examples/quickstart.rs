//! Quickstart: the paper's worked example (Figures 1–3).
//!
//! Builds the 3-advertiser / 2-slot auction from Section II-A, runs
//! winner determination, and prices the slate under all three rules.
//!
//! Run with: `cargo run --example quickstart`

use ssa::auction::ctr::{CtrModel, SeparableCtr};
use ssa::auction::ids::{AdvertiserId, SlotIndex};
use ssa::auction::pricing::price_auction;
use ssa::auction::{determine_winners, AuctionInstance, PricingRule};

fn main() {
    // Figure 2: advertiser-specific factors c_i and slot factors d_j.
    let model = SeparableCtr::new(vec![1.2, 1.1, 1.3], vec![0.3, 0.2]).expect("factors are valid");

    println!("Figure 1: separable click-through rates (ctr_ij = c_i * d_j)");
    println!("{:>14} {:>8} {:>8}", "", "slot 1", "slot 2");
    for (i, name) in ["advertiser A", "advertiser B", "advertiser C"]
        .iter()
        .enumerate()
    {
        let row: Vec<String> = (0..2u8)
            .map(|j| {
                format!(
                    "{:.2}",
                    model.ctr(AdvertiserId::from_index(i), SlotIndex(j)).value()
                )
            })
            .collect();
        println!("{:>14} {:>8} {:>8}", name, row[0], row[1]);
    }

    // Figure 3 (bids chosen to realize the paper's stated outcome).
    let instance = AuctionInstance::paper_example();
    println!("\nBids and ranking scores b_i * c_i:");
    for (entry, name) in instance.entries().iter().zip(["A", "B", "C"]) {
        println!(
            "  advertiser {name}: bid {}  factor {:.1}  score {:.3}",
            entry.bid,
            entry.advertiser_factor,
            entry.score().value()
        );
    }

    // Winner determination: "assigns slot 1 to advertiser A and slot 2 to
    // advertiser B".
    let assignment = determine_winners(&instance);
    println!("\nWinner determination:");
    for w in assignment.winners() {
        println!(
            "  slot {} -> advertiser {} (score {:.3})",
            w.slot.0 + 1,
            ["A", "B", "C"][w.advertiser.index()],
            w.score.value()
        );
    }
    println!(
        "  expected realized value: {:.4}",
        assignment.expected_value(&instance)
    );

    // Pricing under the three rules the paper names.
    for rule in [
        PricingRule::FirstPrice,
        PricingRule::GeneralizedSecondPrice,
        PricingRule::Vcg,
    ] {
        println!("\nPricing under {rule:?}:");
        for p in price_auction(&instance, rule) {
            println!(
                "  slot {} advertiser {}: {} per click",
                p.slot.0 + 1,
                ["A", "B", "C"][p.advertiser.index()],
                p.price_per_click
            );
        }
    }
}
