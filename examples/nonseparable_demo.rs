//! Non-separable winner determination with shared graph pruning
//! (Section V), plus dynamic bids from automated bidding programs.
//!
//! Run with: `cargo run --release --example nonseparable_demo`

use ssa::auction::ctr::CtrMatrix;
use ssa::auction::ids::AdvertiserId;
use ssa::auction::money::Money;
use ssa::auction::nonseparable::{determine_winners_nonseparable, NonSeparableBid};
use ssa::core::nonsep::SharedNonSeparable;
use ssa::setcover::BitSet;
use ssa::workload::{Workload, WorkloadConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let k = 4;
    let w = Workload::generate(&WorkloadConfig {
        advertisers: 600,
        phrases: 10,
        topics: 4,
        seed: 12,
        ..WorkloadConfig::default()
    });
    let n = w.advertiser_count();

    // A genuinely non-separable CTR matrix: each advertiser has its own
    // slot-response curve (some ads do relatively better in low slots).
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let base: f64 = rng.random_range(0.05..0.5);
            let decay: f64 = rng.random_range(0.5..1.1);
            (0..k)
                .map(|j| (base * decay.powi(j as i32)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    let matrix = CtrMatrix::new(rows).unwrap();
    let bids: Vec<Money> = w.advertisers.iter().map(|a| a.bid).collect();
    let interest: Vec<BitSet> = w
        .interest
        .iter()
        .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
        .collect();

    // Shared pruning across the whole round.
    let shared = SharedNonSeparable::new(n, &interest, &w.search_rates(), k);
    let occurring = vec![true; w.phrase_count()];
    let outcome = shared.resolve_round(&matrix, &bids, &interest, &occurring);

    println!(
        "Round of {} non-separable auctions over {} advertisers (k = {k}):",
        w.phrase_count(),
        n
    );
    println!(
        "  shared pruning used {} top-k merges vs {} per-slot scans unshared ({:.0}% saved)",
        outcome.aggregation_ops,
        outcome.unshared_scan_baseline,
        100.0 * (1.0 - outcome.aggregation_ops as f64 / outcome.unshared_scan_baseline as f64)
    );

    // Spot-check one phrase against the unshared pipeline.
    let q = 0;
    let phrase_bids: Vec<NonSeparableBid> = w.interest[q]
        .iter()
        .map(|&a| NonSeparableBid {
            advertiser: a,
            bid: bids[a.index()],
        })
        .collect();
    let reference = determine_winners_nonseparable(&matrix, &phrase_bids);
    let shared_assignment = outcome.assignments[q].as_ref().expect("phrase occurred");
    println!("\nphrase 0 slate (shared pruning):");
    for wnr in shared_assignment.winners() {
        println!(
            "  {} -> {} (expected realized bid {:.4})",
            wnr.slot, wnr.advertiser, wnr.score
        );
    }
    let shared_value: f64 = shared_assignment
        .winners()
        .iter()
        .map(|x| matrix_value(&matrix, x.advertiser, x.slot.index(), &bids))
        .sum();
    println!(
        "  objective: shared {shared_value:.4} vs per-phrase Hungarian {:.4}",
        reference.expected_value
    );
}

fn matrix_value(matrix: &CtrMatrix, a: AdvertiserId, slot: usize, bids: &[Money]) -> f64 {
    use ssa::auction::ctr::CtrModel;
    use ssa::auction::ids::SlotIndex;
    matrix.ctr(a, SlotIndex(slot as u8)).value() * bids[a.index()].to_f64()
}
