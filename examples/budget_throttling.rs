//! Budget uncertainty: throttled bids and the gaming demonstration.
//!
//! Shows (1) one advertiser's throttled bid being pinned down by
//! successively deeper Hoeffding-bound refinement, and (2) the
//! Section IV revenue leak when budget uncertainty is ignored, plugged by
//! throttling.
//!
//! Run with: `cargo run --example budget_throttling`

use ssa::auction::money::Money;
use ssa::core::budget::{compare_throttled, BudgetContext, OutstandingAd};
use ssa::core::engine::gaming::run_gaming_comparison;

fn main() {
    // An advertiser with budget 10, bid 3, in 2 auctions this round, with
    // four outstanding ads awaiting clicks.
    let ctx = BudgetContext {
        bid: Money::from_f64(3.0),
        remaining_budget: Money::from_f64(10.0),
        auctions_in_round: 2,
        outstanding: vec![
            OutstandingAd::new(Money::from_f64(4.0), 0.5),
            OutstandingAd::new(Money::from_f64(3.0), 0.25),
            OutstandingAd::new(Money::from_f64(2.0), 0.8),
            OutstandingAd::new(Money::from_f64(1.0), 0.6),
        ],
    };
    println!("Throttled-bid refinement (b=3.00, β=10.00, m=2, 4 outstanding ads):");
    let refiner = ctx.refiner();
    for depth in 0..=refiner.max_depth() {
        let b = refiner.bounds(depth);
        println!(
            "  depth {depth}: b̂ ∈ [{:.4}, {:.4}]  (width {:.4})",
            b.lo() / 1e6,
            b.hi() / 1e6,
            b.width() / 1e6
        );
    }
    println!("  exact: {}", ctx.throttled_bid_exact());

    // Comparing two advertisers usually terminates early.
    let rival = BudgetContext {
        remaining_budget: Money::from_f64(30.0),
        ..ctx.clone()
    };
    let outcome = compare_throttled(&ctx.refiner(), &rival.refiner());
    println!(
        "\nComparison vs a rival with β=30.00 resolved at depth {} ({:?})",
        outcome.depth_used, outcome.ordering
    );

    // The gaming demonstration: naive vs throttled over 200 rounds.
    println!("\nGaming demonstration (identical workload, 200 rounds):");
    let report = run_gaming_comparison(2024, 200);
    for p in [&report.naive, &report.throttled] {
        println!(
            "  {:?}: revenue {}  forgiven {}  clicks {} ({} beyond budget)",
            p.policy, p.revenue, p.forgiven, p.clicks, p.clicks_beyond_budget
        );
    }
    println!(
        "  naive policy gives away {:.1}% of click value",
        100.0 * report.naive_leak_fraction()
    );
}
