//! End-to-end engine simulation comparing the three winner-determination
//! strategies on one workload.
//!
//! Run with: `cargo run --release --example engine_simulation`

use ssa::core::engine::{BudgetPolicy, Engine, EngineConfig, SharingStrategy};
use ssa::workload::{Workload, WorkloadConfig};

fn main() {
    let rounds = 200;
    let make_workload = || {
        Workload::generate(&WorkloadConfig {
            advertisers: 2000,
            phrases: 16,
            topics: 4,
            seed: 7,
            ..WorkloadConfig::default()
        })
    };

    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "strategy", "auctions", "scans", "agg ops", "merge inv", "revenue", "ms total"
    );
    for sharing in [
        SharingStrategy::Unshared,
        SharingStrategy::SharedAggregation,
        SharingStrategy::SharedSort,
    ] {
        let mut engine = Engine::new(
            make_workload(),
            EngineConfig {
                sharing,
                budget_policy: BudgetPolicy::ThrottleExact,
                seed: 1234,
                ..EngineConfig::default()
            },
        );
        let m = engine.run(rounds);
        println!(
            "{:<20} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10.1}",
            format!("{sharing:?}"),
            m.auctions,
            m.advertisers_scanned,
            m.aggregation_ops,
            m.merge_invocations,
            m.revenue.to_string(),
            m.resolution_nanos() as f64 / 1e6,
        );
    }
    println!(
        "\n(The three strategies produce identical assignments; the work \
         columns show what sharing saves.)"
    );
}
