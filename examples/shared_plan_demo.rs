//! Shared aggregation on the paper's Section II-B example.
//!
//! 200 general shoe stores bid on both "hiking boots" and "high-heels";
//! 40 sports stores only on the former, 30 fashion stores only on the
//! latter. Resolving the two auctions independently scans 240 + 230 = 470
//! advertisers; sharing the general-store aggregate scans 270 — "40%
//! fewer advertisers".
//!
//! Run with: `cargo run --example shared_plan_demo`

use ssa::auction::ids::AdvertiserId;
use ssa::auction::money::Money;
use ssa::auction::score::Score;
use ssa::core::plan::cost::{expected_cost, materialized_cost, unshared_expected_cost};
use ssa::core::plan::{PlanProblem, SharedPlanner};
use ssa::core::topk::{KList, ScoredAd, ScoredTopKOp};
use ssa::setcover::BitSet;
use ssa::workload::scenarios::hiking_boots_high_heels;

fn main() {
    let (hiking, heels) = hiking_boots_high_heels();
    let n = 270;
    println!("'hiking boots' interest: {} advertisers", hiking.len());
    println!("'high-heels'   interest: {} advertisers", heels.len());

    let queries = vec![
        BitSet::from_elements(n, hiking.iter().map(|a| a.index())),
        BitSet::from_elements(n, heels.iter().map(|a| a.index())),
    ];
    let problem = PlanProblem::new(n, queries, Some(vec![0.8, 0.8]));

    let plan = SharedPlanner::full().plan(&problem);
    plan.validate().expect("planner produces valid plans");

    println!("\nShared plan:");
    println!("  total aggregation nodes: {}", plan.total_cost());
    println!("  extra (shared partial results): {}", plan.extra_cost());
    let shared = expected_cost(&plan, &problem.search_rates);
    let unshared = unshared_expected_cost(&problem);
    println!("  expected ops/round shared:   {shared:.1}");
    println!("  expected ops/round unshared: {unshared:.1}");
    println!(
        "  expected savings: {:.1}%",
        100.0 * (1.0 - shared / unshared)
    );
    println!(
        "  ops when both phrases occur: {} (unshared: {})",
        materialized_cost(&plan, &[true, true]),
        (hiking.len() - 1) + (heels.len() - 1),
    );

    // Evaluate the plan for one round where both phrases occur: every
    // advertiser bids, scores are bid * factor; here factor 1.0 and a
    // deterministic spread of bids.
    let k = 4;
    let leaves: Vec<KList<ScoredAd>> = (0..n)
        .map(|i| {
            let bid = Money::from_micros(1_000_000 + ((i as u64 * 7919) % 1000) * 1000);
            KList::singleton(
                k,
                ScoredAd::new(AdvertiserId::from_index(i), Score::expected_value(bid, 1.0)),
            )
        })
        .collect();
    let (results, ops) = plan.evaluate(&ScoredTopKOp { k }, &leaves, &[true, true]);
    println!("\nRound evaluation performed {ops} top-k merges");
    for (q, name) in ["hiking boots", "high-heels"].iter().enumerate() {
        let winners: Vec<String> = results[q]
            .as_ref()
            .expect("phrase occurred")
            .items()
            .iter()
            .map(|s| format!("{}({:.3})", s.advertiser, s.score.value()))
            .collect();
        println!("  top-{k} for '{name}': {}", winners.join(", "));
    }
}
