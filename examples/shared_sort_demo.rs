//! Shared sorting with phrase-specific CTR factors (Section III).
//!
//! A bookstore clicks better on "books" than on "DVDs": advertiser
//! factors differ per phrase, so top-k aggregates cannot be shared — but
//! the bid order can. This demo builds the shared merge network, runs the
//! Threshold Algorithm per phrase, and compares the operator invocations
//! against independent full sorts.
//!
//! Run with: `cargo run --example shared_sort_demo`

use ssa::core::sort::planner::{build_shared_sort_plan, SortPlan};
use ssa::core::sort::ta::threshold_top_k;
use ssa::setcover::BitSet;
use ssa::workload::{Workload, WorkloadConfig};

fn main() {
    // A workload where every advertiser's factor varies per phrase.
    let workload = Workload::generate(&WorkloadConfig {
        advertisers: 400,
        phrases: 8,
        topics: 3,
        phrase_factor_jitter: 0.4,
        seed: 99,
        ..WorkloadConfig::default()
    });
    let n = workload.advertiser_count();
    let rates = workload.search_rates();
    let interest: Vec<BitSet> = workload
        .interest
        .iter()
        .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
        .collect();

    let plan = build_shared_sort_plan(n, &interest, &rates);
    println!(
        "Shared merge-sort network: {} nodes over {} advertisers, {} phrases",
        plan.node_count(),
        n,
        workload.phrase_count()
    );
    println!(
        "  expected full-sort cost shared:   {:.0}",
        plan.expected_cost(&rates)
    );
    println!(
        "  expected full-sort cost unshared: {:.0}",
        SortPlan::unshared_expected_cost(&interest, &rates)
    );

    // One round where every phrase occurs: run TA per phrase.
    let bids: Vec<_> = workload.advertisers.iter().map(|a| a.bid).collect();
    let (mut net, roots) = plan.instantiate(&bids);
    let k = 4;
    let mut total_stages = 0usize;
    #[allow(clippy::needless_range_loop)] // q indexes interest, factors, and roots
    for q in 0..workload.phrase_count() {
        let phrase = ssa::auction::ids::PhraseId::from_index(q);
        let mut c_order: Vec<(ssa::auction::ids::AdvertiserId, f64)> = workload.interest[q]
            .iter()
            .map(|&a| (a, workload.phrase_factor(phrase, a).unwrap()))
            .collect();
        c_order.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        let outcome = threshold_top_k(
            &mut net,
            roots[q],
            &c_order,
            |a| bids[a.index()],
            |a| workload.phrase_factor(phrase, a).unwrap_or(0.0),
            k,
        );
        total_stages += outcome.stages;
        println!(
            "  phrase {q}: |I_q|={:<4} TA stages={:<4} early-stop={}  top-{k}: {}",
            workload.interest[q].len(),
            outcome.stages,
            outcome.stopped_early,
            outcome
                .top_k
                .iter()
                .map(|(a, s)| format!("{a}({:.2})", s.value()))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let full_sort_cost: usize = workload.interest.iter().map(|i| i.len()).sum();
    println!(
        "\nTA consumed {total_stages} sorted positions ({} merge invocations) vs {} full-sort scans",
        net.invocations(),
        full_sort_cost
    );
}
