//! End-to-end integration: workload generation through engine simulation,
//! exercising every sharing strategy and budget policy combination.

use ssa::auction::money::Money;
use ssa::auction::PricingRule;
use ssa::core::engine::{BudgetPolicy, Engine, EngineConfig, SharingStrategy};
use ssa::workload::{Workload, WorkloadConfig};

fn workload(seed: u64, jitter: f64) -> Workload {
    Workload::generate(&WorkloadConfig {
        advertisers: 120,
        phrases: 8,
        topics: 4,
        phrase_factor_jitter: jitter,
        seed,
        ..WorkloadConfig::default()
    })
}

/// The headline correctness property: sharing changes the work, never the
/// outcome. All strategies yield identical assignments and revenue.
#[test]
fn sharing_strategies_preserve_outcomes_and_revenue() {
    let run = |sharing: SharingStrategy| {
        let mut engine = Engine::new(
            workload(3, 0.0),
            EngineConfig {
                sharing,
                seed: 17,
                ..EngineConfig::default()
            },
        );
        engine.run(30)
    };
    let unshared = run(SharingStrategy::Unshared);
    let plan = run(SharingStrategy::SharedAggregation);
    let sort = run(SharingStrategy::SharedSort);
    assert_eq!(unshared.revenue, plan.revenue);
    assert_eq!(unshared.revenue, sort.revenue);
    assert_eq!(unshared.clicks, plan.clicks);
    assert_eq!(unshared.impressions, sort.impressions);
    // And the shared strategies actually shared: their work counters are
    // below the baseline's scan counts.
    assert!(plan.aggregation_ops > 0);
    assert!(
        plan.aggregation_ops < unshared.advertisers_scanned,
        "shared plan ops {} should be below {} scans",
        plan.aggregation_ops,
        unshared.advertisers_scanned
    );
    assert!(sort.merge_invocations > 0);
}

/// Budget invariant: settled revenue per advertiser never exceeds its
/// budget, under every policy.
#[test]
fn settled_spend_respects_budgets() {
    for policy in [
        BudgetPolicy::Ignore,
        BudgetPolicy::ThrottleExact,
        BudgetPolicy::ThrottleBounds,
    ] {
        let w = workload(9, 0.0);
        let total: Money = w.advertisers.iter().map(|a| a.budget).sum();
        let mut engine = Engine::new(
            w,
            EngineConfig {
                budget_policy: policy,
                seed: 5,
                ..EngineConfig::default()
            },
        );
        let m = engine.run(40);
        assert!(
            m.revenue <= total,
            "{policy:?}: revenue {} exceeds budget total {total}",
            m.revenue
        );
    }
}

/// Pricing rules order as theory says on identical simulations:
/// first-price revenue ≥ GSP revenue ≥ VCG revenue (per-click prices are
/// ordered pointwise, and the click sequences coincide for equal
/// assignments... clicks depend on prices only through budgets, so we
/// assert the weaker throughput-level ordering with tolerance).
#[test]
fn pricing_rules_are_consistent() {
    let run = |pricing: PricingRule| {
        let mut engine = Engine::new(
            workload(21, 0.0),
            EngineConfig {
                pricing,
                budget_policy: BudgetPolicy::Ignore,
                seed: 21,
                ..EngineConfig::default()
            },
        );
        engine.run(25)
    };
    let first = run(PricingRule::FirstPrice);
    let gsp = run(PricingRule::GeneralizedSecondPrice);
    let vcg = run(PricingRule::Vcg);
    // Expected value per impression is priced: first ≥ gsp ≥ vcg.
    assert!(first.expected_value >= gsp.expected_value - 1e-9);
    assert!(gsp.expected_value >= vcg.expected_value - 1e-9);
}

/// Jittered (phrase-specific) factors: shared sort still matches the
/// unshared baseline exactly, across policies.
#[test]
fn jittered_workload_shared_sort_agrees() {
    let run = |sharing: SharingStrategy| {
        let mut engine = Engine::new(
            workload(33, 0.5),
            EngineConfig {
                sharing,
                seed: 11,
                ..EngineConfig::default()
            },
        );
        engine.run(20)
    };
    let a = run(SharingStrategy::Unshared);
    let b = run(SharingStrategy::SharedSort);
    assert_eq!(a.revenue, b.revenue);
    assert_eq!(a.clicks, b.clicks);
}

/// A long-horizon run is stable: budgets deplete monotonically, pending
/// ads expire, metrics stay sane.
#[test]
fn long_horizon_stability() {
    let mut engine = Engine::new(
        workload(55, 0.0),
        EngineConfig {
            seed: 55,
            ..EngineConfig::default()
        },
    );
    let m = engine.run(120);
    assert_eq!(m.rounds, 120);
    assert!(m.clicks <= m.impressions);
    assert!(m.revenue.to_f64() >= 0.0);
    assert!(m.expected_value.is_finite());
}
