//! Root-level smoke test for the differential-oracle harness: a handful
//! of seeds through every check, so plain `cargo test -q` exercises the
//! oracle even without running the full `ssa-testkit` corpus.

use ssa_testkit::run_all;

#[test]
fn a_few_seeds_through_every_differential_check() {
    for seed in [3u64, 1009, 90210] {
        let divergences = run_all(seed);
        assert!(
            divergences.is_empty(),
            "seed {seed} diverged:\n{}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
