//! Integration tests for the Section IV pipeline: Monte-Carlo validation
//! that throttled bids mean what they claim, end to end across the stats
//! and core crates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssa::auction::money::Money;
use ssa::core::budget::{BudgetContext, OutstandingAd};

fn context(seed: u64, l: usize) -> BudgetContext {
    let mut rng = StdRng::seed_from_u64(seed);
    BudgetContext {
        bid: Money::from_f64(rng.random_range(1.0..4.0)),
        remaining_budget: Money::from_f64(rng.random_range(3.0..15.0)),
        auctions_in_round: rng.random_range(1..4),
        outstanding: (0..l)
            .map(|_| {
                OutstandingAd::new(
                    Money::from_f64(rng.random_range(0.5..4.0)),
                    rng.random_range(0.05..0.95),
                )
            })
            .collect(),
    }
}

/// `throttled_bid_exact` is the Monte-Carlo mean of
/// `min(b, max(0, β − S)/m)` — the definition in Section IV-A.
#[test]
fn throttled_bid_is_the_monte_carlo_expectation() {
    for seed in [3u64, 17, 99] {
        let ctx = context(seed, 6);
        let sum = ctx.debt_sum();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let trials = 200_000;
        let m = ctx.auctions_in_round as f64;
        let beta = ctx.remaining_budget.to_f64();
        let b = ctx.bid.to_f64();
        let mut acc = 0.0;
        for _ in 0..trials {
            let u: Vec<f64> = (0..sum.len()).map(|_| rng.random::<f64>()).collect();
            let s = sum.sample_with(&u) as f64 / 1e6;
            acc += b.min((beta - s).max(0.0) / m);
        }
        let mc = acc / trials as f64;
        let exact = ctx.throttled_bid_exact().to_f64();
        assert!(
            (mc - exact).abs() < 0.02,
            "seed {seed}: Monte Carlo {mc:.4} vs exact {exact:.4}"
        );
    }
}

/// The throttle guarantees affordability in expectation: if the
/// advertiser pays `b̂` per click across its `m` auctions (each shown ad
/// clicking for sure — the worst case for spending), the expected
/// over-budget exposure is bounded by what the stated bid would have
/// risked, and `b̂ ≤ b` always.
#[test]
fn throttled_bids_never_exceed_stated_bids() {
    for seed in 0..25u64 {
        let ctx = context(seed, 8);
        let throttled = ctx.throttled_bid_exact();
        assert!(throttled <= ctx.bid, "seed {seed}");
        // And the refiner agrees with the convolution.
        assert!(
            (throttled.micros() as i64 - ctx.refiner().exact().micros() as i64).abs() <= 1,
            "seed {seed}: refiner and convolution disagree"
        );
    }
}

/// Monotonicity sanity across the whole machinery: more budget never
/// lowers the throttled bid; more pending debt never raises it.
#[test]
fn throttled_bid_monotonicity() {
    let base = context(5, 5);
    let b0 = base.throttled_bid_exact();
    let richer = BudgetContext {
        remaining_budget: base.remaining_budget + Money::from_units(5),
        ..base.clone()
    };
    assert!(richer.throttled_bid_exact() >= b0);
    let mut deeper = base.clone();
    deeper
        .outstanding
        .push(OutstandingAd::new(Money::from_f64(3.0), 0.9));
    assert!(deeper.throttled_bid_exact() <= b0);
    let busier = BudgetContext {
        auctions_in_round: base.auctions_in_round + 3,
        ..base
    };
    assert!(busier.throttled_bid_exact() <= b0);
}
