//! Integration tests pinning the paper's quantitative claims, spanning
//! all workspace crates through the umbrella API.

use ssa::auction::ids::{AdvertiserId, SlotIndex};
use ssa::auction::{determine_winners, AuctionInstance};
use ssa::core::algebra::{fig5_complexity, AxiomSet, PlanComplexity};
use ssa::core::engine::gaming::run_gaming_comparison;
use ssa::core::plan::cost::{expected_cost, materialized_cost, unshared_expected_cost};
use ssa::core::plan::{PlanProblem, SharedPlanner};
use ssa::setcover::BitSet;
use ssa::workload::scenarios::{fig4_coinflip_queries, hiking_boots_high_heels};

/// E1 — the Figure 1–3 worked example: "winner determination assigns
/// slot 1 to advertiser A and slot 2 to advertiser B".
#[test]
fn e1_worked_example() {
    let instance = AuctionInstance::paper_example();
    let assignment = determine_winners(&instance);
    assert_eq!(
        assignment.advertiser_in_slot(SlotIndex(0)),
        Some(AdvertiserId(0)),
        "slot 1 goes to A"
    );
    assert_eq!(
        assignment.advertiser_in_slot(SlotIndex(1)),
        Some(AdvertiserId(1)),
        "slot 2 goes to B"
    );
    assert_eq!(assignment.slot_of(AdvertiserId(2)), None, "C loses");
}

/// E4 — the Section II-B example: grouping into general/sports/fashion
/// stores lets the system "scan 40% fewer advertisers".
#[test]
fn e4_hiking_boots_savings() {
    let (hiking, heels) = hiking_boots_high_heels();
    let n = 270;
    let queries = vec![
        BitSet::from_elements(n, hiking.iter().map(|a| a.index())),
        BitSet::from_elements(n, heels.iter().map(|a| a.index())),
    ];
    let problem = PlanProblem::new(n, queries, None);
    let plan = SharedPlanner::full().plan(&problem);
    plan.validate().expect("valid plan");

    // Per-round aggregate operations when both phrases occur.
    let shared_ops = materialized_cost(&plan, &[true, true]);
    let unshared_ops = (hiking.len() - 1) + (heels.len() - 1);
    let savings = 1.0 - shared_ops as f64 / unshared_ops as f64;
    assert!(
        (0.38..=0.46).contains(&savings),
        "expected ≈40% savings, got {:.1}% ({shared_ops} vs {unshared_ops})",
        savings * 100.0
    );
}

/// E2 protocol — the Figure 4 setup yields strictly cheaper plans than
/// the unshared baseline across the whole probability sweep, with the
/// expected cost increasing in the query probability.
#[test]
fn e2_fig4_shared_plan_dominates() {
    let queries = fig4_coinflip_queries(20, 10, 42);
    let sets: Vec<BitSet> = queries
        .iter()
        .map(|q| BitSet::from_elements(20, q.iter().map(|a| a.index())))
        .collect();
    let mut last_cost = 0.0;
    for step in 1..=10 {
        let sr = step as f64 / 10.0;
        let problem = PlanProblem::new(20, sets.clone(), Some(vec![sr; sets.len()]));
        let plan = SharedPlanner::full().plan(&problem);
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            shared <= unshared + 1e-9,
            "sr={sr}: shared {shared} vs unshared {unshared}"
        );
        assert!(
            shared >= last_cost - 1e-9,
            "expected cost must grow with sr (got {shared} after {last_cost})"
        );
        last_cost = shared;
    }
}

/// E3 spot checks — the Figure 5 complexity taxonomy.
#[test]
fn e3_fig5_taxonomy() {
    // The top-k operator's class (row 8) is NP-complete.
    assert_eq!(
        fig5_complexity(AxiomSet::SEMILATTICE_WITH_IDENTITY),
        PlanComplexity::NpComplete
    );
    // Sum (Abelian group, row 7) is NP-complete too.
    let sum = AxiomSet::A1
        .with(AxiomSet::A2)
        .with(AxiomSet::A4)
        .with(AxiomSet::A5);
    assert_eq!(fig5_complexity(sum), PlanComplexity::NpComplete);
    // Non-associative operators (row 1) are polynomial.
    assert_eq!(fig5_complexity(AxiomSet::NONE), PlanComplexity::Ptime);
    // Degenerate divisible+idempotent classes are O(1).
    let degenerate = AxiomSet::A1.with(AxiomSet::A3).with(AxiomSet::A5);
    assert_eq!(fig5_complexity(degenerate), PlanComplexity::Constant);
}

/// E7 — ignoring budget uncertainty leaks revenue; throttling recovers
/// most of it (Section IV's gaming demonstration).
#[test]
fn e7_gaming_leak_and_fix() {
    let report = run_gaming_comparison(7, 120);
    assert!(
        report.naive.clicks_beyond_budget > 0,
        "naive policy must deliver over-budget clicks"
    );
    assert!(
        report.throttled.forgiven < report.naive.forgiven,
        "throttling must shrink forgiven payments"
    );
    assert!(
        report.throttled.revenue > report.naive.revenue,
        "throttling must recover revenue: {} vs {}",
        report.throttled.revenue,
        report.naive.revenue
    );
}
