//! Cross-crate pipeline tests: workload interest sets → shared plans →
//! evaluation, against naive references.

use ssa::auction::ids::AdvertiserId;
use ssa::auction::score::Score;
use ssa::core::plan::cost::{expected_cost, unshared_expected_cost};
use ssa::core::plan::optimal::optimal_plan;
use ssa::core::plan::{PlanProblem, SharedPlanner};
use ssa::core::topk::{KList, ScoredAd, ScoredTopKOp};
use ssa::setcover::BitSet;
use ssa::workload::{Workload, WorkloadConfig};

fn problem_from_workload(w: &Workload) -> PlanProblem {
    let n = w.advertiser_count();
    let queries: Vec<BitSet> = w
        .interest
        .iter()
        .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
        .collect();
    PlanProblem::new(n, queries, Some(w.search_rates()))
}

/// Plan evaluation returns exactly the per-phrase naive top-k for every
/// phrase of a generated workload.
#[test]
fn plan_evaluation_matches_naive_topk() {
    let w = Workload::generate(&WorkloadConfig {
        advertisers: 150,
        phrases: 10,
        topics: 5,
        seed: 77,
        ..WorkloadConfig::default()
    });
    let problem = problem_from_workload(&w);
    let plan = SharedPlanner::full().plan(&problem);
    let k = 5;

    let leaves: Vec<KList<ScoredAd>> = w
        .advertisers
        .iter()
        .map(|a| {
            KList::singleton(
                k,
                ScoredAd::new(a.id, Score::expected_value(a.bid, a.base_factor)),
            )
        })
        .collect();
    let occurring = vec![true; w.phrase_count()];
    let (results, ops) = plan.evaluate(&ScoredTopKOp { k }, &leaves, &occurring);
    assert!(ops > 0);

    #[allow(clippy::needless_range_loop)] // q indexes results and interest together
    for q in 0..w.phrase_count() {
        let got: Vec<AdvertiserId> = results[q]
            .as_ref()
            .unwrap()
            .items()
            .iter()
            .map(|s| s.advertiser)
            .collect();
        // Naive: scan the interest set.
        let mut naive: KList<ScoredAd> = KList::empty(k);
        for &a in &w.interest[q] {
            let adv = &w.advertisers[a.index()];
            naive.insert(ScoredAd::new(
                a,
                Score::expected_value(adv.bid, adv.base_factor),
            ));
        }
        let want: Vec<AdvertiserId> = naive.items().iter().map(|s| s.advertiser).collect();
        assert_eq!(got, want, "phrase {q}");
    }
}

/// Partial rounds: evaluating with only a subset of phrases occurring
/// materializes strictly less work than a full round.
#[test]
fn partial_rounds_cost_less() {
    let w = Workload::generate(&WorkloadConfig {
        advertisers: 200,
        phrases: 12,
        topics: 4,
        seed: 13,
        ..WorkloadConfig::default()
    });
    let problem = problem_from_workload(&w);
    let plan = SharedPlanner::fragments_only().plan(&problem);
    let k = 3;
    let leaves: Vec<KList<ScoredAd>> = w
        .advertisers
        .iter()
        .map(|a| {
            KList::singleton(
                k,
                ScoredAd::new(a.id, Score::expected_value(a.bid, a.base_factor)),
            )
        })
        .collect();
    let all = vec![true; w.phrase_count()];
    let mut some = vec![false; w.phrase_count()];
    some[0] = true;
    some[1] = true;
    let (_, full_ops) = plan.evaluate(&ScoredTopKOp { k }, &leaves, &all);
    let (_, partial_ops) = plan.evaluate(&ScoredTopKOp { k }, &leaves, &some);
    assert!(
        partial_ops < full_ops,
        "partial {partial_ops} must be below full {full_ops}"
    );
}

/// The heuristic stays within a small factor of optimal on instances the
/// exact planner can solve.
#[test]
fn heuristic_close_to_optimal_on_small_instances() {
    let mut ratios = Vec::new();
    for seed in 0..4u64 {
        let w = Workload::generate(&WorkloadConfig {
            advertisers: 6,
            phrases: 3,
            topics: 2,
            seed,
            ..WorkloadConfig::default()
        });
        let problem = problem_from_workload(&w);
        let Some(opt) = optimal_plan(&problem) else {
            continue;
        };
        let heur = SharedPlanner::full().plan(&problem);
        assert!(heur.total_cost() >= opt.total_cost);
        if opt.total_cost > 0 {
            ratios.push(heur.total_cost() as f64 / opt.total_cost as f64);
        }
    }
    assert!(!ratios.is_empty(), "at least one instance must be solvable");
    let worst = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(worst <= 1.5, "heuristic/optimal worst ratio {worst}");
}

/// Sharing monotonicity: more topic overlap (fewer topics) yields larger
/// expected savings from sharing.
#[test]
fn savings_grow_with_overlap() {
    let savings = |topics: usize| {
        let w = Workload::generate(&WorkloadConfig {
            advertisers: 300,
            phrases: 12,
            topics,
            seed: 5,
            ..WorkloadConfig::default()
        });
        let problem = problem_from_workload(&w);
        let plan = SharedPlanner::fragments_only().plan(&problem);
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        1.0 - shared / unshared
    };
    let tight = savings(2); // heavy overlap
    let loose = savings(12); // phrases mostly disjoint
    assert!(
        tight > loose,
        "overlap 2-topic savings {tight:.3} must exceed 12-topic {loose:.3}"
    );
}
