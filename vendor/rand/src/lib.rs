//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! `rand 0.9` API subset it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `random::<T>()` and `random_range(..)`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and of ample quality for workload
//! synthesis and property tests. It is **not** the same stream as the real
//! `rand` crate's `StdRng` (ChaCha12), so seeds produce different (but
//! stable) workloads than an online build would.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an rng (`rand`'s
/// `StandardUniform` distribution, flattened into a helper trait).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for u128 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformSample for i128 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_from(rng) as i128
    }
}

/// Ranges that can be sampled (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = bounded_u64(rng, span);
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = bounded_u64(rng, span + 1);
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_from(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit grid over [0, 1] inclusive of both ends.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + (end - start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_from(rng)
    }
}

/// Debiased bounded sampling: uniform in `[0, bound)` (`bound > 0`).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection sampling on the top zone to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly random `T`.
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs that can be constructed from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the rng from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the rng from OS entropy. This offline stand-in derives the
    /// seed from the system clock instead.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; different stream, same determinism guarantees).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    /// Small fast rng; alias of [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&y));
            let z: f64 = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&z));
            let u: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
            let b: u8 = rng.random_range(0u8..=100);
            assert!(b <= 100);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn bool_and_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
    }
}
