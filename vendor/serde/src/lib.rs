//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The workspace derives `Serialize`/`Deserialize` on its domain types so
//! an online build against real serde works unchanged; in this offline
//! image the derives expand to nothing and the traits are inert markers.
//! Actual JSON encoding/decoding in the workspace (the `ssa-bench` report
//! and config paths) is hand-rolled in `ssa_bench::json` and does not go
//! through these traits.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Inert marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Inert marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Inert marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
