//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` headers),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * integer / float range strategies (`0usize..9`, `0.0f64..=1.0`),
//! * [`any::<T>()`](prelude::any), [`Just`](strategy::Just),
//! * [`collection::vec`] and [`collection::btree_set`].
//!
//! Differences from real proptest: generation is plain random sampling
//! (no shrinking — the failing inputs are printed verbatim together with
//! the per-test seed), and the RNG is this workspace's vendored
//! xoshiro256**. Case counts honor `ProptestConfig::with_cases` and the
//! `PROPTEST_CASES` environment variable (the latter takes precedence, so
//! local runs can widen the search: `PROPTEST_CASES=10000 cargo test`).

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Test-case generation configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` env var wins over the
    /// configured count.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Result type each property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Strategies: how to generate values.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;

    /// A value generator (flattened from proptest's `Strategy`; no
    /// shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug + Clone;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug + Clone,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug + Clone,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Uniform full-domain strategy for `T` (proptest's `any::<T>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Builds an [`Any`] strategy.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// A size specification: fixed or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn draw(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose cardinality is drawn from `size` (best-effort
    /// when the element domain is too small: retries a bounded number of
    /// times, then settles for what it has — mirroring proptest, the set
    /// may come out smaller than requested only if duplicates dominate).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Runner internals used by the [`proptest!`] expansion. Not part of the
/// mimicked API surface.
pub mod runner {
    use super::{ProptestConfig, StdRng, TestCaseError};
    use rand::SeedableRng;

    /// Derives the deterministic per-test base seed: `PROPTEST_SEED` env
    /// var if set, else a stable FNV-1a hash of the test path.
    pub fn base_seed(test_path: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives one property: draws cases until `cases` of them are
    /// accepted, panicking on the first failure with the offending inputs
    /// and the seed that reproduces them.
    pub fn run<G, T, F>(test_path: &str, config: &ProptestConfig, generate: G, mut check: F)
    where
        G: Fn(&mut StdRng) -> T,
        T: std::fmt::Debug + Clone,
        F: FnMut(T) -> Result<(), TestCaseError>,
    {
        let cases = config.effective_cases();
        let seed = base_seed(test_path);
        let mut accepted = 0u32;
        let mut case_index = 0u64;
        let mut rejected = 0u64;
        while accepted < cases {
            // One rng per case, derived from (seed, case index), so any
            // failing case is reproducible in isolation.
            let mut rng = StdRng::seed_from_u64(seed ^ case_index.wrapping_mul(0x9e3779b97f4a7c15));
            let inputs = generate(&mut rng);
            match check(inputs.clone()) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    let limit = 256 + 10 * u64::from(cases);
                    assert!(
                        rejected <= limit,
                        "{test_path}: too many prop_assume! rejections ({rejected} > {limit})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_path}: property failed at case {case_index} \
                         (base seed {seed}, set PROPTEST_SEED={seed} to reproduce)\n\
                         inputs: {inputs:#?}\n{msg}"
                    );
                }
            }
            case_index += 1;
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, recording the failure (with
/// formatted message) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let path = concat!(module_path!(), "::", stringify!($name));
                $crate::runner::run(
                    path,
                    &config,
                    |rng| ($($crate::strategy::Strategy::generate(&($strategy), rng),)+),
                    |inputs| -> $crate::TestCaseResult {
                        let ($($arg,)+) = inputs;
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respected(x in 3usize..9, y in -5i64..=5, f in 0.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn collections_sized(
            v in collection::vec(0u8..=100, 2..6),
            s in collection::btree_set(0usize..50, 1..5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x <= 100));
            prop_assert!(!s.is_empty() && s.len() < 5);
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_compiles(b in any::<bool>(), (lo, hi) in (0u32..10, 10u32..20)) {
            let _ = b;
            prop_assert!(lo < hi);
        }
    }

    #[test]
    fn failure_reports_inputs_and_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run(
                "demo::always_fails",
                &ProptestConfig::with_cases(4),
                |rng| (crate::strategy::Strategy::generate(&(0usize..10), rng),),
                |(_x,)| -> TestCaseResult {
                    prop_assert!(false, "forced failure");
                    Ok(())
                },
            );
        });
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            err.contains("forced failure") && err.contains("PROPTEST_SEED="),
            "{err}"
        );
    }

    #[test]
    fn just_strategy_and_prop_map() {
        use crate::strategy::{Just, Strategy};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(Just(41usize).generate(&mut rng), 41);
        let doubled = (0usize..5).prop_map(|x| x * 2);
        for _ in 0..20 {
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
    }
}
