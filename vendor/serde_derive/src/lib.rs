//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! These exist so `#[derive(Serialize, Deserialize)]` and `#[serde(..)]`
//! attributes across the workspace compile without the real `serde_derive`
//! (unavailable in the offline build image). They expand to nothing: the
//! types get no trait impls, and nothing in the workspace requires the
//! impls — JSON handling is hand-rolled in `ssa_bench::json`.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(..)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(..)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
