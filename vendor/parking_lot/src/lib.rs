//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot),
//! wrapping `std::sync` primitives behind parking_lot's panic-free,
//! non-poisoning API surface (`lock()` returns the guard directly; a
//! poisoned std lock is transparently recovered, matching parking_lot's
//! no-poisoning semantics).

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Mutual exclusion primitive (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
