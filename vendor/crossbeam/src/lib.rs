//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam),
//! providing `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since Rust 1.63).
//!
//! Semantics difference: if a spawned thread panics, `std::thread::scope`
//! re-raises the panic when the scope exits, whereas crossbeam returns
//! `Err`. Every workspace call site immediately `.expect()`s the result,
//! so the observable behavior (test failure with the panic message) is
//! the same.

#![warn(missing_docs)]

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    /// Handle passed to the closure given to [`scope`]; `spawn` launches a
    /// worker that may borrow from the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives the underlying
        /// `std::thread::Scope` (crossbeam passes the scope itself; every
        /// workspace call site ignores the argument).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(inner))
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; joins
    /// all workers before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            super::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
            })
            .expect("no worker panicked");
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }
    }
}
