//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], `benchmark_group` / `bench_function` /
//! `bench_with_input`, and [`black_box`] — with a deliberately simple
//! measurement loop: warm up once, then time a handful of iterations and
//! print mean wall-clock time per iteration. No statistics, plots, or
//! baselines; the numbers are coarse but the benches stay runnable (and
//! compiled under `cargo bench`) without network access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the time budget for this group (accepted, loosely honored).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(
            &label,
            self.effective_samples(),
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Benchmarks a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(
            &label,
            self.effective_samples(),
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (mirrors criterion's blanket accepts).
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, accumulating into this bencher's measurement.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` value per iteration; only the
    /// routine is measured.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed += measured;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, f: &mut F) {
    // Warm-up / calibration: one iteration, timed.
    let mut calibrate = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calibrate);
    let per_iter = calibrate.elapsed.max(Duration::from_nanos(1));
    // Fit the requested samples into the budget, ≥1 iteration per sample.
    let per_sample = budget / samples as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!(
        "bench: {label:<56} {:>14} /iter ({total_iters} iters)",
        format_ns(mean_ns)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).sum()
    }

    #[test]
    fn harness_runs_groups_and_functions() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        c.bench_function("standalone", |b| b.iter(|| sum_to(black_box(100))));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| sum_to(black_box(10)))
        });
        g.bench_with_input(BenchmarkId::from_parameter(50), &50u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.finish();
    }

    mod grouped {
        use super::super::*;

        fn bench_demo(c: &mut Criterion) {
            c.bench_function("demo", |b| b.iter(|| 1 + 1));
        }

        criterion_group! {
            name = block_form;
            config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(2));
            targets = bench_demo
        }
        criterion_group!(list_form, bench_demo);

        #[test]
        fn both_group_forms_execute() {
            block_form();
            list_form();
        }
    }
}
