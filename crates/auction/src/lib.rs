#![warn(missing_docs)]

//! Sponsored-search auction substrate.
//!
//! This crate implements the auction model from *Shared Winner Determination
//! in Sponsored Search Auctions* (Martin & Halpern, ICDE 2009): advertisers
//! bid on clicks for bid phrases, search result pages expose `k` ad slots,
//! and the *winner-determination problem* assigns slots to advertisers so as
//! to maximize the total expected amount of bids realized.
//!
//! The crate provides:
//!
//! * fixed-point [`Money`] and totally-ordered
//!   [`Score`] primitives,
//! * click-through-rate models, both [separable](ctr::SeparableCtr)
//!   (`ctr_ij = c_i * d_j`, Section II-A of the paper) and
//!   [non-separable](ctr::CtrMatrix),
//! * winner determination for a single auction: the linear-time top-k scan
//!   under separability ([`winner`]) and the graph-pruning + Hungarian
//!   algorithm pipeline for non-separable CTRs ([`nonseparable`], the
//!   technique of Martin, Gehrke & Halpern, ICDE 2008, which Section V of
//!   the paper plugs its shared top-k algorithms into),
//! * a from-scratch maximum-weight bipartite [assignment] solver,
//! * the pricing rules the paper references: first-price, generalized
//!   second price, and VCG for position auctions ([`pricing`]).

pub mod assignment;
pub mod ctr;
pub mod expressive;
pub mod ids;
pub mod instance;
pub mod money;
pub mod nonseparable;
pub mod pricing;
pub mod score;
pub mod winner;

pub use ctr::{Ctr, CtrMatrix, CtrModel, SeparableCtr};
pub use ids::{AdvertiserId, PhraseId, SlotIndex};
pub use instance::{AuctionEntry, AuctionInstance};
pub use money::Money;
pub use pricing::{PricedSlot, PricingRule};
pub use score::Score;
pub use winner::{determine_winners, Assignment};
