//! Fixed-point money.
//!
//! Budgets, bids, and prices are held in *micro-units* (1 currency unit =
//! 1,000,000 micros) so that budget arithmetic in Section IV of the paper —
//! which assumes budgets "written in the lowest denomination of currency" —
//! is exact. All arithmetic is checked or saturating; money never goes
//! negative.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of micro-units per whole currency unit.
pub const MICROS_PER_UNIT: u64 = 1_000_000;

/// A non-negative amount of money in micro-currency units.
///
/// ```
/// use ssa_auction::money::Money;
/// let bid = Money::from_units(2) + Money::from_micros(500_000);
/// assert_eq!(bid.to_f64(), 2.5);
/// assert_eq!(bid.saturating_sub(Money::from_units(10)), Money::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(u64);

impl Money {
    /// Zero money.
    pub const ZERO: Money = Money(0);
    /// The largest representable amount.
    pub const MAX: Money = Money(u64::MAX);

    /// Constructs from raw micro-units.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Money(micros)
    }

    /// Constructs from whole currency units (e.g. dollars).
    ///
    /// # Panics
    /// Panics on overflow.
    #[inline]
    pub const fn from_units(units: u64) -> Self {
        match units.checked_mul(MICROS_PER_UNIT) {
            Some(m) => Money(m),
            None => panic!("Money::from_units overflow"),
        }
    }

    /// Constructs from a floating-point amount of whole units, rounding to
    /// the nearest micro. Negative and non-finite inputs clamp to zero.
    pub fn from_f64(units: f64) -> Self {
        if !units.is_finite() || units <= 0.0 {
            return Money::ZERO;
        }
        let micros = (units * MICROS_PER_UNIT as f64).round();
        if micros >= u64::MAX as f64 {
            Money::MAX
        } else {
            Money(micros as u64)
        }
    }

    /// Raw micro-units.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Value in whole units as a float (lossy for very large amounts).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_UNIT as f64
    }

    /// True iff the amount is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Money) -> Option<Money> {
        self.0.checked_add(rhs.0).map(Money)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// Subtraction that clamps at zero, matching the paper's
    /// `max(0, beta_i - S)` remaining-budget expression.
    #[inline]
    pub fn saturating_sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: Money) -> Option<Money> {
        self.0.checked_sub(rhs.0).map(Money)
    }

    /// Divides the amount evenly among `n` parts, rounding down.
    /// Used for the paper's `beta_i / m_i` throttle. Returns `Money::MAX`
    /// when `n == 0` (no auctions → no constraint).
    #[inline]
    pub fn div_n(self, n: u64) -> Money {
        self.0.checked_div(n).map_or(Money::MAX, Money)
    }

    /// Multiplies by a probability-like factor in `[0, 1]`, rounding to the
    /// nearest micro. Factors outside `[0, 1]` are clamped (`NaN` acts as
    /// zero). The result never exceeds the original amount, even where the
    /// `f64` product loses precision (amounts above 2⁵³ micros).
    pub fn scale(self, factor: f64) -> Money {
        let f = factor.clamp(0.0, 1.0);
        if f >= 1.0 {
            return self;
        }
        // A factor within one ulp of 1.0 can still round the product above
        // `self` for very large amounts; clamp to keep scaling contractive.
        Money(((self.0 as f64 * f).round() as u64).min(self.0))
    }

    /// Rounds down to a multiple of `increment` (e.g. billing in whole
    /// cents). Zero increment leaves the amount unchanged.
    #[inline]
    pub fn round_down_to(self, increment: Money) -> Money {
        if increment.0 == 0 {
            self
        } else {
            Money(self.0 - self.0 % increment.0)
        }
    }

    /// The smaller of two amounts.
    #[inline]
    pub fn min(self, rhs: Money) -> Money {
        Money(self.0.min(rhs.0))
    }

    /// The larger of two amounts.
    #[inline]
    pub fn max(self, rhs: Money) -> Money {
        Money(self.0.max(rhs.0))
    }
}

impl Add for Money {
    type Output = Money;
    /// Panicking addition; use [`Money::saturating_add`] /
    /// [`Money::checked_add`] when the sum may exceed [`Money::MAX`]
    /// (≈ 18.4 trillion units).
    #[inline]
    fn add(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_add(rhs.0)
                .expect("Money addition overflowed"),
        )
    }
}

impl AddAssign for Money {
    #[inline]
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    /// Panicking subtraction; use [`Money::saturating_sub`] for clamped
    /// budget arithmetic.
    #[inline]
    fn sub(self, rhs: Money) -> Money {
        Money(
            self.0
                .checked_sub(rhs.0)
                .expect("Money subtraction underflowed"),
        )
    }
}

impl SubAssign for Money {
    #[inline]
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let units = self.0 / MICROS_PER_UNIT;
        let frac = self.0 % MICROS_PER_UNIT;
        if frac == 0 {
            write!(f, "{units}.00")
        } else {
            // Render with up to 6 decimal places, trimming trailing zeros
            // but keeping at least two for a currency look.
            let mut s = format!("{frac:06}");
            while s.len() > 2 && s.ends_with('0') {
                s.pop();
            }
            write!(f, "{units}.{s}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Money::from_units(3).micros(), 3 * MICROS_PER_UNIT);
        assert_eq!(Money::from_micros(42).micros(), 42);
        assert_eq!(Money::from_f64(1.25).micros(), 1_250_000);
        assert_eq!(Money::from_f64(-3.0), Money::ZERO);
        assert_eq!(Money::from_f64(f64::NAN), Money::ZERO);
        assert_eq!(Money::from_f64(f64::INFINITY), Money::ZERO);
    }

    #[test]
    fn display_formats_currency() {
        assert_eq!(Money::from_units(5).to_string(), "5.00");
        assert_eq!(Money::from_f64(1.5).to_string(), "1.50");
        assert_eq!(Money::from_micros(1_000_001).to_string(), "1.000001");
        assert_eq!(Money::ZERO.to_string(), "0.00");
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Money::from_units(1);
        let b = Money::from_units(2);
        assert_eq!(a.saturating_sub(b), Money::ZERO);
        assert_eq!(b.saturating_sub(a), Money::from_units(1));
    }

    #[test]
    fn div_n_handles_zero_auctions() {
        assert_eq!(Money::from_units(10).div_n(0), Money::MAX);
        assert_eq!(Money::from_units(10).div_n(4), Money::from_f64(2.5));
    }

    #[test]
    fn scale_clamps_factor() {
        let m = Money::from_units(10);
        assert_eq!(m.scale(0.5), Money::from_units(5));
        assert_eq!(m.scale(2.0), m);
        assert_eq!(m.scale(-1.0), Money::ZERO);
    }

    #[test]
    fn round_down_to_increment() {
        let cent = Money::from_micros(10_000);
        assert_eq!(
            Money::from_micros(123_456).round_down_to(cent).micros(),
            120_000
        );
        assert_eq!(
            Money::from_micros(120_000).round_down_to(cent).micros(),
            120_000
        );
        assert_eq!(Money::from_micros(9_999).round_down_to(cent), Money::ZERO);
        let m = Money::from_micros(777);
        assert_eq!(m.round_down_to(Money::ZERO), m, "zero increment is a no-op");
    }

    #[test]
    fn sum_accumulates() {
        let total: Money = [1u64, 2, 3].iter().map(|&u| Money::from_units(u)).sum();
        assert_eq!(total, Money::from_units(6));
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn strict_sub_panics_on_underflow() {
        let _ = Money::from_units(1) - Money::from_units(2);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Money::from_micros(10) < Money::from_micros(11));
        assert_eq!(
            Money::from_units(1).max(Money::from_units(2)),
            Money::from_units(2)
        );
        assert_eq!(
            Money::from_units(1).min(Money::from_units(2)),
            Money::from_units(1)
        );
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn strict_add_panics_on_overflow() {
        let _ = Money::MAX + Money::from_micros(1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn from_units_panics_on_overflow() {
        let _ = Money::from_units(u64::MAX);
    }

    use proptest::prelude::*;

    proptest! {
        /// The non-panicking arithmetic is total over the full micro
        /// domain and agrees with raw `u64` arithmetic on micros.
        #[test]
        fn checked_and_saturating_ops_match_raw_micros(a in any::<u64>(), b in any::<u64>()) {
            let (ma, mb) = (Money::from_micros(a), Money::from_micros(b));
            prop_assert_eq!(ma.saturating_add(mb).micros(), a.saturating_add(b));
            prop_assert_eq!(ma.saturating_sub(mb).micros(), a.saturating_sub(b));
            prop_assert_eq!(ma.checked_add(mb).map(Money::micros), a.checked_add(b));
            prop_assert_eq!(ma.checked_sub(mb).map(Money::micros), a.checked_sub(b));
        }

        /// `Ord`, `min`, and `max` are exactly the micro ordering.
        #[test]
        fn ordering_matches_micros(a in any::<u64>(), b in any::<u64>()) {
            let (ma, mb) = (Money::from_micros(a), Money::from_micros(b));
            prop_assert_eq!(ma.cmp(&mb), a.cmp(&b));
            prop_assert_eq!(ma.min(mb).micros(), a.min(b));
            prop_assert_eq!(ma.max(mb).micros(), a.max(b));
        }

        /// `scale` never panics on rounding edges (clamping out-of-range
        /// and non-finite factors) and never exceeds the original amount.
        #[test]
        fn scale_is_total_and_contractive(
            micros in any::<u64>(),
            factor in -2.0f64..3.0,
        ) {
            let m = Money::from_micros(micros);
            let scaled = m.scale(factor);
            prop_assert!(scaled <= m);
            if factor >= 1.0 {
                prop_assert_eq!(scaled, m);
            }
            if factor <= 0.0 {
                prop_assert_eq!(scaled, Money::ZERO);
            }
            prop_assert_eq!(m.scale(f64::NAN), Money::ZERO);
        }

        /// `round_down_to` yields the greatest multiple of the increment
        /// not exceeding the amount.
        #[test]
        fn round_down_is_greatest_multiple(
            micros in any::<u64>(),
            increment in 1u64..5_000_000,
        ) {
            let inc = Money::from_micros(increment);
            let rounded = Money::from_micros(micros).round_down_to(inc);
            prop_assert_eq!(rounded.micros() % increment, 0);
            prop_assert!(rounded.micros() <= micros);
            prop_assert!(micros - rounded.micros() < increment);
        }

        /// `div_n` is floor division: `n` parts never reassemble to more
        /// than the original, and fall short by less than `n` micros.
        #[test]
        fn div_n_is_floor_division(micros in any::<u64>(), n in 1u64..1000) {
            let part = Money::from_micros(micros).div_n(n).micros();
            prop_assert_eq!(part, micros / n);
            prop_assert!(part.checked_mul(n).unwrap() <= micros);
            prop_assert!(micros - part * n < n);
        }

        /// `from_f64` round-trips within half a micro for amounts that fit
        /// comfortably in the f64 mantissa.
        #[test]
        fn from_f64_roundtrip(micros in 0u64..1_000_000_000_000) {
            let m = Money::from_micros(micros);
            let rt = Money::from_f64(m.to_f64());
            let diff = rt.micros().abs_diff(micros);
            prop_assert!(diff <= 1, "{micros} -> {} (diff {diff})", rt.micros());
        }
    }
}
