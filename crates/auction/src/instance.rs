//! A single-auction instance.
//!
//! One search query that matched one bid phrase produces one auction: a set
//! of interested advertisers (each with a bid `b_i` and an
//! advertiser-specific CTR factor `c_i`) competing for `k` slots with
//! descending slot factors `d_j`.

use serde::{Deserialize, Serialize};

use crate::ctr::CtrError;
use crate::ids::AdvertiserId;
use crate::money::Money;
use crate::score::Score;

/// One advertiser's entry in an auction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionEntry {
    /// Who is bidding.
    pub advertiser: AdvertiserId,
    /// The maximum amount the advertiser will pay for a click, `b_i`.
    pub bid: Money,
    /// The advertiser-specific CTR factor `c_i` (for this phrase).
    pub advertiser_factor: f64,
}

impl AuctionEntry {
    /// Creates an entry.
    pub fn new(advertiser: AdvertiserId, bid: Money, advertiser_factor: f64) -> Self {
        AuctionEntry {
            advertiser,
            bid,
            advertiser_factor,
        }
    }

    /// The ranking score `b_i * c_i` (Section II-A).
    #[inline]
    pub fn score(&self) -> Score {
        Score::expected_value(self.bid, self.advertiser_factor)
    }
}

/// A single winner-determination problem instance under separability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionInstance {
    entries: Vec<AuctionEntry>,
    /// Slot-specific CTR factors `d_j`, sorted descending.
    slot_factors: Vec<f64>,
}

impl AuctionInstance {
    /// Builds an instance. Slot factors must be finite, non-negative, and
    /// sorted descending; entry factors must be finite and non-negative.
    pub fn new(entries: Vec<AuctionEntry>, slot_factors: Vec<f64>) -> Result<Self, CtrError> {
        for (position, &d) in slot_factors.iter().enumerate() {
            if !d.is_finite() || d < 0.0 {
                return Err(CtrError::InvalidFactor { position });
            }
        }
        for (position, w) in slot_factors.windows(2).enumerate() {
            if w[1] > w[0] {
                return Err(CtrError::UnsortedSlots {
                    position: position + 1,
                });
            }
        }
        for (position, e) in entries.iter().enumerate() {
            if !e.advertiser_factor.is_finite() || e.advertiser_factor < 0.0 {
                return Err(CtrError::InvalidFactor { position });
            }
        }
        Ok(AuctionInstance {
            entries,
            slot_factors,
        })
    }

    /// The competing entries, in input order.
    #[inline]
    pub fn entries(&self) -> &[AuctionEntry] {
        &self.entries
    }

    /// Slot factors `d_j`, descending.
    #[inline]
    pub fn slot_factors(&self) -> &[f64] {
        &self.slot_factors
    }

    /// Number of slots `k`.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slot_factors.len()
    }

    /// Number of competing advertisers `n`.
    #[inline]
    pub fn advertiser_count(&self) -> usize {
        self.entries.len()
    }

    /// The paper's Figure 1–3 worked example: three advertisers A, B, C
    /// with factors 1.2/1.1/1.3 and two slots with factors 0.3/0.2; bids
    /// chosen so that winner determination assigns slot 1 to A and slot 2
    /// to B.
    pub fn paper_example() -> Self {
        // Figure 3 itself is not reproduced numerically in the provided
        // text, but the outcome is stated: A wins slot 1, B wins slot 2,
        // C loses. Bids 2.00 / 2.00 / 1.60 give scores
        // 2.4 / 2.2 / 2.08, realizing exactly that outcome.
        AuctionInstance::new(
            vec![
                AuctionEntry::new(AdvertiserId(0), Money::from_units(2), 1.2),
                AuctionEntry::new(AdvertiserId(1), Money::from_units(2), 1.1),
                AuctionEntry::new(AdvertiserId(2), Money::from_f64(1.6), 1.3),
            ],
            vec![0.3, 0.2],
        )
        .expect("static example is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_scores() {
        let inst = AuctionInstance::paper_example();
        let scores: Vec<f64> = inst.entries().iter().map(|e| e.score().value()).collect();
        assert!((scores[0] - 2.4).abs() < 1e-9);
        assert!((scores[1] - 2.2).abs() < 1e-9);
        assert!((scores[2] - 2.08).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_slot_factors() {
        let err = AuctionInstance::new(vec![], vec![0.1, 0.2]).unwrap_err();
        assert_eq!(err, CtrError::UnsortedSlots { position: 1 });
        let err = AuctionInstance::new(vec![], vec![f64::INFINITY]).unwrap_err();
        assert_eq!(err, CtrError::InvalidFactor { position: 0 });
    }

    #[test]
    fn rejects_bad_entry_factor() {
        let err = AuctionInstance::new(
            vec![AuctionEntry::new(
                AdvertiserId(0),
                Money::from_units(1),
                -1.0,
            )],
            vec![0.3],
        )
        .unwrap_err();
        assert_eq!(err, CtrError::InvalidFactor { position: 0 });
    }

    #[test]
    fn empty_auction_is_fine() {
        let inst = AuctionInstance::new(vec![], vec![0.3, 0.2]).unwrap();
        assert_eq!(inst.slot_count(), 2);
        assert_eq!(inst.advertiser_count(), 0);
    }
}
