//! Expressive bidding: clicks, impressions, and purchases.
//!
//! Section V describes the framework of Martin–Gehrke–Halpern (ICDE 2008)
//! that this paper's shared top-k algorithms plug into: "Advertisers are
//! allowed to bid on clicks, impressions, and purchases resulting from
//! displaying their ad, and click-through and purchase rates are allowed
//! to be non-separable." This module completes that substrate:
//!
//! * [`ExpressiveBid`] — a bid priced per impression, per click, or per
//!   purchase;
//! * [`expected_value`] — the advertiser–slot edge weight: the expected
//!   payment realized by displaying the ad in the slot, under
//!   non-separable click and purchase rates;
//! * [`determine_winners_expressive`] — graph pruning + maximum-weight
//!   matching over those edges (the [10] pipeline, generalized beyond
//!   per-click bids);
//! * [`vcg_prices_expressive`] — VCG payments computed by re-solving the
//!   matching with each winner removed (the externality each winner
//!   imposes), the truthful pricing the framework calls for.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::assignment::max_weight_assignment;
use crate::ctr::CtrModel;
use crate::ids::{AdvertiserId, SlotIndex};
use crate::money::Money;
use crate::score::Score;
use crate::winner::{Assignment, RankedWinner};

/// What event the advertiser pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BidBasis {
    /// Pay every time the ad is shown.
    PerImpression,
    /// Pay when the user clicks (the classic sponsored-search bid).
    PerClick,
    /// Pay when the user clicks *and* converts.
    PerPurchase,
}

/// An expressive bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpressiveBid {
    /// Who is bidding.
    pub advertiser: AdvertiserId,
    /// The payment event.
    pub basis: BidBasis,
    /// Amount paid per event.
    pub amount: Money,
}

/// Purchase (conversion) rates: the probability that a click converts,
/// per advertiser. Purchase rates may differ per advertiser but — like
/// the paper's treatment — are taken to be slot-independent (the slot
/// affects whether the click happens, not what the user does after it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PurchaseRates {
    rates: Vec<f64>,
}

impl PurchaseRates {
    /// Builds from per-advertiser conversion probabilities (clamped into
    /// `[0, 1]`).
    pub fn new(rates: Vec<f64>) -> Self {
        PurchaseRates {
            rates: rates
                .into_iter()
                .map(|r| if r.is_nan() { 0.0 } else { r.clamp(0.0, 1.0) })
                .collect(),
        }
    }

    /// Uniform conversion probability for `n` advertisers.
    pub fn uniform(n: usize, rate: f64) -> Self {
        PurchaseRates::new(vec![rate; n])
    }

    /// The conversion probability of `advertiser`'s clicks.
    pub fn rate(&self, advertiser: AdvertiserId) -> f64 {
        self.rates.get(advertiser.index()).copied().unwrap_or(0.0)
    }
}

/// The expected payment realized by placing `bid`'s ad in `slot`:
///
/// * per impression — the amount itself (the impression is certain);
/// * per click — `ctr_ij · amount`;
/// * per purchase — `ctr_ij · purchase_rate_i · amount`.
pub fn expected_value<M: CtrModel>(
    model: &M,
    purchases: &PurchaseRates,
    bid: &ExpressiveBid,
    slot: SlotIndex,
) -> f64 {
    let amount = bid.amount.to_f64();
    match bid.basis {
        BidBasis::PerImpression => amount,
        BidBasis::PerClick => model.ctr(bid.advertiser, slot).value() * amount,
        BidBasis::PerPurchase => {
            model.ctr(bid.advertiser, slot).value() * purchases.rate(bid.advertiser) * amount
        }
    }
}

/// The outcome of expressive winner determination.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpressiveOutcome {
    /// The slot assignment (slots may stay empty).
    pub assignment: Assignment,
    /// Total expected realized payment of the assignment.
    pub expected_value: f64,
    /// Candidates surviving the per-slot top-k pruning.
    pub candidates_after_pruning: usize,
}

fn edge_matrix<M: CtrModel>(
    model: &M,
    purchases: &PurchaseRates,
    bids: &[ExpressiveBid],
    candidates: &[usize],
) -> Vec<Vec<f64>> {
    (0..model.slot_count())
        .map(|j| {
            candidates
                .iter()
                .map(|&c| expected_value(model, purchases, &bids[c], SlotIndex(j as u8)))
                .collect()
        })
        .collect()
}

/// Per-slot top-k pruning over expressive edge weights (ties by
/// advertiser id), exactly as in the per-click pipeline.
fn prune<M: CtrModel>(model: &M, purchases: &PurchaseRates, bids: &[ExpressiveBid]) -> Vec<usize> {
    let k = model.slot_count();
    let mut keep: BTreeSet<usize> = BTreeSet::new();
    for j in 0..k {
        let slot = SlotIndex(j as u8);
        let mut idx: Vec<usize> = (0..bids.len()).collect();
        idx.sort_by(|&a, &b| {
            let wa = Score::new(expected_value(model, purchases, &bids[a], slot));
            let wb = Score::new(expected_value(model, purchases, &bids[b], slot));
            wb.cmp(&wa)
                .then(bids[a].advertiser.cmp(&bids[b].advertiser))
        });
        keep.extend(idx.into_iter().take(k));
    }
    keep.into_iter().collect()
}

/// Winner determination for expressive bids: prune to the per-slot top-k
/// candidates, then maximum-weight matching. Lossless, as in the
/// per-click case.
pub fn determine_winners_expressive<M: CtrModel>(
    model: &M,
    purchases: &PurchaseRates,
    bids: &[ExpressiveBid],
) -> ExpressiveOutcome {
    let candidates = prune(model, purchases, bids);
    let weights = edge_matrix(model, purchases, bids, &candidates);
    let matching = max_weight_assignment(&weights);
    let mut winners = Vec::new();
    for (j, col) in matching.row_to_col.iter().enumerate() {
        if let Some(c) = col {
            let w = weights[j][*c];
            if w > 0.0 {
                winners.push(RankedWinner {
                    slot: SlotIndex(j as u8),
                    advertiser: bids[candidates[*c]].advertiser,
                    score: Score::new(w),
                });
            }
        }
    }
    let expected_value = winners.iter().map(|w| w.score.value()).sum();
    ExpressiveOutcome {
        assignment: Assignment::from_winners(winners),
        expected_value,
        candidates_after_pruning: candidates.len(),
    }
}

/// One winner's VCG charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcgCharge {
    /// The winner.
    pub advertiser: AdvertiserId,
    /// The slot won.
    pub slot: SlotIndex,
    /// Expected payment charged (per impression equivalent): the welfare
    /// the winner's presence denies the others.
    pub expected_payment: f64,
}

/// VCG payments for the expressive matching: each winner pays the
/// difference between the others' optimal welfare without it and their
/// welfare in the chosen matching. Truthful for this setting, and each
/// payment never exceeds the winner's own edge value (individual
/// rationality), which the tests assert.
pub fn vcg_prices_expressive<M: CtrModel>(
    model: &M,
    purchases: &PurchaseRates,
    bids: &[ExpressiveBid],
) -> Vec<VcgCharge> {
    let outcome = determine_winners_expressive(model, purchases, bids);
    let full_value = outcome.expected_value;
    outcome
        .assignment
        .winners()
        .iter()
        .map(|w| {
            let without: Vec<ExpressiveBid> = bids
                .iter()
                .copied()
                .filter(|b| b.advertiser != w.advertiser)
                .collect();
            let alt = determine_winners_expressive(model, purchases, &without);
            // Others' welfare with the winner present = full − winner's edge.
            let others_with = full_value - w.score.value();
            let payment = (alt.expected_value - others_with).max(0.0);
            VcgCharge {
                advertiser: w.advertiser,
                slot: w.slot,
                expected_payment: payment,
            }
        })
        .collect()
}

/// Exhaustive reference over the unpruned graph (test use only).
pub fn brute_force_expressive<M: CtrModel>(
    model: &M,
    purchases: &PurchaseRates,
    bids: &[ExpressiveBid],
) -> f64 {
    let all: Vec<usize> = (0..bids.len()).collect();
    let weights = edge_matrix(model, purchases, bids, &all);
    crate::assignment::brute_force_max_weight(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::CtrMatrix;
    use proptest::prelude::*;

    fn bid(id: u32, basis: BidBasis, units: f64) -> ExpressiveBid {
        ExpressiveBid {
            advertiser: AdvertiserId(id),
            basis,
            amount: Money::from_f64(units),
        }
    }

    #[test]
    fn edge_weights_follow_bases() {
        let matrix = CtrMatrix::new(vec![vec![0.4, 0.2]]).unwrap();
        let purchases = PurchaseRates::uniform(1, 0.25);
        let slot0 = SlotIndex(0);
        let imp = bid(0, BidBasis::PerImpression, 1.0);
        let clk = bid(0, BidBasis::PerClick, 1.0);
        let pur = bid(0, BidBasis::PerPurchase, 1.0);
        assert!((expected_value(&matrix, &purchases, &imp, slot0) - 1.0).abs() < 1e-12);
        assert!((expected_value(&matrix, &purchases, &clk, slot0) - 0.4).abs() < 1e-12);
        assert!((expected_value(&matrix, &purchases, &pur, slot0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn impression_bidders_prefer_any_slot_equally() {
        // A per-impression bidder's weight ignores the slot; a per-click
        // rival should take the good slot when its expected value there
        // is higher.
        let matrix = CtrMatrix::new(vec![vec![0.5, 0.1], vec![0.5, 0.1]]).unwrap();
        let purchases = PurchaseRates::uniform(2, 1.0);
        let bids = vec![
            bid(0, BidBasis::PerImpression, 0.3),
            bid(1, BidBasis::PerClick, 1.0),
        ];
        let out = determine_winners_expressive(&matrix, &purchases, &bids);
        // Advertiser 1's click value: 0.5 in slot 0, 0.1 in slot 1.
        // Advertiser 0 is worth 0.3 anywhere. Optimal: 1 → slot 0 (0.5),
        // 0 → slot 1 (0.3).
        assert_eq!(
            out.assignment.advertiser_in_slot(SlotIndex(0)),
            Some(AdvertiserId(1))
        );
        assert_eq!(
            out.assignment.advertiser_in_slot(SlotIndex(1)),
            Some(AdvertiserId(0))
        );
        assert!((out.expected_value - 0.8).abs() < 1e-12);
    }

    #[test]
    fn purchase_rate_zero_means_zero_value() {
        let matrix = CtrMatrix::new(vec![vec![0.9]]).unwrap();
        let purchases = PurchaseRates::uniform(1, 0.0);
        let bids = vec![bid(0, BidBasis::PerPurchase, 100.0)];
        let out = determine_winners_expressive(&matrix, &purchases, &bids);
        assert!(out.assignment.is_empty(), "no expected value, no slot");
    }

    #[test]
    fn vcg_single_slot_two_bidders_is_second_price() {
        let matrix = CtrMatrix::new(vec![vec![1.0], vec![1.0]]).unwrap();
        let purchases = PurchaseRates::uniform(2, 1.0);
        let bids = vec![
            bid(0, BidBasis::PerImpression, 5.0),
            bid(1, BidBasis::PerImpression, 3.0),
        ];
        let charges = vcg_prices_expressive(&matrix, &purchases, &bids);
        assert_eq!(charges.len(), 1);
        assert_eq!(charges[0].advertiser, AdvertiserId(0));
        assert!((charges[0].expected_payment - 3.0).abs() < 1e-9);
    }

    #[test]
    fn vcg_charges_are_individually_rational() {
        let matrix = CtrMatrix::new(vec![vec![0.5, 0.2], vec![0.4, 0.3], vec![0.2, 0.2]]).unwrap();
        let purchases = PurchaseRates::new(vec![0.5, 0.9, 0.2]);
        let bids = vec![
            bid(0, BidBasis::PerClick, 2.0),
            bid(1, BidBasis::PerPurchase, 4.0),
            bid(2, BidBasis::PerImpression, 0.3),
        ];
        let out = determine_winners_expressive(&matrix, &purchases, &bids);
        for charge in vcg_prices_expressive(&matrix, &purchases, &bids) {
            let winner = out
                .assignment
                .winners()
                .iter()
                .find(|w| w.advertiser == charge.advertiser)
                .expect("charged advertiser won");
            assert!(
                charge.expected_payment <= winner.score.value() + 1e-9,
                "VCG charge {} exceeds edge value {}",
                charge.expected_payment,
                winner.score.value()
            );
            assert!(charge.expected_payment >= -1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Pruned expressive matching equals unpruned brute force.
        #[test]
        fn expressive_pruning_is_lossless(
            n in 1usize..7,
            k in 1usize..4,
            ctrs in proptest::collection::vec(0u8..=100, 28),
            amounts in proptest::collection::vec(1u8..60, 7),
            bases in proptest::collection::vec(0u8..3, 7),
            conv in proptest::collection::vec(0u8..=100, 7),
        ) {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..k).map(|j| ctrs[i * 4 + j] as f64 / 100.0).collect())
                .collect();
            let matrix = CtrMatrix::new(rows).unwrap();
            let purchases =
                PurchaseRates::new(conv[..n].iter().map(|&c| c as f64 / 100.0).collect());
            let bids: Vec<ExpressiveBid> = (0..n)
                .map(|i| {
                    let basis = match bases[i] {
                        0 => BidBasis::PerImpression,
                        1 => BidBasis::PerClick,
                        _ => BidBasis::PerPurchase,
                    };
                    bid(i as u32, basis, amounts[i] as f64 / 10.0)
                })
                .collect();
            let fast = determine_winners_expressive(&matrix, &purchases, &bids).expected_value;
            let exact = brute_force_expressive(&matrix, &purchases, &bids);
            prop_assert!((fast - exact).abs() < 1e-9, "fast {fast} exact {exact}");
        }

        /// VCG payments are bounded by each winner's edge value.
        #[test]
        fn vcg_individual_rationality(
            n in 2usize..6,
            k in 1usize..3,
            ctrs in proptest::collection::vec(1u8..=100, 18),
            amounts in proptest::collection::vec(1u8..40, 6),
        ) {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..k).map(|j| ctrs[i * 3 + j] as f64 / 100.0).collect())
                .collect();
            let matrix = CtrMatrix::new(rows).unwrap();
            let purchases = PurchaseRates::uniform(n, 0.5);
            let bids: Vec<ExpressiveBid> = (0..n)
                .map(|i| bid(i as u32, BidBasis::PerClick, amounts[i] as f64 / 10.0))
                .collect();
            let out = determine_winners_expressive(&matrix, &purchases, &bids);
            for charge in vcg_prices_expressive(&matrix, &purchases, &bids) {
                let winner = out
                    .assignment
                    .winners()
                    .iter()
                    .find(|w| w.advertiser == charge.advertiser)
                    .expect("winner");
                prop_assert!(charge.expected_payment <= winner.score.value() + 1e-9);
                prop_assert!(charge.expected_payment >= -1e-12);
            }
        }
    }
}
