//! Winner determination without the separability assumption.
//!
//! Implements the technique the paper's Section V recounts from Martin,
//! Gehrke & Halpern (ICDE 2008): build the complete bipartite graph between
//! advertisers and slots with edges weighted by expected realized bid
//! `ctr_ij * b_i`, prune it to the advertisers with the k highest edges
//! incident to each slot (at most `k²` candidates), and run the Hungarian
//! algorithm on the pruned graph.
//!
//! The pruning step is exactly where this paper's shared top-k machinery
//! plugs in: "we can use the shared top-k algorithms presented in this
//! paper to find the top k advertisers for each slot in the graph-pruning
//! step".

use std::collections::BTreeSet;

use crate::assignment::{max_weight_assignment, Matching};
use crate::ctr::CtrModel;
use crate::ids::{AdvertiserId, SlotIndex};
use crate::money::Money;
use crate::score::Score;
use crate::winner::{Assignment, RankedWinner};

/// One advertiser's bid in a non-separable auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonSeparableBid {
    /// Who is bidding.
    pub advertiser: AdvertiserId,
    /// Per-click bid `b_i`.
    pub bid: Money,
}

/// Statistics from one non-separable winner determination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruningStats {
    /// Advertisers considered before pruning.
    pub total_advertisers: usize,
    /// Advertisers surviving the per-slot top-k pruning.
    pub candidates_after_pruning: usize,
}

/// Result of non-separable winner determination.
#[derive(Debug, Clone, PartialEq)]
pub struct NonSeparableOutcome {
    /// Slot assignment (slot order).
    pub assignment: Assignment,
    /// Objective value `Σ ctr_ij b_i` over assigned pairs.
    pub expected_value: f64,
    /// Pruning effectiveness.
    pub stats: PruningStats,
}

/// Expected realized bid of `advertiser` in `slot` (the edge weight).
fn edge_weight<M: CtrModel>(model: &M, bid: &NonSeparableBid, slot: SlotIndex) -> f64 {
    model.ctr(bid.advertiser, slot).value() * bid.bid.to_f64()
}

/// Returns the advertisers with the `k` highest edge weights into `slot`,
/// ties broken by advertiser id.
fn top_k_for_slot<M: CtrModel>(
    model: &M,
    bids: &[NonSeparableBid],
    slot: SlotIndex,
    k: usize,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..bids.len()).collect();
    idx.sort_by(|&a, &b| {
        let wa = Score::new(edge_weight(model, &bids[a], slot));
        let wb = Score::new(edge_weight(model, &bids[b], slot));
        wb.cmp(&wa)
            .then(bids[a].advertiser.cmp(&bids[b].advertiser))
    });
    idx.truncate(k);
    idx
}

/// Solves non-separable winner determination: prune to the per-slot top-k
/// advertisers, then find a maximum-weight matching between slots and the
/// surviving candidates with the Hungarian algorithm.
///
/// The pruning is lossless: an optimal matching only ever uses, for each
/// slot, one of that slot's k best advertisers (if an assigned advertiser
/// were outside its slot's top k, some top-k advertiser for that slot is
/// either unassigned or swappable along an exchange path — the argument
/// of [Martin–Gehrke–Halpern 2008]). The differential tests below check
/// this against the unpruned optimum.
pub fn determine_winners_nonseparable<M: CtrModel>(
    model: &M,
    bids: &[NonSeparableBid],
) -> NonSeparableOutcome {
    let k = model.slot_count();
    // Union of per-slot top-k candidate index sets, de-duplicated and
    // kept in ascending index order for determinism.
    let mut candidate_set: BTreeSet<usize> = BTreeSet::new();
    for j in 0..k {
        for idx in top_k_for_slot(model, bids, SlotIndex(j as u8), k) {
            candidate_set.insert(idx);
        }
    }
    let candidates: Vec<usize> = candidate_set.into_iter().collect();

    // Weight matrix: rows = slots, cols = candidates.
    let weights: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            candidates
                .iter()
                .map(|&c| edge_weight(model, &bids[c], SlotIndex(j as u8)))
                .collect()
        })
        .collect();
    let matching: Matching = max_weight_assignment(&weights);

    let mut winners = Vec::new();
    for (j, col) in matching.row_to_col.iter().enumerate() {
        if let Some(c) = col {
            let bid = &bids[candidates[*c]];
            let w = weights[j][*c];
            if w > 0.0 {
                winners.push(RankedWinner {
                    slot: SlotIndex(j as u8),
                    advertiser: bid.advertiser,
                    // In the non-separable case there is no single b*c
                    // score; we record the edge weight (expected realized
                    // bid) as the slot's score.
                    score: Score::new(w),
                });
            }
        }
    }
    let expected_value = winners.iter().map(|w| w.score.value()).sum();
    NonSeparableOutcome {
        assignment: Assignment::from_winners(winners),
        expected_value,
        stats: PruningStats {
            total_advertisers: bids.len(),
            candidates_after_pruning: candidates.len(),
        },
    }
}

/// Exhaustive reference: optimal matching over the *unpruned* graph.
/// Exponential; test use only.
pub fn brute_force_nonseparable<M: CtrModel>(model: &M, bids: &[NonSeparableBid]) -> f64 {
    let k = model.slot_count();
    let weights: Vec<Vec<f64>> = (0..k)
        .map(|j| {
            bids.iter()
                .map(|b| edge_weight(model, b, SlotIndex(j as u8)))
                .collect()
        })
        .collect();
    crate::assignment::brute_force_max_weight(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::{CtrMatrix, SeparableCtr};
    use proptest::prelude::*;

    fn bid(id: u32, units: f64) -> NonSeparableBid {
        NonSeparableBid {
            advertiser: AdvertiserId(id),
            bid: Money::from_f64(units),
        }
    }

    #[test]
    fn agrees_with_separable_path_on_separable_input() {
        let model = SeparableCtr::new(vec![1.2, 1.1, 1.3], vec![0.3, 0.2]).unwrap();
        let matrix = CtrMatrix::from_separable(&model);
        let bids = vec![bid(0, 2.0), bid(1, 2.0), bid(2, 1.6)];
        let outcome = determine_winners_nonseparable(&matrix, &bids);
        // Same outcome as the paper's worked example: A then B.
        assert_eq!(
            outcome.assignment.advertiser_in_slot(SlotIndex(0)),
            Some(AdvertiserId(0))
        );
        assert_eq!(
            outcome.assignment.advertiser_in_slot(SlotIndex(1)),
            Some(AdvertiserId(1))
        );
        // Objective: 0.36*2 + 0.22*2 = 1.16
        assert!((outcome.expected_value - 1.16).abs() < 1e-9);
    }

    #[test]
    fn genuinely_nonseparable_instance() {
        // Advertiser 0 is unusually strong in slot 1 (e.g. its ad creative
        // suits the sidebar); separable ranking would never discover this.
        let matrix = CtrMatrix::new(vec![vec![0.10, 0.30], vec![0.30, 0.05]]).unwrap();
        let bids = vec![bid(0, 1.0), bid(1, 1.0)];
        let outcome = determine_winners_nonseparable(&matrix, &bids);
        assert_eq!(
            outcome.assignment.advertiser_in_slot(SlotIndex(0)),
            Some(AdvertiserId(1))
        );
        assert_eq!(
            outcome.assignment.advertiser_in_slot(SlotIndex(1)),
            Some(AdvertiserId(0))
        );
        assert!((outcome.expected_value - 0.6).abs() < 1e-9);
    }

    #[test]
    fn pruning_bounds_candidates_by_k_squared() {
        // 20 advertisers, 3 slots: candidates must be <= 9.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                (0..3)
                    .map(|j| ((i * 7 + j * 13) % 19) as f64 / 19.0)
                    .collect()
            })
            .collect();
        let matrix = CtrMatrix::new(rows).unwrap();
        let bids: Vec<NonSeparableBid> = (0..20).map(|i| bid(i, 1.0 + (i % 5) as f64)).collect();
        let outcome = determine_winners_nonseparable(&matrix, &bids);
        assert!(outcome.stats.candidates_after_pruning <= 9);
        assert_eq!(outcome.stats.total_advertisers, 20);
    }

    #[test]
    fn optimum_may_leave_the_best_slot_empty() {
        // One advertiser whose ad performs better in the second slot: the
        // optimal assignment fills slot 1 and leaves slot 0 empty.
        let matrix = CtrMatrix::new(vec![vec![0.1, 0.3]]).unwrap();
        let bids = vec![bid(0, 1.0)];
        let outcome = determine_winners_nonseparable(&matrix, &bids);
        assert_eq!(outcome.assignment.advertiser_in_slot(SlotIndex(0)), None);
        assert_eq!(
            outcome.assignment.advertiser_in_slot(SlotIndex(1)),
            Some(AdvertiserId(0))
        );
        assert!((outcome.expected_value - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_bidders() {
        let matrix = CtrMatrix::new(vec![]).unwrap();
        let outcome = determine_winners_nonseparable(&matrix, &[]);
        assert!(outcome.assignment.is_empty());
        assert_eq!(outcome.expected_value, 0.0);
    }

    proptest! {
        /// Pruned Hungarian equals unpruned brute force: pruning is
        /// lossless (the central claim of the [10] substrate).
        #[test]
        fn pruning_is_lossless(
            n in 1usize..7,
            k in 1usize..4,
            ctrs in proptest::collection::vec(0u8..=100, 21),
            bids_raw in proptest::collection::vec(0u8..50, 7),
        ) {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..k).map(|j| ctrs[i * 3 + j] as f64 / 100.0).collect())
                .collect();
            let matrix = CtrMatrix::new(rows).unwrap();
            let bids: Vec<NonSeparableBid> =
                (0..n).map(|i| bid(i as u32, bids_raw[i] as f64 / 10.0)).collect();
            let fast = determine_winners_nonseparable(&matrix, &bids).expected_value;
            let exact = brute_force_nonseparable(&matrix, &bids);
            prop_assert!((fast - exact).abs() < 1e-9, "fast {fast} exact {exact}");
        }
    }
}
