//! Strongly-typed identifiers.
//!
//! Advertisers, bid phrases, and slots are all referred to by dense indices
//! in the paper's formulation (`i ∈ [n]`, `j ∈ [k]`, phrases `q`). Newtype
//! wrappers keep those index spaces from being mixed up at compile time.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index as a usize, for direct vector indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs from a usize index.
            ///
            /// # Panics
            /// Panics if the index exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "id index out of range");
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

dense_id!(
    /// Identifier of an advertiser (the paper's `i ∈ [n]`).
    AdvertiserId,
    "adv"
);

dense_id!(
    /// Identifier of a bid phrase (the paper's `q`); queries are mapped to
    /// bid phrases by the two-stage method of Radlinski et al. before
    /// auctions are resolved, so the engine works in bid-phrase space.
    PhraseId,
    "phrase"
);

dense_id!(
    /// Identifier of a topic in the synthetic workload generator.
    TopicId,
    "topic"
);

/// Index of an advertisement slot on a search result page (the paper's
/// `j ∈ [k]`). Slot 0 has the highest slot-specific CTR factor by
/// convention ("slot j has the j-th highest value of d_j").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotIndex(pub u8);

impl SlotIndex {
    /// The dense index as a usize.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        let a = AdvertiserId::from_index(7);
        assert_eq!(a.index(), 7);
        assert_eq!(a.to_string(), "adv7");
        assert_eq!(PhraseId(3).to_string(), "phrase3");
        assert_eq!(SlotIndex(0).to_string(), "slot0");
        assert_eq!(TopicId::from(2u32), TopicId(2));
    }

    #[test]
    fn ids_sort_by_index() {
        let mut v = vec![AdvertiserId(2), AdvertiserId(0), AdvertiserId(1)];
        v.sort();
        assert_eq!(v, vec![AdvertiserId(0), AdvertiserId(1), AdvertiserId(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_overflow() {
        let _ = AdvertiserId::from_index(u32::MAX as usize + 1);
    }
}
