//! Maximum-weight bipartite assignment (Hungarian algorithm).
//!
//! Section V of the paper describes winner determination without the
//! separability assumption (following Martin, Gehrke & Halpern, ICDE 2008):
//! build a complete bipartite graph between advertisers and slots weighted
//! by expected realized bid, prune it, and find a maximum-weight matching
//! "using the well-known Hungarian algorithm". This module is that
//! substrate, implemented from scratch.
//!
//! The solver is the `O(n² m)` shortest-augmenting-path formulation with
//! dual potentials (Jonker–Volgenant style). Rows may be left unassigned
//! when every available column would contribute negative weight — matching
//! the winner-determination IP, whose constraints are inequalities (a slot
//! may stay empty).

/// Result of a maximum-weight assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// For each row, the column it was matched to (or `None`).
    pub row_to_col: Vec<Option<usize>>,
    /// Total weight of the matching.
    pub total_weight: f64,
}

impl Matching {
    /// Number of rows actually matched.
    pub fn matched_count(&self) -> usize {
        self.row_to_col.iter().flatten().count()
    }
}

/// Finds a maximum-weight assignment of rows to columns.
///
/// `weights[r][c]` is the value of assigning row `r` to column `c`. Every
/// row is matched to at most one column and vice versa. Rows are left
/// unmatched rather than take a negative-weight edge.
///
/// # Panics
/// Panics if the weight matrix is ragged or contains non-finite values.
///
/// ```
/// use ssa_auction::assignment::max_weight_assignment;
/// let m = max_weight_assignment(&[vec![3.0, 1.0], vec![2.0, 4.0]]);
/// assert_eq!(m.row_to_col, vec![Some(0), Some(1)]);
/// assert_eq!(m.total_weight, 7.0);
/// ```
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> Matching {
    let rows = weights.len();
    let cols = weights.first().map_or(0, Vec::len);
    for (r, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), cols, "ragged weight matrix at row {r}");
        for (c, &w) in row.iter().enumerate() {
            assert!(w.is_finite(), "non-finite weight at ({r}, {c})");
        }
    }
    if rows == 0 {
        return Matching {
            row_to_col: Vec::new(),
            total_weight: 0.0,
        };
    }

    // Minimize cost = -weight. Append one dummy zero-cost column per row so
    // a row can always "opt out" (weight 0), which both guarantees the
    // rows <= columns precondition and implements slot-may-stay-empty.
    let m = cols + rows;
    let cost = |r: usize, c: usize| -> f64 {
        if c < cols {
            -weights[r][c]
        } else {
            0.0
        }
    };

    // Shortest-augmenting-path Hungarian with potentials, 1-indexed
    // internally (index 0 is the virtual source column).
    let n = rows;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = free)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta.is_finite(), "augmenting path search stuck");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; rows];
    let mut total_weight = 0.0;
    for j in 1..=m {
        let i = p[j];
        if i != 0 && j - 1 < cols {
            row_to_col[i - 1] = Some(j - 1);
            total_weight += weights[i - 1][j - 1];
        }
    }
    Matching {
        row_to_col,
        total_weight,
    }
}

/// Exhaustive reference solver. Exponential; test use only.
pub fn brute_force_max_weight(weights: &[Vec<f64>]) -> f64 {
    fn recurse(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
        if acc > *best {
            *best = acc;
        }
        if row >= weights.len() {
            return;
        }
        recurse(weights, row + 1, used, acc, best); // leave row unmatched
        for c in 0..used.len() {
            if !used[c] {
                used[c] = true;
                recurse(weights, row + 1, used, acc + weights[row][c], best);
                used[c] = false;
            }
        }
    }
    let cols = weights.first().map_or(0, Vec::len);
    let mut best = 0.0;
    recurse(weights, 0, &mut vec![false; cols], 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix() {
        let m = max_weight_assignment(&[]);
        assert_eq!(m.total_weight, 0.0);
        assert!(m.row_to_col.is_empty());
    }

    #[test]
    fn square_classic() {
        // Classic example: optimum picks the anti-diagonal here.
        let w = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 3.0, 3.0],
            vec![3.0, 3.0, 2.0],
        ];
        let m = max_weight_assignment(&w);
        assert_eq!(m.total_weight, 9.0);
        assert_eq!(m.matched_count(), 3);
    }

    #[test]
    fn more_rows_than_columns_leaves_rows_unmatched() {
        let w = vec![vec![5.0], vec![7.0], vec![6.0]];
        let m = max_weight_assignment(&w);
        assert_eq!(m.total_weight, 7.0);
        assert_eq!(m.row_to_col, vec![None, Some(0), None]);
    }

    #[test]
    fn negative_edges_are_skipped() {
        let w = vec![vec![-1.0, -2.0], vec![4.0, -3.0]];
        let m = max_weight_assignment(&w);
        assert_eq!(m.total_weight, 4.0);
        assert_eq!(m.row_to_col, vec![None, Some(0)]);
    }

    #[test]
    fn all_negative_matches_nothing() {
        let w = vec![vec![-1.0, -2.0], vec![-4.0, -3.0]];
        let m = max_weight_assignment(&w);
        assert_eq!(m.total_weight, 0.0);
        assert_eq!(m.matched_count(), 0);
    }

    #[test]
    fn rectangular_wide() {
        let w = vec![vec![1.0, 9.0, 2.0, 3.0]];
        let m = max_weight_assignment(&w);
        assert_eq!(m.row_to_col, vec![Some(1)]);
        assert_eq!(m.total_weight, 9.0);
    }

    #[test]
    fn matching_is_injective() {
        let w = vec![
            vec![9.0, 9.0, 1.0],
            vec![9.0, 8.0, 1.0],
            vec![1.0, 2.0, 3.0],
        ];
        let m = max_weight_assignment(&w);
        let mut seen = std::collections::HashSet::new();
        for col in m.row_to_col.iter().flatten() {
            assert!(seen.insert(*col), "column {col} assigned twice");
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_matrix() {
        let _ = max_weight_assignment(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = max_weight_assignment(&[vec![f64::NAN]]);
    }

    proptest! {
        /// The Hungarian solver matches brute force on random small
        /// rectangular matrices, including negative weights.
        #[test]
        fn hungarian_matches_brute_force(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(-10i32..10, 25),
        ) {
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|r| (0..cols).map(|c| seed[r * 5 + c] as f64).collect())
                .collect();
            let fast = max_weight_assignment(&w).total_weight;
            let exact = brute_force_max_weight(&w);
            prop_assert!((fast - exact).abs() < 1e-9, "fast {fast} exact {exact}");
        }

        /// Total weight reported equals the sum over the returned matching.
        #[test]
        fn total_weight_is_consistent(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(0u8..100, 25),
        ) {
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|r| (0..cols).map(|c| seed[r * 5 + c] as f64).collect())
                .collect();
            let m = max_weight_assignment(&w);
            let sum: f64 = m
                .row_to_col
                .iter()
                .enumerate()
                .filter_map(|(r, c)| c.map(|c| w[r][c]))
                .sum();
            prop_assert!((sum - m.total_weight).abs() < 1e-9);
        }
    }
}
