//! Pricing rules.
//!
//! "While mechanisms currently in use differ in what pricing rule they use
//! after running winner determination, they all use winner determination as
//! a first step" (Section I). This module implements the three rules the
//! paper names — first-price, generalized second price (GSP, used by Google
//! and Yahoo!), and VCG for position auctions — all of which operate on the
//! ranked output of winner determination and all of which satisfy the
//! paper's standing constraint that *the price charged to an advertiser
//! does not exceed his bid*.

use serde::{Deserialize, Serialize};

use crate::ids::{AdvertiserId, SlotIndex};
use crate::instance::{AuctionEntry, AuctionInstance};
use crate::money::Money;
use crate::winner::{determine_winners, top_k_entries, Assignment};

/// A slot with its winner and the per-click price charged on a click.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PricedSlot {
    /// The slot.
    pub slot: SlotIndex,
    /// The winning advertiser.
    pub advertiser: AdvertiserId,
    /// Price charged if (and only if) the user clicks.
    pub price_per_click: Money,
}

/// The pricing rules named by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PricingRule {
    /// Pay your bid.
    FirstPrice,
    /// Generalized second price with quality weighting: the winner in slot
    /// j pays the minimum bid that would keep it ranked above the next
    /// advertiser, `s_(j+1) / c_(j)` per click.
    GeneralizedSecondPrice,
    /// Vickrey–Clarke–Groves payments for position auctions under
    /// separability (the externality the winner imposes on those below).
    Vcg,
}

/// Runs winner determination then applies `rule`, returning the priced
/// slate.
///
/// ```
/// use ssa_auction::{AuctionInstance, PricingRule};
/// use ssa_auction::pricing::price_auction;
/// let priced = price_auction(&AuctionInstance::paper_example(), PricingRule::GeneralizedSecondPrice);
/// assert_eq!(priced.len(), 2);
/// for p in &priced {
///     println!("{} wins {} at {}", p.advertiser, p.slot, p.price_per_click);
/// }
/// ```
pub fn price_auction(instance: &AuctionInstance, rule: PricingRule) -> Vec<PricedSlot> {
    let assignment = determine_winners(instance);
    price_assignment(instance, &assignment, rule)
}

/// Applies `rule` to an existing assignment (e.g. one computed through a
/// shared plan).
pub fn price_assignment(
    instance: &AuctionInstance,
    assignment: &Assignment,
    rule: PricingRule,
) -> Vec<PricedSlot> {
    price_assignment_parts(
        instance.entries(),
        instance.slot_factors(),
        assignment,
        rule,
    )
}

/// [`price_assignment`] over borrowed instance parts. The engine's hot
/// path prices every occurring phrase per round against one shared
/// slot-factor table; taking slices here means it never clones that table
/// (or re-validates it through [`AuctionInstance::new`]) per phrase.
pub fn price_assignment_parts(
    entries: &[AuctionEntry],
    slot_factors: &[f64],
    assignment: &Assignment,
    rule: PricingRule,
) -> Vec<PricedSlot> {
    match rule {
        PricingRule::FirstPrice => first_price(entries, assignment),
        PricingRule::GeneralizedSecondPrice => gsp(entries, assignment),
        PricingRule::Vcg => vcg(entries, slot_factors, assignment),
    }
}

fn entry_of(entries: &[AuctionEntry], advertiser: AdvertiserId) -> &AuctionEntry {
    entries
        .iter()
        .find(|e| e.advertiser == advertiser)
        .expect("assigned advertiser must be an auction entry")
}

fn first_price(entries: &[AuctionEntry], assignment: &Assignment) -> Vec<PricedSlot> {
    assignment
        .winners()
        .iter()
        .map(|w| PricedSlot {
            slot: w.slot,
            advertiser: w.advertiser,
            price_per_click: entry_of(entries, w.advertiser).bid,
        })
        .collect()
}

/// The ranked scores relevant to pricing: the winners' scores followed by
/// the best score among non-winners (the "runner-up" that sets the last
/// winner's GSP price). Returned best-first.
fn ranked_scores_with_runner_up(entries: &[AuctionEntry], assignment: &Assignment) -> Vec<f64> {
    let k = assignment.len();
    // top_k_entries with k+1 recovers the runner-up deterministically.
    top_k_entries(entries, k + 1)
        .iter()
        .map(|e| e.score().value())
        .collect()
}

fn gsp(entries: &[AuctionEntry], assignment: &Assignment) -> Vec<PricedSlot> {
    let ranked = ranked_scores_with_runner_up(entries, assignment);
    assignment
        .winners()
        .iter()
        .enumerate()
        .map(|(rank, w)| {
            let entry = entry_of(entries, w.advertiser);
            let next_score = ranked.get(rank + 1).copied().unwrap_or(0.0);
            // Minimum bid to stay ranked at `rank`: next_score / c_i.
            let price = if entry.advertiser_factor > 0.0 {
                Money::from_f64(next_score / entry.advertiser_factor)
            } else {
                Money::ZERO
            };
            PricedSlot {
                slot: w.slot,
                advertiser: w.advertiser,
                price_per_click: price.min(entry.bid),
            }
        })
        .collect()
}

/// VCG for position auctions under separability.
///
/// With slot factors `d_1 ≥ … ≥ d_k` (and `d_{k+1} = 0`) and ranked scores
/// `s_(1) ≥ s_(2) ≥ …`, the total expected VCG payment of the advertiser in
/// slot `j` is `Σ_{t=j}^{k} (d_t − d_{t+1}) · s_(t+1)` — the welfare loss
/// it imposes on lower-ranked advertisers. Dividing by the winner's
/// expected click rate `c_i · d_j` converts it to a per-click price.
fn vcg(entries: &[AuctionEntry], slot_factors: &[f64], assignment: &Assignment) -> Vec<PricedSlot> {
    let ranked = ranked_scores_with_runner_up(entries, assignment);
    let d = slot_factors;
    let k = assignment.len();
    assignment
        .winners()
        .iter()
        .enumerate()
        .map(|(rank, w)| {
            let entry = entry_of(entries, w.advertiser);
            let mut total_payment = 0.0;
            for t in rank..k {
                let dt = d[t];
                let dt1 = if t + 1 < d.len() { d[t + 1] } else { 0.0 };
                let s_next = ranked.get(t + 1).copied().unwrap_or(0.0);
                total_payment += (dt - dt1) * s_next;
            }
            let click_rate = entry.advertiser_factor * d[w.slot.index()];
            let price = if click_rate > 0.0 {
                Money::from_f64(total_payment / click_rate)
            } else {
                Money::ZERO
            };
            PricedSlot {
                slot: w.slot,
                advertiser: w.advertiser,
                price_per_click: price.min(entry.bid),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(id: u32, bid_units: f64, factor: f64) -> AuctionEntry {
        AuctionEntry::new(AdvertiserId(id), Money::from_f64(bid_units), factor)
    }

    #[test]
    fn first_price_charges_bids() {
        let inst = AuctionInstance::paper_example();
        let priced = price_auction(&inst, PricingRule::FirstPrice);
        assert_eq!(priced[0].price_per_click, Money::from_units(2));
        assert_eq!(priced[1].price_per_click, Money::from_units(2));
    }

    #[test]
    fn gsp_charges_next_score_over_own_factor() {
        let inst = AuctionInstance::paper_example();
        let priced = price_auction(&inst, PricingRule::GeneralizedSecondPrice);
        // Scores: A=2.4, B=2.2, C=2.08.
        // A pays 2.2/1.2, B pays 2.08/1.1.
        assert!((priced[0].price_per_click.to_f64() - 2.2 / 1.2).abs() < 1e-6);
        assert!((priced[1].price_per_click.to_f64() - 2.08 / 1.1).abs() < 1e-6);
    }

    #[test]
    fn last_winner_with_no_runner_up_pays_zero_under_gsp() {
        let inst = AuctionInstance::new(vec![entry(0, 3.0, 1.0)], vec![0.3, 0.2]).unwrap();
        let priced = price_auction(&inst, PricingRule::GeneralizedSecondPrice);
        assert_eq!(priced.len(), 1);
        assert_eq!(priced[0].price_per_click, Money::ZERO);
    }

    #[test]
    fn vcg_is_weakly_below_gsp() {
        // Known property of position auctions: VCG payments are at most
        // GSP payments (per click) for every slot.
        let inst = AuctionInstance::new(
            vec![
                entry(0, 4.0, 1.0),
                entry(1, 3.0, 1.0),
                entry(2, 2.0, 1.0),
                entry(3, 1.0, 1.0),
            ],
            vec![0.3, 0.2, 0.1],
        )
        .unwrap();
        let gsp_prices = price_auction(&inst, PricingRule::GeneralizedSecondPrice);
        let vcg_prices = price_auction(&inst, PricingRule::Vcg);
        for (g, v) in gsp_prices.iter().zip(&vcg_prices) {
            assert!(
                v.price_per_click <= g.price_per_click,
                "VCG {} > GSP {} in {}",
                v.price_per_click,
                g.price_per_click,
                g.slot
            );
        }
    }

    #[test]
    fn vcg_single_slot_is_second_price() {
        // With one slot VCG degenerates to the classic second-price rule
        // (weighted by quality).
        let inst =
            AuctionInstance::new(vec![entry(0, 4.0, 1.0), entry(1, 3.0, 1.0)], vec![0.5]).unwrap();
        let priced = price_auction(&inst, PricingRule::Vcg);
        assert_eq!(priced.len(), 1);
        assert!((priced[0].price_per_click.to_f64() - 3.0).abs() < 1e-6);
    }

    proptest! {
        /// The paper's standing constraint: no pricing rule ever charges
        /// more than the advertiser's bid.
        #[test]
        fn price_never_exceeds_bid(
            bids in proptest::collection::vec(0u32..1000, 1..8),
            factors in proptest::collection::vec(1u32..300, 8),
            k in 1usize..5,
        ) {
            let entries: Vec<AuctionEntry> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| entry(i as u32, b as f64 / 100.0, factors[i] as f64 / 100.0))
                .collect();
            let mut d: Vec<f64> = (0..k).map(|j| 0.4 / (j + 1) as f64).collect();
            d.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let inst = AuctionInstance::new(entries, d).unwrap();
            for rule in [
                PricingRule::FirstPrice,
                PricingRule::GeneralizedSecondPrice,
                PricingRule::Vcg,
            ] {
                for p in price_auction(&inst, rule) {
                    let bid = entry_of(inst.entries(), p.advertiser).bid;
                    prop_assert!(p.price_per_click <= bid, "{rule:?} overcharged");
                }
            }
        }

        /// GSP prices are monotone: better slots never cost less per click
        /// when all advertiser factors are equal.
        #[test]
        fn gsp_monotone_for_uniform_quality(
            bids in proptest::collection::vec(1u32..1000, 2..8),
        ) {
            let entries: Vec<AuctionEntry> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| entry(i as u32, b as f64 / 100.0, 1.0))
                .collect();
            let inst = AuctionInstance::new(entries, vec![0.3, 0.2, 0.1]).unwrap();
            let priced = price_auction(&inst, PricingRule::GeneralizedSecondPrice);
            for pair in priced.windows(2) {
                prop_assert!(pair[0].price_per_click >= pair[1].price_per_click);
            }
        }
    }
}
