//! Click-through-rate models.
//!
//! The probability `ctr_ij` that a user clicks advertiser `i`'s ad when it
//! is displayed in slot `j`. The paper's Section II-A adopts the
//! *separability assumption* used by the deployed systems it cites:
//! `ctr_ij = c_i * d_j`, where `c_i` is an advertiser-specific factor and
//! `d_j` a slot-specific factor (Figures 1 and 2 of the paper). Section V
//! discusses the non-separable case, which we model with a dense matrix.

use serde::{Deserialize, Serialize};

use crate::ids::{AdvertiserId, SlotIndex};

/// A probability in `[0, 1]`.
///
/// Construction clamps out-of-range and NaN inputs, so downstream
/// probability arithmetic never sees an invalid value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ctr(f64);

impl PartialOrd for Ctr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ctr {
    /// The zero probability.
    pub const ZERO: Ctr = Ctr(0.0);
    /// The certain click.
    pub const ONE: Ctr = Ctr(1.0);

    /// Constructs a CTR, clamping into `[0, 1]` (NaN becomes 0).
    #[inline]
    pub fn new(p: f64) -> Self {
        if p.is_nan() {
            Ctr(0.0)
        } else {
            Ctr(p.clamp(0.0, 1.0))
        }
    }

    /// The probability as a raw f64.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 - p`.
    #[inline]
    pub fn complement(self) -> Ctr {
        Ctr(1.0 - self.0)
    }
}

impl Eq for Ctr {}

impl Ord for Ctr {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Anything that can produce a click-through rate for an
/// (advertiser, slot) pair.
pub trait CtrModel {
    /// Number of slots the model covers.
    fn slot_count(&self) -> usize;

    /// The click-through rate of `advertiser`'s ad in `slot`.
    fn ctr(&self, advertiser: AdvertiserId, slot: SlotIndex) -> Ctr;
}

/// Separable click-through rates: `ctr_ij = c_i * d_j`.
///
/// Slot factors are stored sorted descending (slot 0 is the best slot), the
/// normalization the paper adopts "without loss of generality".
///
/// ```
/// use ssa_auction::ctr::{SeparableCtr, CtrModel};
/// use ssa_auction::ids::{AdvertiserId, SlotIndex};
/// // Figure 1/2 of the paper: c = [1.2, 1.1, 1.3], d = [0.3, 0.2].
/// let model = SeparableCtr::new(vec![1.2, 1.1, 1.3], vec![0.3, 0.2]).unwrap();
/// let ctr_a1 = model.ctr(AdvertiserId(0), SlotIndex(0));
/// assert!((ctr_a1.value() - 0.36).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeparableCtr {
    advertiser_factors: Vec<f64>,
    slot_factors: Vec<f64>,
}

/// Errors constructing a CTR model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrError {
    /// A factor was negative, NaN, or infinite.
    InvalidFactor {
        /// Index of the offending factor within its input vector.
        position: usize,
    },
    /// Slot factors must be sorted descending.
    UnsortedSlots {
        /// First slot index that is larger than its predecessor.
        position: usize,
    },
    /// Matrix dimensions disagree.
    RaggedMatrix {
        /// The first row whose length differs from row 0.
        row: usize,
    },
}

impl std::fmt::Display for CtrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrError::InvalidFactor { position } => write!(
                f,
                "CTR factor at position {position} is not a finite non-negative number"
            ),
            CtrError::UnsortedSlots { position } => write!(
                f,
                "slot factors must be sorted in descending order (violated at slot {position})"
            ),
            CtrError::RaggedMatrix { row } => {
                write!(f, "CTR matrix rows have inconsistent lengths (row {row})")
            }
        }
    }
}

impl std::error::Error for CtrError {}

fn validate_factors(factors: &[f64]) -> Result<(), CtrError> {
    for (position, &f) in factors.iter().enumerate() {
        if !f.is_finite() || f < 0.0 {
            return Err(CtrError::InvalidFactor { position });
        }
    }
    Ok(())
}

impl SeparableCtr {
    /// Builds a separable model from advertiser factors `c_i` and slot
    /// factors `d_j`. Slot factors must be sorted descending and all
    /// factors finite and non-negative.
    pub fn new(advertiser_factors: Vec<f64>, slot_factors: Vec<f64>) -> Result<Self, CtrError> {
        validate_factors(&advertiser_factors)?;
        validate_factors(&slot_factors)?;
        for (position, w) in slot_factors.windows(2).enumerate() {
            if w[1] > w[0] {
                return Err(CtrError::UnsortedSlots {
                    position: position + 1,
                });
            }
        }
        Ok(SeparableCtr {
            advertiser_factors,
            slot_factors,
        })
    }

    /// The advertiser-specific factor `c_i`.
    #[inline]
    pub fn advertiser_factor(&self, advertiser: AdvertiserId) -> f64 {
        self.advertiser_factors[advertiser.index()]
    }

    /// All advertiser factors.
    #[inline]
    pub fn advertiser_factors(&self) -> &[f64] {
        &self.advertiser_factors
    }

    /// The slot-specific factor `d_j`.
    #[inline]
    pub fn slot_factor(&self, slot: SlotIndex) -> f64 {
        self.slot_factors[slot.index()]
    }

    /// All slot factors, descending.
    #[inline]
    pub fn slot_factors(&self) -> &[f64] {
        &self.slot_factors
    }

    /// Number of advertisers covered.
    #[inline]
    pub fn advertiser_count(&self) -> usize {
        self.advertiser_factors.len()
    }
}

impl CtrModel for SeparableCtr {
    fn slot_count(&self) -> usize {
        self.slot_factors.len()
    }

    fn ctr(&self, advertiser: AdvertiserId, slot: SlotIndex) -> Ctr {
        Ctr::new(self.advertiser_factor(advertiser) * self.slot_factor(slot))
    }
}

/// A dense, non-separable CTR matrix: `matrix[i][j] = ctr_ij`.
///
/// Used for the Section V setting where the separability assumption does
/// not hold and winner determination requires bipartite matching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtrMatrix {
    /// `rows[i][j]` is the CTR of advertiser `i` in slot `j`.
    rows: Vec<Vec<Ctr>>,
    slots: usize,
}

impl CtrMatrix {
    /// Builds a matrix from per-advertiser rows of raw probabilities.
    /// All rows must have equal length.
    pub fn new(raw: Vec<Vec<f64>>) -> Result<Self, CtrError> {
        let slots = raw.first().map_or(0, Vec::len);
        let mut rows = Vec::with_capacity(raw.len());
        for (row_idx, row) in raw.into_iter().enumerate() {
            if row.len() != slots {
                return Err(CtrError::RaggedMatrix { row: row_idx });
            }
            rows.push(row.into_iter().map(Ctr::new).collect());
        }
        Ok(CtrMatrix { rows, slots })
    }

    /// Builds the matrix corresponding to a separable model — handy for
    /// differential testing of the two winner-determination paths.
    pub fn from_separable(model: &SeparableCtr) -> Self {
        let rows = (0..model.advertiser_count())
            .map(|i| {
                (0..model.slot_count())
                    .map(|j| model.ctr(AdvertiserId::from_index(i), SlotIndex(j as u8)))
                    .collect()
            })
            .collect();
        CtrMatrix {
            rows,
            slots: model.slot_count(),
        }
    }

    /// Number of advertisers covered.
    #[inline]
    pub fn advertiser_count(&self) -> usize {
        self.rows.len()
    }
}

impl CtrModel for CtrMatrix {
    fn slot_count(&self) -> usize {
        self.slots
    }

    fn ctr(&self, advertiser: AdvertiserId, slot: SlotIndex) -> Ctr {
        self.rows[advertiser.index()][slot.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 click-through rates decompose exactly into the
    /// Figure 2 factors; verify every cell.
    #[test]
    fn figure_1_and_2_agree() {
        let model = SeparableCtr::new(vec![1.2, 1.1, 1.3], vec![0.3, 0.2]).unwrap();
        let expected = [[0.36, 0.24], [0.33, 0.22], [0.39, 0.26]];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                let got = model
                    .ctr(AdvertiserId::from_index(i), SlotIndex(j as u8))
                    .value();
                assert!((got - want).abs() < 1e-12, "ctr[{i}][{j}] = {got}");
            }
        }
    }

    #[test]
    fn ctr_clamps_to_unit_interval() {
        assert_eq!(Ctr::new(1.5), Ctr::ONE);
        assert_eq!(Ctr::new(-0.5), Ctr::ZERO);
        assert_eq!(Ctr::new(f64::NAN), Ctr::ZERO);
        assert!((Ctr::new(0.3).complement().value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn rejects_unsorted_slot_factors() {
        let err = SeparableCtr::new(vec![1.0], vec![0.2, 0.3]).unwrap_err();
        assert_eq!(err, CtrError::UnsortedSlots { position: 1 });
    }

    #[test]
    fn rejects_invalid_factors() {
        let err = SeparableCtr::new(vec![f64::NAN], vec![0.3]).unwrap_err();
        assert_eq!(err, CtrError::InvalidFactor { position: 0 });
        let err = SeparableCtr::new(vec![1.0], vec![-0.3]).unwrap_err();
        assert_eq!(err, CtrError::InvalidFactor { position: 0 });
    }

    #[test]
    fn matrix_matches_separable_expansion() {
        let model = SeparableCtr::new(vec![1.2, 1.1, 1.3], vec![0.3, 0.2]).unwrap();
        let matrix = CtrMatrix::from_separable(&model);
        assert_eq!(matrix.advertiser_count(), 3);
        assert_eq!(matrix.slot_count(), 2);
        for i in 0..3 {
            for j in 0..2u8 {
                assert_eq!(
                    matrix.ctr(AdvertiserId::from_index(i), SlotIndex(j)),
                    model.ctr(AdvertiserId::from_index(i), SlotIndex(j))
                );
            }
        }
    }

    #[test]
    fn matrix_rejects_ragged_rows() {
        let err = CtrMatrix::new(vec![vec![0.1, 0.2], vec![0.3]]).unwrap_err();
        assert_eq!(err, CtrError::RaggedMatrix { row: 1 });
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = CtrMatrix::new(vec![]).unwrap();
        assert_eq!(m.advertiser_count(), 0);
        assert_eq!(m.slot_count(), 0);
    }
}
