//! Winner determination for a single auction under separability.
//!
//! Section II-A of the paper: since `ctr_ij = c_i * d_j`, the integer
//! program reduces to finding the one-to-one map `α` from slots to
//! advertisers maximizing `Σ_j b_{α(j)} c_{α(j)} d_j`, which — with slot
//! factors sorted descending — is solved by taking the advertisers with the
//! top-k values of `b_i c_i` and assigning the j-th best to slot j. This is
//! a single scan keeping the top k, i.e. `O(n log k)` time and `O(k)`
//! space.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::ids::{AdvertiserId, SlotIndex};
use crate::instance::{AuctionEntry, AuctionInstance};
use crate::score::Score;

/// A ranked auction winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedWinner {
    /// The slot the advertiser is assigned to.
    pub slot: SlotIndex,
    /// The winning advertiser.
    pub advertiser: AdvertiserId,
    /// The advertiser's ranking score `b_i * c_i`.
    pub score: Score,
}

/// The output of winner determination: slot `j` (best first) is assigned
/// the advertiser with the j-th highest score. Fewer winners than slots are
/// possible when the auction is thin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    winners: Vec<RankedWinner>,
}

impl Assignment {
    /// Builds an assignment from explicit per-slot winners. Winners are
    /// sorted by slot; slots and advertisers must be unique. Slots need not
    /// be contiguous — a non-separable optimum may leave a slot empty.
    ///
    /// # Panics
    /// Panics if a slot or advertiser appears twice.
    pub fn from_winners(mut winners: Vec<RankedWinner>) -> Self {
        winners.sort_by_key(|w| w.slot);
        for pair in winners.windows(2) {
            assert!(
                pair[0].slot != pair[1].slot,
                "slot {} assigned twice",
                pair[0].slot
            );
        }
        let mut advertisers: Vec<AdvertiserId> = winners.iter().map(|w| w.advertiser).collect();
        advertisers.sort_unstable();
        for pair in advertisers.windows(2) {
            assert!(pair[0] != pair[1], "advertiser {} assigned twice", pair[0]);
        }
        Assignment { winners }
    }

    /// The winners in slot order (slot 0 first).
    #[inline]
    pub fn winners(&self) -> &[RankedWinner] {
        &self.winners
    }

    /// Number of slots actually filled.
    #[inline]
    pub fn len(&self) -> usize {
        self.winners.len()
    }

    /// True when nobody won anything.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.winners.is_empty()
    }

    /// The advertiser in `slot`, if it was filled.
    pub fn advertiser_in_slot(&self, slot: SlotIndex) -> Option<AdvertiserId> {
        self.winners
            .iter()
            .find(|w| w.slot == slot)
            .map(|w| w.advertiser)
    }

    /// The slot assigned to `advertiser`, if any.
    pub fn slot_of(&self, advertiser: AdvertiserId) -> Option<SlotIndex> {
        self.winners
            .iter()
            .find(|w| w.advertiser == advertiser)
            .map(|w| w.slot)
    }

    /// The objective value `Σ_j d_j * b_{α(j)} c_{α(j)}`: the total
    /// expected amount of bids realized by this assignment.
    pub fn expected_value(&self, instance: &AuctionInstance) -> f64 {
        self.winners
            .iter()
            .map(|w| instance.slot_factors()[w.slot.index()] * w.score.value())
            .sum()
    }
}

/// Key used to order entries: score descending, then advertiser id
/// ascending for deterministic tie-breaking.
type RankKey = (Score, Reverse<AdvertiserId>);

fn rank_key(entry: &AuctionEntry) -> RankKey {
    (entry.score(), Reverse(entry.advertiser))
}

/// Returns the entries with the `k` highest scores, best first, breaking
/// ties by advertiser id (lower id wins). Runs in `O(n log k)`.
///
/// This is the primitive that Section II shares across auctions: "finding
/// the advertisers with the top k values of `b_i c_i`".
pub fn top_k_entries(entries: &[AuctionEntry], k: usize) -> Vec<AuctionEntry> {
    if k == 0 || entries.is_empty() {
        return Vec::new();
    }
    // Min-heap of the current top k, keyed so the *worst* retained entry is
    // at the top.
    let mut heap: BinaryHeap<Reverse<(Score, Reverse<AdvertiserId>, usize)>> =
        BinaryHeap::with_capacity(k + 1);
    for (idx, entry) in entries.iter().enumerate() {
        let (score, rev_id) = rank_key(entry);
        heap.push(Reverse((score, rev_id, idx)));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut picked: Vec<&AuctionEntry> = heap
        .into_iter()
        .map(|Reverse((_, _, idx))| &entries[idx])
        .collect();
    picked.sort_by_key(|e| std::cmp::Reverse(rank_key(e)));
    picked.into_iter().copied().collect()
}

/// Solves winner determination for one auction: assigns slot `j` to the
/// advertiser with the j-th highest `b_i c_i`.
///
/// Advertisers with zero score are never assigned a slot (displaying them
/// realizes no expected value, and pricing rules would charge them
/// nothing).
///
/// ```
/// use ssa_auction::{determine_winners, AuctionInstance};
/// use ssa_auction::ids::{AdvertiserId, SlotIndex};
/// let inst = AuctionInstance::paper_example();
/// let assignment = determine_winners(&inst);
/// // The paper: "winner determination assigns slot 1 to advertiser A and
/// // slot 2 to advertiser B" (our slots are zero-indexed).
/// assert_eq!(assignment.advertiser_in_slot(SlotIndex(0)), Some(AdvertiserId(0)));
/// assert_eq!(assignment.advertiser_in_slot(SlotIndex(1)), Some(AdvertiserId(1)));
/// ```
pub fn determine_winners(instance: &AuctionInstance) -> Assignment {
    let k = instance.slot_count();
    let ranked = top_k_entries(instance.entries(), k);
    let winners = ranked
        .into_iter()
        .filter(|e| !e.score().is_zero())
        .enumerate()
        .map(|(j, e)| RankedWinner {
            slot: SlotIndex(j as u8),
            advertiser: e.advertiser,
            score: e.score(),
        })
        .collect();
    Assignment { winners }
}

/// Builds an assignment directly from a pre-ranked list of (advertiser,
/// score) pairs — used when the ranking came out of a shared aggregation
/// plan rather than a scan over this auction's entries.
pub fn assignment_from_ranking(ranked: &[(AdvertiserId, Score)], k: usize) -> Assignment {
    let winners = ranked
        .iter()
        .take(k)
        .filter(|(_, s)| !s.is_zero())
        .enumerate()
        .map(|(j, &(advertiser, score))| RankedWinner {
            slot: SlotIndex(j as u8),
            advertiser,
            score,
        })
        .collect();
    Assignment { winners }
}

/// Exhaustive reference solver for the winner-determination integer
/// program: tries every injective mapping of slots to advertisers and
/// returns the best objective value. Exponential — test use only.
pub fn brute_force_optimal_value(instance: &AuctionInstance) -> f64 {
    fn recurse(
        instance: &AuctionInstance,
        slot: usize,
        used: &mut Vec<bool>,
        acc: f64,
        best: &mut f64,
    ) {
        if acc > *best {
            *best = acc;
        }
        if slot >= instance.slot_count() {
            return;
        }
        let d = instance.slot_factors()[slot];
        // Option 1: leave this slot empty.
        recurse(instance, slot + 1, used, acc, best);
        // Option 2: fill it with any unused advertiser.
        for (i, entry) in instance.entries().iter().enumerate() {
            if !used[i] {
                used[i] = true;
                recurse(
                    instance,
                    slot + 1,
                    used,
                    acc + d * entry.score().value(),
                    best,
                );
                used[i] = false;
            }
        }
    }
    let mut best = 0.0;
    let mut used = vec![false; instance.advertiser_count()];
    recurse(instance, 0, &mut used, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Money;

    fn entry(id: u32, bid_units: f64, factor: f64) -> AuctionEntry {
        AuctionEntry::new(AdvertiserId(id), Money::from_f64(bid_units), factor)
    }

    /// E1: the paper's worked example (Figures 1–3).
    #[test]
    fn fig1_3_worked_example() {
        let inst = AuctionInstance::paper_example();
        let a = determine_winners(&inst);
        assert_eq!(a.len(), 2);
        assert_eq!(a.advertiser_in_slot(SlotIndex(0)), Some(AdvertiserId(0)));
        assert_eq!(a.advertiser_in_slot(SlotIndex(1)), Some(AdvertiserId(1)));
        assert_eq!(a.slot_of(AdvertiserId(2)), None);
    }

    #[test]
    fn top_k_orders_by_score_then_id() {
        let entries = vec![
            entry(0, 1.0, 1.0),
            entry(1, 2.0, 1.0),
            entry(2, 1.0, 1.0), // ties with 0; id 0 should rank first
            entry(3, 3.0, 1.0),
        ];
        let top = top_k_entries(&entries, 3);
        let ids: Vec<u32> = top.iter().map(|e| e.advertiser.0).collect();
        assert_eq!(ids, vec![3, 1, 0]);
    }

    #[test]
    fn top_k_with_k_larger_than_n() {
        let entries = vec![entry(0, 1.0, 1.0)];
        assert_eq!(top_k_entries(&entries, 5).len(), 1);
        assert!(top_k_entries(&entries, 0).is_empty());
        assert!(top_k_entries(&[], 3).is_empty());
    }

    #[test]
    fn zero_score_entries_never_win() {
        let inst = AuctionInstance::new(
            vec![entry(0, 0.0, 1.0), entry(1, 1.0, 0.0), entry(2, 1.0, 0.5)],
            vec![0.3, 0.2],
        )
        .unwrap();
        let a = determine_winners(&inst);
        assert_eq!(a.len(), 1);
        assert_eq!(a.advertiser_in_slot(SlotIndex(0)), Some(AdvertiserId(2)));
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instances() {
        // Deterministic small sweep: the top-k-by-score rule must equal the
        // integer program's optimum because slot factors are descending.
        let cases: Vec<AuctionInstance> = vec![
            AuctionInstance::paper_example(),
            AuctionInstance::new(
                vec![
                    entry(0, 5.0, 0.1),
                    entry(1, 1.0, 0.9),
                    entry(2, 2.0, 0.4),
                    entry(3, 0.5, 2.0),
                ],
                vec![0.5, 0.25, 0.1],
            )
            .unwrap(),
            AuctionInstance::new(vec![entry(0, 1.0, 1.0), entry(1, 1.0, 1.0)], vec![0.3, 0.3])
                .unwrap(),
        ];
        for inst in cases {
            let fast = determine_winners(&inst).expected_value(&inst);
            let exact = brute_force_optimal_value(&inst);
            assert!(
                (fast - exact).abs() < 1e-9,
                "fast {fast} != exact {exact} on {inst:?}"
            );
        }
    }

    #[test]
    fn assignment_from_ranking_respects_k_and_zero_scores() {
        let ranked = vec![
            (AdvertiserId(4), Score::new(3.0)),
            (AdvertiserId(2), Score::new(2.0)),
            (AdvertiserId(9), Score::ZERO),
        ];
        let a = assignment_from_ranking(&ranked, 2);
        assert_eq!(a.len(), 2);
        let a = assignment_from_ranking(&ranked, 5);
        assert_eq!(a.len(), 2, "zero-score tail dropped");
        let a = assignment_from_ranking(&ranked, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.advertiser_in_slot(SlotIndex(0)), Some(AdvertiserId(4)));
    }

    #[test]
    fn expected_value_matches_hand_computation() {
        let inst = AuctionInstance::paper_example();
        let a = determine_winners(&inst);
        // 0.3 * 2.4 + 0.2 * 2.2 = 0.72 + 0.44 = 1.16
        assert!((a.expected_value(&inst) - 1.16).abs() < 1e-9);
    }
}
