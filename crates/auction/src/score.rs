//! Totally-ordered f64 scores.
//!
//! Winner determination under separability ranks advertisers by the product
//! `b_i * c_i` (bid times advertiser-specific CTR factor). Those products
//! are real-valued, and Rust's `f64` is only partially ordered, so we wrap
//! it in [`Score`], which enforces a no-NaN invariant at construction and
//! implements `Ord` via `f64::total_cmp`.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

use crate::money::Money;

/// A finite, non-negative score. Ordered totally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Score(f64);

impl Score {
    /// The zero score.
    pub const ZERO: Score = Score(0.0);

    /// Constructs a score, clamping NaN and negatives to zero and
    /// +infinity to `f64::MAX` so the no-NaN/finite invariant always holds.
    #[inline]
    pub fn new(value: f64) -> Self {
        if value.is_nan() || value <= 0.0 {
            Score(0.0)
        } else if value == f64::INFINITY {
            Score(f64::MAX)
        } else {
            Score(value)
        }
    }

    /// The expected-value score `b_i * c_i` for a bid and an
    /// advertiser-specific CTR factor (Section II-A of the paper).
    #[inline]
    pub fn expected_value(bid: Money, advertiser_factor: f64) -> Self {
        Score::new(bid.to_f64() * advertiser_factor)
    }

    /// Raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True iff the score is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Score {
    type Output = Score;
    #[inline]
    fn add(self, rhs: Score) -> Score {
        Score::new(self.0 + rhs.0)
    }
}

impl Mul<f64> for Score {
    type Output = Score;
    #[inline]
    fn mul(self, rhs: f64) -> Score {
        Score::new(self.0 * rhs)
    }
}

impl Sum for Score {
    fn sum<I: Iterator<Item = Score>>(iter: I) -> Score {
        iter.fold(Score::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_and_negatives_clamp_to_zero() {
        assert_eq!(Score::new(f64::NAN), Score::ZERO);
        assert_eq!(Score::new(-1.0), Score::ZERO);
        assert!(Score::new(f64::INFINITY) > Score::new(1e300));
    }

    #[test]
    fn total_order_is_numeric() {
        let mut scores = vec![Score::new(3.0), Score::new(1.0), Score::new(2.0)];
        scores.sort();
        assert_eq!(
            scores,
            vec![Score::new(1.0), Score::new(2.0), Score::new(3.0)]
        );
    }

    #[test]
    fn expected_value_matches_paper_example() {
        // Figure 3-style: advertiser A bids 1.00 with factor 1.2 -> 1.2.
        let s = Score::expected_value(Money::from_units(1), 1.2);
        assert!((s.value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_preserves_invariant() {
        let s = Score::new(2.0) * -3.0;
        assert_eq!(s, Score::ZERO);
        assert_eq!(Score::new(1.0) + Score::new(2.0), Score::new(3.0));
        let total: Score = [1.0, 2.0, 3.0].iter().map(|&v| Score::new(v)).sum();
        assert_eq!(total, Score::new(6.0));
    }
}
