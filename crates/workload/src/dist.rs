//! Sampling distributions, built from scratch on top of `rand`'s uniform
//! source (the sanctioned dependency set has `rand` but not `rand_distr`).

use rand::Rng;

/// A Zipf distribution over ranks `0..n`: rank `r` has weight
/// `1 / (r+1)^exponent`. Sampling is inverse-CDF with binary search over
/// the precomputed cumulative weights — `O(log n)` per sample.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// The normalized probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        let total = *self.cumulative.last().expect("nonempty");
        let prev = if r == 0 { 0.0 } else { self.cumulative[r - 1] };
        (self.cumulative[r] - prev) / total
    }

    /// Draws a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("nonempty");
        let u = rng.random::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// A log-normal distribution, sampled with Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Builds a sampler for `exp(N(mu, sigma²))`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Draws one standard-normal deviate via Box–Muller.
    fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u ∈ (0, 1] to keep ln(u) finite.
        let u = 1.0 - rng.random::<f64>();
        let v = rng.random::<f64>();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Draws a log-normal value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
}

/// A geometric distribution over `{1, 2, …}` with success probability
/// `p`: the number of rounds until a pending click lands.
#[derive(Debug, Clone, Copy)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Builds a sampler; `p` is clamped into `(0, 1]`.
    pub fn new(p: f64) -> Self {
        let p = if p.is_nan() { 1.0 } else { p.clamp(1e-9, 1.0) };
        Geometric { p }
    }

    /// Draws the trial index of the first success (≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = 1.0 - rng.random::<f64>(); // (0, 1]
        let k = (u.ln() / (1.0 - self.p).ln()).ceil();
        k.max(1.0).min(u32::MAX as f64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one_and_decay() {
        let z = Zipf::new(10, 1.0);
        let total: f64 = (0..10).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in 1..10 {
            assert!(z.probability(r) <= z.probability(r - 1));
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.probability(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let freq = count as f64 / trials as f64;
            assert!(
                (freq - z.probability(r)).abs() < 0.01,
                "rank {r}: {freq} vs {}",
                z.probability(r)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_moments_roughly_match() {
        let d = LogNormal::new(0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = (0.125f64).exp(); // exp(sigma^2 / 2)
        assert!(
            (mean - expected).abs() < 0.02,
            "sample mean {mean} vs {expected}"
        );
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(-1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn geometric_mean_is_one_over_p() {
        let g = Geometric::new(0.25);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_certain_click_is_immediate() {
        let g = Geometric::new(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(g.sample(&mut rng), 1);
    }
}
