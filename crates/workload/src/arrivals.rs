//! Query arrival streams and round batching.
//!
//! The introduction sizes the opportunity: "there were over 300,000
//! music-related searches per day …, giving an average of over 1
//! music-related search every 1/3 seconds. If we batched auctions into
//! rounds consisting of 2/3 second intervals (well within the limits of
//! user tolerance studies), then we would expect to see 2 music-related
//! auctions per round." And the tradeoff: "choosing a coarser granularity
//! will lead to higher sharing … \[but\] will also increase the latency."
//!
//! This module provides a merged Poisson arrival stream over bid phrases
//! and a fixed-window batcher that turns it into rounds, reporting the
//! latency each query pays for being batched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssa_auction::ids::PhraseId;

/// One query arrival, already mapped to its bid phrase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryArrival {
    /// Arrival time in seconds from stream start.
    pub time: f64,
    /// The matched bid phrase.
    pub phrase: PhraseId,
}

/// Generates a Poisson stream at `queries_per_second`, with each query's
/// phrase drawn from the (normalized) `phrase_weights`. Deterministic per
/// seed.
///
/// # Panics
/// Panics if the rate is non-positive or the weights are empty/all-zero.
pub fn poisson_stream(
    phrase_weights: &[f64],
    queries_per_second: f64,
    duration_secs: f64,
    seed: u64,
) -> Vec<QueryArrival> {
    assert!(
        queries_per_second > 0.0 && queries_per_second.is_finite(),
        "rate must be positive"
    );
    assert!(!phrase_weights.is_empty(), "need at least one phrase");
    let total_weight: f64 = phrase_weights.iter().sum();
    assert!(total_weight > 0.0, "weights must not all be zero");
    let mut cumulative = Vec::with_capacity(phrase_weights.len());
    let mut acc = 0.0;
    for &w in phrase_weights {
        assert!(w >= 0.0, "weights must be non-negative");
        acc += w;
        cumulative.push(acc);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = 1.0 - rng.random::<f64>();
        t += -u.ln() / queries_per_second;
        if t >= duration_secs {
            return out;
        }
        let pick = rng.random::<f64>() * total_weight;
        let q = cumulative.partition_point(|&c| c <= pick);
        out.push(QueryArrival {
            time: t,
            phrase: PhraseId::from_index(q.min(phrase_weights.len() - 1)),
        });
    }
}

/// One batched round.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedRound {
    /// The round's resolution instant (window end).
    pub resolve_at: f64,
    /// Every query in the round, in arrival order (duplicates kept: two
    /// queries for the same phrase share one auction's winner-
    /// determination work but are both served).
    pub queries: Vec<QueryArrival>,
    /// The distinct phrases auctioned this round, ascending.
    pub distinct_phrases: Vec<PhraseId>,
}

impl BatchedRound {
    /// Latency added to each query by batching: resolve time minus
    /// arrival.
    pub fn added_latencies(&self) -> impl Iterator<Item = f64> + '_ {
        self.queries.iter().map(move |q| self.resolve_at - q.time)
    }

    /// The sharing opportunity: queries served per winner-determination
    /// problem solved.
    pub fn queries_per_auction(&self) -> f64 {
        if self.distinct_phrases.is_empty() {
            0.0
        } else {
            self.queries.len() as f64 / self.distinct_phrases.len() as f64
        }
    }
}

/// Batches arrivals into fixed windows of `window_secs`. Empty windows
/// are skipped (nothing to resolve).
pub fn batch(arrivals: &[QueryArrival], window_secs: f64) -> Vec<BatchedRound> {
    assert!(window_secs > 0.0, "window must be positive");
    let mut rounds: Vec<BatchedRound> = Vec::new();
    for &arrival in arrivals {
        let window_index = (arrival.time / window_secs).floor() as u64;
        let resolve_at = (window_index + 1) as f64 * window_secs;
        match rounds.last_mut() {
            Some(r) if (r.resolve_at - resolve_at).abs() < 1e-12 => r.queries.push(arrival),
            _ => rounds.push(BatchedRound {
                resolve_at,
                queries: vec![arrival],
                distinct_phrases: Vec::new(),
            }),
        }
    }
    for r in &mut rounds {
        let mut phrases: Vec<PhraseId> = r.queries.iter().map(|q| q.phrase).collect();
        phrases.sort_unstable();
        phrases.dedup();
        r.distinct_phrases = phrases;
    }
    rounds
}

/// Summary statistics for a batching configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingStats {
    /// Number of non-empty rounds.
    pub rounds: usize,
    /// Total queries.
    pub queries: usize,
    /// Total distinct-phrase auctions resolved.
    pub auctions: usize,
    /// Mean latency added by batching, seconds.
    pub mean_added_latency: f64,
    /// Maximum latency added, seconds.
    pub max_added_latency: f64,
    /// Mean queries served per auction resolved (the sharing win).
    pub mean_queries_per_auction: f64,
}

/// Computes [`BatchingStats`] for a batched stream.
pub fn batching_stats(rounds: &[BatchedRound]) -> BatchingStats {
    let queries: usize = rounds.iter().map(|r| r.queries.len()).sum();
    let auctions: usize = rounds.iter().map(|r| r.distinct_phrases.len()).sum();
    let mut lat_sum = 0.0;
    let mut lat_max = 0.0f64;
    for r in rounds {
        for l in r.added_latencies() {
            lat_sum += l;
            lat_max = lat_max.max(l);
        }
    }
    BatchingStats {
        rounds: rounds.len(),
        queries,
        auctions,
        mean_added_latency: if queries > 0 {
            lat_sum / queries as f64
        } else {
            0.0
        },
        max_added_latency: lat_max,
        mean_queries_per_auction: if auctions > 0 {
            queries as f64 / auctions as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let arrivals = poisson_stream(&[1.0, 1.0], 10.0, 1000.0, 7);
        let rate = arrivals.len() as f64 / 1000.0;
        assert!((rate - 10.0).abs() < 0.5, "empirical rate {rate}");
        assert!(arrivals.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn phrase_mix_follows_weights() {
        let arrivals = poisson_stream(&[3.0, 1.0], 20.0, 2000.0, 9);
        let first = arrivals.iter().filter(|a| a.phrase == PhraseId(0)).count() as f64;
        let share = first / arrivals.len() as f64;
        assert!((share - 0.75).abs() < 0.03, "share {share}");
    }

    /// The introduction's arithmetic: ~1 query per 1/3 s batched into
    /// 2/3 s rounds gives about 2 queries per round.
    #[test]
    fn intro_music_example() {
        let qps = 3.0; // one per 1/3 second
        let duration = 5000.0;
        let window = 2.0 / 3.0;
        let arrivals = poisson_stream(&[1.0], qps, duration, 11);
        let rounds = batch(&arrivals, window);
        let stats = batching_stats(&rounds);
        // Unconditional mean over all windows (empty ones included) is
        // qps · window = 2; conditional on being non-empty it is
        // 2/(1 − e⁻²) ≈ 2.31.
        let total_windows = duration / window;
        let per_window = stats.queries as f64 / total_windows;
        assert!(
            (per_window - 2.0).abs() < 0.1,
            "expected ≈2 queries per window, got {per_window}"
        );
        let per_nonempty = stats.queries as f64 / stats.rounds as f64;
        let want = 2.0 / (1.0 - (-2.0f64).exp());
        assert!(
            (per_nonempty - want).abs() < 0.1,
            "non-empty-round mean {per_nonempty} vs {want}"
        );
        // Added latency stays within the window — far under the 2.2 s
        // tolerance the paper cites.
        assert!(stats.max_added_latency <= 2.0 / 3.0 + 1e-9);
    }

    #[test]
    fn batching_windows_and_latency() {
        let arrivals = vec![
            QueryArrival {
                time: 0.1,
                phrase: PhraseId(0),
            },
            QueryArrival {
                time: 0.4,
                phrase: PhraseId(1),
            },
            QueryArrival {
                time: 0.4,
                phrase: PhraseId(0),
            },
            QueryArrival {
                time: 1.7,
                phrase: PhraseId(0),
            },
        ];
        let rounds = batch(&arrivals, 0.5);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].queries.len(), 3);
        assert_eq!(rounds[0].distinct_phrases.len(), 2);
        assert!((rounds[0].resolve_at - 0.5).abs() < 1e-12);
        assert!((rounds[1].resolve_at - 2.0).abs() < 1e-12);
        let lats: Vec<f64> = rounds[0].added_latencies().collect();
        assert!((lats[0] - 0.4).abs() < 1e-12);
        assert!((lats[1] - 0.1).abs() < 1e-12);
        assert!((rounds[0].queries_per_auction() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wider_windows_increase_sharing_and_latency() {
        let arrivals = poisson_stream(&[2.0, 1.0, 1.0, 0.5], 12.0, 500.0, 5);
        let narrow = batching_stats(&batch(&arrivals, 0.2));
        let wide = batching_stats(&batch(&arrivals, 1.5));
        assert!(wide.mean_queries_per_auction > narrow.mean_queries_per_auction);
        assert!(wide.mean_added_latency > narrow.mean_added_latency);
        assert_eq!(narrow.queries, wide.queries, "no queries lost");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_rate() {
        poisson_stream(&[1.0], 0.0, 1.0, 0);
    }
}
