//! The paper's named workload scenarios.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssa_auction::ids::AdvertiserId;

/// The Figure 4 protocol: "a set of 10 top-k queries over 20 advertisers.
/// The queries were chosen by flipping coins to determine whether each
/// advertiser would be in the list of top-k contenders, discarding
/// duplicate queries."
///
/// Returns the interest set of each query (exactly `queries` distinct,
/// nonempty sets over `advertisers` advertisers). Deterministic per seed.
pub fn fig4_coinflip_queries(
    advertisers: usize,
    queries: usize,
    seed: u64,
) -> Vec<Vec<AdvertiserId>> {
    assert!(advertisers > 0 && queries > 0);
    assert!(
        queries < (1usize << advertisers.min(30)),
        "cannot draw {queries} distinct subsets of {advertisers} advertisers"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: Vec<Vec<AdvertiserId>> = Vec::with_capacity(queries);
    while chosen.len() < queries {
        let set: Vec<AdvertiserId> = (0..advertisers)
            .filter(|_| rng.random::<bool>())
            .map(AdvertiserId::from_index)
            .collect();
        // Discard duplicates (and the useless empty query).
        if !set.is_empty() && !chosen.contains(&set) {
            chosen.push(set);
        }
    }
    chosen
}

/// The Section II-B example: two phrases ("hiking boots", "high-heels"),
/// 200 general shoe stores interested in both, 40 sports stores in the
/// first only, 30 upscale fashion stores in the second only.
///
/// Returns `(interest_hiking_boots, interest_high_heels)` with advertiser
/// ids laid out as: 0..200 general, 200..240 sports, 240..270 fashion.
pub fn hiking_boots_high_heels() -> (Vec<AdvertiserId>, Vec<AdvertiserId>) {
    let general = 0..200u32;
    let sports = 200..240u32;
    let fashion = 240..270u32;
    let hiking: Vec<AdvertiserId> = general.clone().chain(sports).map(AdvertiserId).collect();
    let heels: Vec<AdvertiserId> = general.chain(fashion).map(AdvertiserId).collect();
    (hiking, heels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_protocol_shape() {
        let queries = fig4_coinflip_queries(20, 10, 42);
        assert_eq!(queries.len(), 10);
        for (i, q) in queries.iter().enumerate() {
            assert!(!q.is_empty());
            assert!(q.iter().all(|a| a.index() < 20));
            assert!(q.windows(2).all(|p| p[0] < p[1]), "sorted");
            for other in &queries[..i] {
                assert_ne!(q, other, "duplicate queries must be discarded");
            }
        }
    }

    #[test]
    fn fig4_is_deterministic() {
        assert_eq!(
            fig4_coinflip_queries(20, 10, 7),
            fig4_coinflip_queries(20, 10, 7)
        );
    }

    #[test]
    #[should_panic(expected = "distinct subsets")]
    fn fig4_rejects_impossible_request() {
        fig4_coinflip_queries(2, 10, 0);
    }

    #[test]
    fn hiking_boots_counts_match_paper() {
        let (hiking, heels) = hiking_boots_high_heels();
        assert_eq!(hiking.len(), 240);
        assert_eq!(heels.len(), 230);
        let shared = hiking.iter().filter(|a| heels.contains(a)).count();
        assert_eq!(shared, 200);
        // Scanning separately: 240 + 230 = 470; via the three groups:
        // 200 + 40 + 30 = 270, i.e. ~40% fewer (the paper's number, with
        // merge costs ignored as in the paper's illustration).
        let separate = hiking.len() + heels.len();
        let grouped = 200 + 40 + 30;
        let savings = 1.0 - grouped as f64 / separate as f64;
        assert!((savings - 0.4255).abs() < 0.01, "savings {savings}");
    }
}
