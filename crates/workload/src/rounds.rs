//! Round sampling.
//!
//! The paper batches auctions into rounds and models phrase occurrence as
//! independent Bernoulli trials: "the event that a bid phrase occurs in a
//! round is an independent Bernoulli trial whose probability is known. We
//! call the probability that bid phrase q occurs its search rate."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssa_auction::ids::PhraseId;

/// Samples, per round, which bid phrases occur.
#[derive(Debug, Clone)]
pub struct RoundSampler {
    search_rates: Vec<f64>,
    rng: StdRng,
}

impl RoundSampler {
    /// Builds a sampler over the given per-phrase search rates.
    ///
    /// # Panics
    /// Panics if a rate is outside `[0, 1]` or NaN.
    pub fn new(search_rates: Vec<f64>, seed: u64) -> Self {
        for (q, &r) in search_rates.iter().enumerate() {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "search rate for phrase {q} out of range: {r}"
            );
        }
        RoundSampler {
            search_rates,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of phrases.
    pub fn phrase_count(&self) -> usize {
        self.search_rates.len()
    }

    /// Draws the set of phrases occurring in the next round, in ascending
    /// phrase order.
    pub fn next_round(&mut self) -> Vec<PhraseId> {
        let rates = &self.search_rates;
        let rng = &mut self.rng;
        (0..rates.len())
            .filter(|&q| rng.random::<f64>() < rates[q])
            .map(PhraseId::from_index)
            .collect()
    }

    /// Draws `n` rounds.
    pub fn rounds(&mut self, n: usize) -> Vec<Vec<PhraseId>> {
        (0..n).map(|_| self.next_round()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrence_frequency_matches_rates() {
        let mut sampler = RoundSampler::new(vec![0.9, 0.5, 0.1, 0.0, 1.0], 17);
        let n = 50_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            for q in sampler.next_round() {
                counts[q.index()] += 1;
            }
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        for (q, (&f, &r)) in freqs.iter().zip(&[0.9, 0.5, 0.1, 0.0, 1.0]).enumerate() {
            assert!((f - r).abs() < 0.01, "phrase {q}: freq {f} vs rate {r}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RoundSampler::new(vec![0.5; 8], 3);
        let mut b = RoundSampler::new(vec![0.5; 8], 3);
        assert_eq!(a.rounds(20), b.rounds(20));
    }

    #[test]
    fn rounds_are_sorted() {
        let mut s = RoundSampler::new(vec![0.7; 16], 9);
        for round in s.rounds(50) {
            assert!(round.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_rate() {
        RoundSampler::new(vec![1.5], 0);
    }
}
