#![warn(missing_docs)]

//! Synthetic sponsored-search workloads.
//!
//! The paper has no public dataset; its motivating structure is that
//! *related bid phrases share interested advertisers* (general shoe stores
//! bid on both "hiking boots" and "high-heels"; sports stores only on the
//! former). This crate generates workloads with exactly that structure:
//!
//! * [`topics`](generator): phrases belong to topics; advertisers are
//!   interested in one or more topics (generalists span many, specialists
//!   few), which induces overlapping per-phrase interest sets `I_q`;
//! * Zipf-distributed per-phrase search rates `sr_q` (a handful of head
//!   phrases occur nearly every round, a long tail rarely), implemented
//!   from scratch in [`dist`];
//! * log-normal bids and budgets ([`dist::LogNormal`], Box–Muller);
//! * Bernoulli round occurrence (the paper's model: "the event that a bid
//!   phrase occurs in a round is an independent Bernoulli trial") in
//!   [`rounds`];
//! * delayed-click simulation for the Section IV budget-uncertainty
//!   experiments ([`clicks`]): each displayed ad clicks with its CTR, after
//!   a geometric number of rounds;
//! * the paper's named scenarios ([`scenarios`]): the Figure 4 protocol
//!   (10 coin-flip queries over 20 advertisers) and the Section II-B
//!   hiking-boots/high-heels example (200/40/30 stores).

pub mod arrivals;
pub mod clicks;
pub mod dist;
pub mod generator;
pub mod rounds;
pub mod scenarios;

pub use generator::{AdvertiserProfile, PhraseProfile, Workload, WorkloadConfig};
pub use rounds::RoundSampler;
