//! Delayed-click simulation.
//!
//! Section IV's budget uncertainty exists because "an advertiser may well
//! be interested in a new auction before he has to pay for his winnings
//! from a previous auction". We model each displayed ad as clicking with
//! its display CTR, after a geometric number of rounds; unclicked ads
//! expire after a deadline, matching the paper's remark that `ctr_j`
//! "reaches 0 after a specified time limit has passed; this will enable us
//! to discard outstanding ads that have received no clicks in a long
//! time".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::Geometric;

/// The eventual fate of one ad impression, decided at display time (the
/// simulator plays the role of the user population).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClickOutcome {
    /// The ad will be clicked `delay` rounds after display (≥ 1).
    ClickAfter {
        /// Rounds until the click lands.
        delay: u32,
    },
    /// The ad will never be clicked.
    NoClick,
}

/// Simulates user clicks on displayed ads.
#[derive(Debug, Clone)]
pub struct ClickSimulator {
    rng: StdRng,
    delay: Geometric,
    /// Geometric delay parameter, kept for the residual-CTR computation.
    delay_p: f64,
    /// Ads unclicked after this many rounds never click (the paper's
    /// outstanding-ad expiry deadline).
    pub expiry_rounds: u32,
}

impl ClickSimulator {
    /// Builds a simulator: clicks land after a geometric delay with mean
    /// `mean_delay_rounds`, capped at `expiry_rounds`.
    pub fn new(seed: u64, mean_delay_rounds: f64, expiry_rounds: u32) -> Self {
        let p = if mean_delay_rounds <= 1.0 {
            1.0
        } else {
            1.0 / mean_delay_rounds
        };
        ClickSimulator {
            rng: StdRng::seed_from_u64(seed),
            delay: Geometric::new(p),
            delay_p: p,
            expiry_rounds,
        }
    }

    /// Decides the fate of one impression with click probability `ctr`.
    pub fn impression(&mut self, ctr: f64) -> ClickOutcome {
        let clicked = self.rng.random::<f64>() < ctr.clamp(0.0, 1.0);
        if !clicked {
            return ClickOutcome::NoClick;
        }
        let delay = self.delay.sample(&mut self.rng);
        if delay > self.expiry_rounds {
            // The user would have clicked, but past the expiry deadline
            // the system discards the outstanding ad — economically a
            // no-click (the provider charges nothing).
            ClickOutcome::NoClick
        } else {
            ClickOutcome::ClickAfter { delay }
        }
    }

    /// The residual click probability of an ad displayed `age` rounds ago
    /// with display-time CTR `ctr` that has not clicked yet: `ctr_j` as a
    /// decreasing function of elapsed time, reaching 0 at expiry. This is
    /// what winner determination plugs into the `S_l` terms.
    pub fn residual_ctr(&self, ctr: f64, age: u32) -> f64 {
        if age >= self.expiry_rounds {
            return 0.0;
        }
        // The delay is geometric with parameter p; conditional on not
        // having clicked in the first `age` rounds, the probability of a
        // click before expiry decays accordingly.
        let p = self.delay_p;
        let remaining = self.expiry_rounds - age;
        let pr_click_eventually = ctr.clamp(0.0, 1.0);
        // Pr(click in (age, expiry] | no click ≤ age)
        //   = ctr · q^age · (1 − q^remaining) / (1 − ctr · (1 − q^age))
        let q: f64 = 1.0 - p;
        let numer = pr_click_eventually * q.powi(age as i32) * (1.0 - q.powi(remaining as i32));
        let denom = 1.0 - pr_click_eventually * (1.0 - q.powi(age as i32));
        if denom <= 0.0 {
            0.0
        } else {
            (numer / denom).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impressions_click_at_ctr_rate() {
        let mut sim = ClickSimulator::new(21, 3.0, 100);
        let n = 100_000;
        let clicks = (0..n)
            .filter(|_| matches!(sim.impression(0.3), ClickOutcome::ClickAfter { .. }))
            .count();
        let rate = clicks as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "click rate {rate}");
    }

    #[test]
    fn zero_ctr_never_clicks() {
        let mut sim = ClickSimulator::new(1, 3.0, 100);
        for _ in 0..100 {
            assert_eq!(sim.impression(0.0), ClickOutcome::NoClick);
        }
    }

    #[test]
    fn delays_are_positive_and_capped() {
        let mut sim = ClickSimulator::new(5, 4.0, 10);
        for _ in 0..10_000 {
            if let ClickOutcome::ClickAfter { delay } = sim.impression(1.0) {
                assert!((1..=10).contains(&delay));
            }
        }
    }

    #[test]
    fn residual_ctr_decreases_with_age_and_expires() {
        let sim = ClickSimulator::new(5, 4.0, 10);
        let mut prev = sim.residual_ctr(0.5, 0);
        assert!(prev > 0.0 && prev <= 0.5);
        for age in 1..10 {
            let cur = sim.residual_ctr(0.5, age);
            assert!(cur <= prev + 1e-12, "age {age}: {cur} > {prev}");
            prev = cur;
        }
        assert_eq!(sim.residual_ctr(0.5, 10), 0.0);
        assert_eq!(sim.residual_ctr(0.5, 11), 0.0);
    }
}
