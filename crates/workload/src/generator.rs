//! Topic-model workload generation.
//!
//! Phrases belong to topics; each advertiser picks a set of topics and is
//! interested in every phrase of those topics (generalists pick many
//! topics, specialists one). This induces the overlapping interest sets
//! `I_q` that shared winner determination exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ssa_auction::ids::{AdvertiserId, PhraseId, TopicId};
use ssa_auction::money::Money;

use crate::dist::{LogNormal, Zipf};

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of advertisers `n`.
    pub advertisers: usize,
    /// Number of bid phrases.
    pub phrases: usize,
    /// Number of topics grouping the phrases.
    pub topics: usize,
    /// Fraction of advertisers that are generalists (interested in many
    /// topics) as opposed to single-topic specialists.
    pub generalist_fraction: f64,
    /// Topics a generalist is interested in.
    pub generalist_topics: usize,
    /// Zipf exponent for phrase search rates (0 = uniform).
    pub search_rate_zipf_exponent: f64,
    /// Search rate assigned to the most popular phrase; the Zipf tail
    /// scales down from this.
    pub max_search_rate: f64,
    /// Log-normal parameters for per-click bids, in currency units.
    pub bid_mu: f64,
    /// Log-normal sigma for bids.
    pub bid_sigma: f64,
    /// Log-normal parameters for daily budgets, in currency units.
    pub budget_mu: f64,
    /// Log-normal sigma for budgets.
    pub budget_sigma: f64,
    /// Standard deviation of the per-phrase perturbation applied to an
    /// advertiser's CTR factor (0 = identical factor for all phrases, the
    /// Section II separable setting; > 0 produces the Section III setting
    /// where `c_i^q` varies by phrase).
    pub phrase_factor_jitter: f64,
    /// Fraction of phrases exempted from factor jitter, producing *mixed*
    /// workloads: the selected phrases keep every interested advertiser's
    /// base factor (plan-eligible under per-phrase hybrid routing) while
    /// the rest get phrase-specific factors. `floor(fraction * phrases)`
    /// phrases are chosen by a seeded shuffle on an RNG stream separate
    /// from the main one, so `0.0` (the default) reproduces pre-knob
    /// workloads bit for bit. Ignored when `phrase_factor_jitter` is 0
    /// (everything is already separable).
    pub separable_fraction: f64,
    /// RNG seed: everything is deterministic given the config.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            advertisers: 1000,
            phrases: 20,
            topics: 5,
            generalist_fraction: 0.4,
            generalist_topics: 3,
            search_rate_zipf_exponent: 1.0,
            max_search_rate: 0.9,
            bid_mu: 0.0, // median bid 1.00
            bid_sigma: 0.6,
            budget_mu: 3.0, // median budget ~20
            budget_sigma: 0.8,
            phrase_factor_jitter: 0.0,
            separable_fraction: 0.0,
            seed: 0xACE_0FBA5E,
        }
    }
}

/// A generated advertiser.
#[derive(Debug, Clone)]
pub struct AdvertiserProfile {
    /// Identifier (dense).
    pub id: AdvertiserId,
    /// Per-click bid `b_i` (shared across phrases, as Section III
    /// requires).
    pub bid: Money,
    /// Daily budget `β_i`.
    pub budget: Money,
    /// Base advertiser CTR factor `c_i`.
    pub base_factor: f64,
    /// Topics the advertiser is interested in.
    pub topics: Vec<TopicId>,
}

/// A generated bid phrase.
#[derive(Debug, Clone)]
pub struct PhraseProfile {
    /// Identifier (dense).
    pub id: PhraseId,
    /// The topic this phrase belongs to.
    pub topic: TopicId,
    /// Probability `sr_q` that the phrase occurs in a round.
    pub search_rate: f64,
}

/// A complete synthetic workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The advertisers.
    pub advertisers: Vec<AdvertiserProfile>,
    /// The bid phrases.
    pub phrases: Vec<PhraseProfile>,
    /// `interest[q]` = sorted advertiser ids interested in phrase `q`
    /// (the paper's `I_q`).
    pub interest: Vec<Vec<AdvertiserId>>,
    /// `phrase_factor[q][position]` = `c_i^q` for the advertiser at
    /// `interest[q][position]`.
    pub phrase_factors: Vec<Vec<f64>>,
}

impl Workload {
    /// Generates a workload from the config. Deterministic per seed.
    pub fn generate(config: &WorkloadConfig) -> Self {
        assert!(config.topics > 0, "need at least one topic");
        assert!(config.phrases > 0, "need at least one phrase");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let bid_dist = LogNormal::new(config.bid_mu, config.bid_sigma);
        let budget_dist = LogNormal::new(config.budget_mu, config.budget_sigma);

        // Advertisers.
        let mut advertisers = Vec::with_capacity(config.advertisers);
        for i in 0..config.advertisers {
            let generalist = rng.random::<f64>() < config.generalist_fraction;
            let topic_count = if generalist {
                config.generalist_topics.clamp(1, config.topics)
            } else {
                1
            };
            // Sample distinct topics.
            let mut topics: Vec<TopicId> = Vec::with_capacity(topic_count);
            while topics.len() < topic_count {
                let t = TopicId(rng.random_range(0..config.topics as u32));
                if !topics.contains(&t) {
                    topics.push(t);
                }
            }
            topics.sort();
            advertisers.push(AdvertiserProfile {
                id: AdvertiserId::from_index(i),
                bid: Money::from_f64(bid_dist.sample(&mut rng)),
                budget: Money::from_f64(budget_dist.sample(&mut rng)),
                base_factor: rng.random_range(0.5..1.5),
                topics,
            });
        }

        // Phrases: topic round-robin, Zipf search rates by phrase rank.
        let zipf = Zipf::new(config.phrases, config.search_rate_zipf_exponent);
        let head = zipf.probability(0).max(f64::MIN_POSITIVE);
        let mut phrases = Vec::with_capacity(config.phrases);
        for q in 0..config.phrases {
            let rate = (config.max_search_rate * zipf.probability(q) / head).clamp(0.0, 1.0);
            phrases.push(PhraseProfile {
                id: PhraseId::from_index(q),
                topic: TopicId((q % config.topics) as u32),
                search_rate: rate,
            });
        }

        // Interest sets: advertiser i is interested in phrase q iff q's
        // topic is among i's topics.
        let mut interest: Vec<Vec<AdvertiserId>> = vec![Vec::new(); config.phrases];
        for adv in &advertisers {
            for phrase in &phrases {
                if adv.topics.contains(&phrase.topic) {
                    interest[phrase.id.index()].push(adv.id);
                }
            }
        }

        // Per-phrase CTR factors: base factor times a log-normal jitter,
        // except on phrases flagged separable. The flag draws come from a
        // dedicated RNG stream so configs with `separable_fraction == 0`
        // reproduce pre-knob workloads bit for bit.
        let separable = separable_flags(config);
        let jitter = LogNormal::new(0.0, config.phrase_factor_jitter.max(0.0));
        let phrase_factors = interest
            .iter()
            .enumerate()
            .map(|(q, advs)| {
                advs.iter()
                    .map(|a| {
                        let base = advertisers[a.index()].base_factor;
                        if config.phrase_factor_jitter > 0.0 && !separable[q] {
                            base * jitter.sample(&mut rng)
                        } else {
                            base
                        }
                    })
                    .collect()
            })
            .collect();

        Workload {
            advertisers,
            phrases,
            interest,
            phrase_factors,
        }
    }

    /// Number of advertisers.
    pub fn advertiser_count(&self) -> usize {
        self.advertisers.len()
    }

    /// True iff every advertiser interested in phrase `q` keeps its base
    /// factor there (within 1e-12) — the per-phrase version of the
    /// Section II separability premise. Such phrases are eligible for the
    /// shared top-k aggregation plan; the hybrid engine routes them there
    /// and sends the rest to the shared sort. Vacuously true for phrases
    /// with empty interest sets.
    pub fn phrase_is_separable(&self, q: usize) -> bool {
        self.interest[q]
            .iter()
            .zip(&self.phrase_factors[q])
            .all(|(a, &f)| (f - self.advertisers[a.index()].base_factor).abs() <= 1e-12)
    }

    /// Number of phrases satisfying [`Workload::phrase_is_separable`].
    pub fn separable_phrase_count(&self) -> usize {
        (0..self.phrase_count())
            .filter(|&q| self.phrase_is_separable(q))
            .count()
    }

    /// Number of phrases.
    pub fn phrase_count(&self) -> usize {
        self.phrases.len()
    }

    /// The `c_i^q` factor for `advertiser` in `phrase`'s auctions, or
    /// `None` if the advertiser is not interested in the phrase.
    pub fn phrase_factor(&self, phrase: PhraseId, advertiser: AdvertiserId) -> Option<f64> {
        let q = phrase.index();
        self.interest[q]
            .binary_search(&advertiser)
            .ok()
            .map(|pos| self.phrase_factors[q][pos])
    }

    /// All per-phrase search rates, indexed by phrase.
    pub fn search_rates(&self) -> Vec<f64> {
        self.phrases.iter().map(|p| p.search_rate).collect()
    }

    /// Mean interest-set overlap between distinct phrase pairs (Jaccard),
    /// a workload diagnostic the sharing experiments sweep.
    pub fn mean_pairwise_jaccard(&self) -> f64 {
        let m = self.interest.len();
        if m < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for a in 0..m {
            for b in (a + 1)..m {
                let sa: std::collections::BTreeSet<_> = self.interest[a].iter().collect();
                let sb: std::collections::BTreeSet<_> = self.interest[b].iter().collect();
                let inter = sa.intersection(&sb).count();
                let union = sa.union(&sb).count();
                if union > 0 {
                    total += inter as f64 / union as f64;
                }
                pairs += 1;
            }
        }
        total / pairs as f64
    }
}

/// Per-phrase separability flags for a config: `floor(fraction * phrases)`
/// phrases chosen by a seeded shuffle on a dedicated RNG stream. All
/// false when the workload has no jitter to exempt phrases from, or when
/// the fraction selects none.
fn separable_flags(config: &WorkloadConfig) -> Vec<bool> {
    let m = config.phrases;
    let mut flags = vec![false; m];
    if config.phrase_factor_jitter <= 0.0 || config.separable_fraction <= 0.0 {
        return flags;
    }
    let count = ((config.separable_fraction.min(1.0) * m as f64).floor() as usize).min(m);
    let mut order: Vec<usize> = (0..m).collect();
    // Fisher–Yates on a salted stream, untangled from the main generator.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e7a_ab1e_f1a6);
    for i in (1..m).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    for &q in order.iter().take(count) {
        flags[q] = true;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            advertisers: 200,
            phrases: 10,
            topics: 4,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(&small_config());
        let b = Workload::generate(&small_config());
        assert_eq!(a.advertisers.len(), b.advertisers.len());
        for (x, y) in a.advertisers.iter().zip(&b.advertisers) {
            assert_eq!(x.bid, y.bid);
            assert_eq!(x.topics, y.topics);
        }
        assert_eq!(a.interest, b.interest);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Workload::generate(&small_config());
        let b = Workload::generate(&WorkloadConfig {
            seed: 99,
            ..small_config()
        });
        assert!(
            a.advertisers
                .iter()
                .zip(&b.advertisers)
                .any(|(x, y)| x.bid != y.bid),
            "different seeds should produce different bids"
        );
    }

    #[test]
    fn interest_sets_follow_topics() {
        let w = Workload::generate(&small_config());
        for phrase in &w.phrases {
            for adv_id in &w.interest[phrase.id.index()] {
                let adv = &w.advertisers[adv_id.index()];
                assert!(
                    adv.topics.contains(&phrase.topic),
                    "{adv_id} listed for {} without the topic",
                    phrase.id
                );
            }
        }
    }

    #[test]
    fn interest_sets_are_sorted_and_queryable() {
        let w = Workload::generate(&small_config());
        for q in 0..w.phrase_count() {
            let ids = &w.interest[q];
            assert!(ids.windows(2).all(|p| p[0] < p[1]), "sorted, unique");
            if let Some(&first) = ids.first() {
                assert!(w.phrase_factor(PhraseId::from_index(q), first).is_some());
            }
        }
        // Not-interested advertiser yields None.
        let w2 = Workload::generate(&WorkloadConfig {
            advertisers: 1,
            topics: 2,
            generalist_fraction: 0.0,
            ..small_config()
        });
        let lonely = w2.advertisers[0].id;
        let uninterested: Vec<usize> = (0..w2.phrase_count())
            .filter(|&q| !w2.interest[q].contains(&lonely))
            .collect();
        assert!(!uninterested.is_empty());
        for q in uninterested {
            assert!(w2.phrase_factor(PhraseId::from_index(q), lonely).is_none());
        }
    }

    #[test]
    fn search_rates_are_zipf_shaped() {
        let w = Workload::generate(&small_config());
        let rates = w.search_rates();
        assert!((rates[0] - 0.9).abs() < 1e-9, "head rate = max_search_rate");
        for pair in rates.windows(2) {
            assert!(pair[0] >= pair[1], "rates decay with rank");
        }
        assert!(rates.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn jitter_produces_phrase_specific_factors() {
        let config = WorkloadConfig {
            phrase_factor_jitter: 0.5,
            ..small_config()
        };
        let w = Workload::generate(&config);
        // Find an advertiser interested in two phrases and compare factors.
        let mut found_difference = false;
        'outer: for a in 0..w.advertiser_count() {
            let id = AdvertiserId::from_index(a);
            let mut seen: Option<f64> = None;
            for q in 0..w.phrase_count() {
                if let Some(f) = w.phrase_factor(PhraseId::from_index(q), id) {
                    if let Some(prev) = seen {
                        if (prev - f).abs() > 1e-12 {
                            found_difference = true;
                            break 'outer;
                        }
                    }
                    seen = Some(f);
                }
            }
        }
        assert!(
            found_difference,
            "jitter should vary factors across phrases"
        );
    }

    #[test]
    fn zero_jitter_keeps_factors_identical_across_phrases() {
        let w = Workload::generate(&small_config());
        for a in 0..w.advertiser_count() {
            let id = AdvertiserId::from_index(a);
            let factors: Vec<f64> = (0..w.phrase_count())
                .filter_map(|q| w.phrase_factor(PhraseId::from_index(q), id))
                .collect();
            for f in &factors {
                assert!((f - w.advertisers[a].base_factor).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn separable_fraction_produces_mixed_workloads() {
        let config = WorkloadConfig {
            phrase_factor_jitter: 0.5,
            separable_fraction: 0.5,
            ..small_config()
        };
        let w = Workload::generate(&config);
        // Exactly floor(0.5 * 10) phrases keep base factors.
        assert_eq!(w.separable_phrase_count(), 5);
        for q in 0..w.phrase_count() {
            if w.phrase_is_separable(q) {
                for (a, &f) in w.interest[q].iter().zip(&w.phrase_factors[q]) {
                    assert!((f - w.advertisers[a.index()].base_factor).abs() <= 1e-12);
                }
            } else {
                assert!(
                    w.interest[q]
                        .iter()
                        .zip(&w.phrase_factors[q])
                        .any(|(a, &f)| {
                            (f - w.advertisers[a.index()].base_factor).abs() > 1e-12
                        }),
                    "non-separable phrase {q} should carry jittered factors"
                );
            }
        }
        // Deterministic per seed.
        let again = Workload::generate(&config);
        assert_eq!(w.phrase_factors, again.phrase_factors);
    }

    #[test]
    fn separable_fraction_edges() {
        // Fraction 1.0 with jitter: every phrase stays separable.
        let all = Workload::generate(&WorkloadConfig {
            phrase_factor_jitter: 0.5,
            separable_fraction: 1.0,
            ..small_config()
        });
        assert_eq!(all.separable_phrase_count(), all.phrase_count());
        // No jitter: the fraction is irrelevant, and the workload matches
        // the plain jitter-free generation draw for draw.
        let a = Workload::generate(&WorkloadConfig {
            separable_fraction: 0.7,
            ..small_config()
        });
        let b = Workload::generate(&small_config());
        assert_eq!(a.phrase_factors, b.phrase_factors);
        assert_eq!(a.interest, b.interest);
        assert_eq!(a.separable_phrase_count(), a.phrase_count());
    }

    #[test]
    fn overlap_diagnostic_in_unit_range() {
        let w = Workload::generate(&small_config());
        let j = w.mean_pairwise_jaccard();
        assert!((0.0..=1.0).contains(&j), "jaccard {j}");
        assert!(j > 0.0, "topic model should give some overlap");
    }
}
