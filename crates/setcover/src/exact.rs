//! Exact minimum set cover by branch and bound.
//!
//! Used to (a) validate the planner's set-cover reduction (Theorem 2) on
//! small instances, (b) measure how close the greedy heuristic gets to
//! optimal, and (c) provide optimal baselines for the Figure 5 complexity
//! experiments. Exponential worst case, as it must be.

use crate::bitset::BitSet;

/// Finds a minimum-cardinality exact cover of `target` from `candidates`
/// (only subsets of `target` are feasible, per the paper's convention).
/// Returns indices of the chosen sets, or `None` if no cover exists.
///
/// Branch and bound: branch on the uncovered element contained in the
/// fewest feasible sets; prune with `⌈uncovered / max_set_size⌉` lower
/// bounds against the incumbent.
pub fn exact_min_cover(target: &BitSet, candidates: &[BitSet]) -> Option<Vec<usize>> {
    let feasible: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].is_subset(target) && !candidates[i].is_empty())
        .collect();

    // Check coverability once up front.
    let mut acc = BitSet::new(target.capacity());
    for &i in &feasible {
        acc.union_with(&candidates[i]);
    }
    if !target.is_subset(&acc) {
        return None;
    }

    let max_set_size = feasible
        .iter()
        .map(|&i| candidates[i].len())
        .max()
        .unwrap_or(1)
        .max(1);

    struct Search<'a> {
        candidates: &'a [BitSet],
        feasible: &'a [usize],
        max_set_size: usize,
        best: Option<Vec<usize>>,
    }

    impl Search<'_> {
        fn run(&mut self, uncovered: &BitSet, chosen: &mut Vec<usize>) {
            if uncovered.is_empty() {
                if self.best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                    self.best = Some(chosen.clone());
                }
                return;
            }
            if let Some(best) = &self.best {
                let lower = chosen.len() + uncovered.len().div_ceil(self.max_set_size);
                if lower >= best.len() {
                    return;
                }
            }
            // Branch on the uncovered element in the fewest feasible sets.
            let mut pivot = None;
            let mut pivot_count = usize::MAX;
            for e in uncovered.iter() {
                let count = self
                    .feasible
                    .iter()
                    .filter(|&&i| self.candidates[i].contains(e))
                    .count();
                if count < pivot_count {
                    pivot_count = count;
                    pivot = Some(e);
                    if count <= 1 {
                        break;
                    }
                }
            }
            let pivot = pivot.expect("uncovered nonempty");
            // Try the sets containing the pivot, largest gain first so the
            // incumbent tightens quickly.
            let mut options: Vec<usize> = self
                .feasible
                .iter()
                .copied()
                .filter(|&i| self.candidates[i].contains(pivot))
                .collect();
            options.sort_by_key(|&i| {
                std::cmp::Reverse(self.candidates[i].intersection_len(uncovered))
            });
            for i in options {
                chosen.push(i);
                let remaining = uncovered.difference(&self.candidates[i]);
                self.run(&remaining, chosen);
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        candidates,
        feasible: &feasible,
        max_set_size,
        best: None,
    };
    search.run(target, &mut Vec::new());
    search.best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bs(capacity: usize, elements: &[usize]) -> BitSet {
        BitSet::from_elements(capacity, elements.iter().copied())
    }

    #[test]
    fn finds_optimal_on_known_instance() {
        // Greedy would pick the size-3 set and need 3 sets total; optimal
        // is the two size-2+2 sets... construct the standard trap:
        // U = {0..5}, sets: {0,1,2}, {3,4,5}, {0,3}, {1,4}, {2,5}.
        let target = BitSet::full(6);
        let candidates = vec![
            bs(6, &[0, 1, 2]),
            bs(6, &[3, 4, 5]),
            bs(6, &[0, 3]),
            bs(6, &[1, 4]),
            bs(6, &[2, 5]),
        ];
        let cover = exact_min_cover(&target, &candidates).unwrap();
        assert_eq!(cover, vec![0, 1]);
    }

    #[test]
    fn returns_none_when_uncoverable() {
        let target = BitSet::full(3);
        assert!(exact_min_cover(&target, &[bs(3, &[0, 1])]).is_none());
        assert!(exact_min_cover(&target, &[]).is_none());
    }

    #[test]
    fn empty_target_is_covered_by_nothing() {
        let cover = exact_min_cover(&BitSet::new(5), &[bs(5, &[0])]).unwrap();
        assert!(cover.is_empty());
    }

    #[test]
    fn exact_cover_convention_respected() {
        // A superset of the target is infeasible even if it is the only
        // way to cover.
        let target = bs(3, &[0, 1]);
        assert!(exact_min_cover(&target, &[bs(3, &[0, 1, 2])]).is_none());
        // But an exact union works.
        let cover = exact_min_cover(&target, &[bs(3, &[0]), bs(3, &[1])]).unwrap();
        assert_eq!(cover.len(), 2);
    }

    /// Exhaustive reference: try all subsets of candidates.
    fn brute_force(target: &BitSet, candidates: &[BitSet]) -> Option<usize> {
        let n = candidates.len();
        let mut best: Option<usize> = None;
        for mask in 0u32..(1 << n) {
            let mut acc = BitSet::new(target.capacity());
            let mut ok = true;
            for (i, candidate) in candidates.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    if !candidate.is_subset(target) {
                        ok = false;
                        break;
                    }
                    acc.union_with(candidate);
                }
            }
            if ok && acc == *target {
                let size = mask.count_ones() as usize;
                if best.is_none_or(|b| size < b) {
                    best = Some(size);
                }
            }
        }
        best
    }

    proptest! {
        #[test]
        fn matches_brute_force(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..8, 1..5), 1..7),
            target_elems in proptest::collection::btree_set(0usize..8, 0..8),
        ) {
            let candidates: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(8, s.iter().copied()))
                .collect();
            let target = BitSet::from_elements(8, target_elems.iter().copied());
            let fast = exact_min_cover(&target, &candidates).map(|c| c.len());
            let slow = brute_force(&target, &candidates);
            prop_assert_eq!(fast, slow);
        }
    }
}
