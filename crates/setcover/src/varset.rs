//! Adaptive sparse/dense variable sets.
//!
//! The plan DAG's node variable sets are *sparse* at scale: a node built
//! from a phrase's interest set holds a few thousand advertisers out of a
//! universe of a million, so a dense n-bit [`BitSet`] per node costs
//! ~125 kB regardless of content — the documented reason plan-bearing
//! strategies used to top out near 100k advertisers. [`VarSet`] stores a
//! sorted, deduplicated `Vec<u32>` while the set is small and promotes to
//! dense 64-bit blocks once membership passes `capacity/32` (at which
//! point the dense form is no bigger and ops get cheaper), giving every
//! plan layer set algebra that costs O(|set|), not O(universe).
//!
//! [`VarSetRef`] is the borrowed, `Copy` view both representations (and
//! [`BitSet`]) lower to; every read-only operation is implemented once on
//! it, so owned sets, pooled CSR storage, and legacy dense sets all share
//! the same comparison/iteration code paths. Equality and hashing are
//! representation-independent (over the ascending element sequence), which
//! is what lets the planner's `by_set`/`by_union` interning maps key on
//! content rather than storage.

use crate::bitset::BitSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::Peekable;

const BITS: usize = 64;

/// FNV-1a offset basis — the seed for [`fnv1a_u32`] chains.
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one element into an FNV-1a hash chain (little-endian bytes).
///
/// Exposed so pooled storage can maintain per-node hashes *incrementally*:
/// extending a set by a suffix extends its hash by the same suffix, which
/// is what makes chain-building O(1) amortized per step instead of
/// rehashing the whole prefix.
#[inline]
pub fn fnv1a_u32(mut h: u64, e: u32) -> u64 {
    for byte in e.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a sorted element run, continuing from `h`.
#[inline]
pub fn fnv1a_extend<I: IntoIterator<Item = u32>>(h: u64, elems: I) -> u64 {
    elems.into_iter().fold(h, fnv1a_u32)
}

/// Sparse sets stay sorted-`u32` while `len <= max(16, capacity/32)`;
/// past that the dense block form is at most the same size (32 sparse
/// elements cost 128 B, as do 32 × 64-bit blocks covering 2048 elements)
/// and per-op costs drop to O(capacity/64). Public so pooled storage can
/// apply the same promotion rule.
#[inline]
pub fn sparse_limit(capacity: usize) -> usize {
    (capacity / 32).max(16)
}

/// A set of `usize` elements from a fixed universe `0..capacity`, stored
/// sparse (sorted `u32`s) or dense (64-bit blocks) depending on size.
///
/// The same-universe contract of [`BitSet`] applies: binary operations
/// require equal capacities (debug-asserted). Equality and hashing ignore
/// representation — a sparse set equals the dense set with the same
/// elements.
#[derive(Clone)]
pub struct VarSet {
    capacity: usize,
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Strictly ascending, deduplicated element indices.
    Sparse(Vec<u32>),
    /// Dense blocks, least-significant bit = smallest element.
    Dense(Box<[u64]>),
}

/// A borrowed, `Copy` view of a set's storage — the common currency all
/// read-only set algebra is written against. Obtained from [`VarSet`],
/// [`BitSet`], or pooled CSR storage via [`AsVarSetRef`].
#[derive(Clone, Copy)]
pub enum VarSetRef<'a> {
    /// View of a strictly ascending, deduplicated element slice.
    Sparse {
        /// The sorted element indices.
        elems: &'a [u32],
        /// Universe size.
        capacity: usize,
    },
    /// View of dense 64-bit blocks.
    Dense {
        /// The bit blocks (`capacity.div_ceil(64)` of them).
        blocks: &'a [u64],
        /// Universe size.
        capacity: usize,
    },
}

/// Types that can lower themselves to a [`VarSetRef`] view.
///
/// Implemented for [`VarSet`], [`BitSet`], and `VarSetRef` itself, so
/// APIs like `PlanDag::node_for` accept any of the three without
/// conversion copies.
pub trait AsVarSetRef {
    /// The borrowed view of this set.
    fn as_set_ref(&self) -> VarSetRef<'_>;
}

impl AsVarSetRef for VarSet {
    #[inline]
    fn as_set_ref(&self) -> VarSetRef<'_> {
        match &self.repr {
            Repr::Sparse(elems) => VarSetRef::Sparse {
                elems,
                capacity: self.capacity,
            },
            Repr::Dense(blocks) => VarSetRef::Dense {
                blocks,
                capacity: self.capacity,
            },
        }
    }
}

impl AsVarSetRef for BitSet {
    #[inline]
    fn as_set_ref(&self) -> VarSetRef<'_> {
        VarSetRef::Dense {
            blocks: self.blocks(),
            capacity: self.capacity(),
        }
    }
}

impl<'a> AsVarSetRef for VarSetRef<'a> {
    #[inline]
    fn as_set_ref(&self) -> VarSetRef<'_> {
        *self
    }
}

impl<'a> VarSetRef<'a> {
    /// The universe size this view lives in.
    #[inline]
    pub fn capacity(self) -> usize {
        match self {
            VarSetRef::Sparse { capacity, .. } | VarSetRef::Dense { capacity, .. } => capacity,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(self) -> usize {
        match self {
            VarSetRef::Sparse { elems, .. } => elems.len(),
            VarSetRef::Dense { blocks, .. } => blocks.iter().map(|b| b.count_ones() as usize).sum(),
        }
    }

    /// True iff the set has no elements.
    #[inline]
    pub fn is_empty(self) -> bool {
        match self {
            VarSetRef::Sparse { elems, .. } => elems.is_empty(),
            VarSetRef::Dense { blocks, .. } => blocks.iter().all(|&b| b == 0),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, element: usize) -> bool {
        match self {
            VarSetRef::Sparse { elems, .. } => {
                element <= u32::MAX as usize && elems.binary_search(&(element as u32)).is_ok()
            }
            VarSetRef::Dense { blocks, capacity } => {
                element < capacity && blocks[element / BITS] & (1u64 << (element % BITS)) != 0
            }
        }
    }

    /// Iterates over elements in ascending order.
    pub fn iter(self) -> VarSetIter<'a> {
        match self {
            VarSetRef::Sparse { elems, .. } => VarSetIter::Sparse(elems.iter()),
            VarSetRef::Dense { blocks, .. } => VarSetIter::Dense {
                blocks,
                next_block: 0,
                cur: 0,
                base: 0,
            },
        }
    }

    /// The smallest element, if any.
    pub fn first(self) -> Option<usize> {
        match self {
            VarSetRef::Sparse { elems, .. } => elems.first().map(|&e| e as usize),
            VarSetRef::Dense { blocks, .. } => blocks
                .iter()
                .enumerate()
                .find(|(_, &b)| b != 0)
                .map(|(i, &b)| i * BITS + b.trailing_zeros() as usize),
        }
    }

    fn check_compatible(self, other: VarSetRef<'_>) {
        debug_assert_eq!(
            self.capacity(),
            other.capacity(),
            "variable sets over different universes"
        );
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(self, other: VarSetRef<'_>) -> usize {
        self.check_compatible(other);
        match (self, other) {
            (VarSetRef::Sparse { elems: a, .. }, VarSetRef::Sparse { elems: b, .. }) => {
                sparse_intersection_len(a, b)
            }
            (VarSetRef::Sparse { elems, .. }, dense @ VarSetRef::Dense { .. })
            | (dense @ VarSetRef::Dense { .. }, VarSetRef::Sparse { elems, .. }) => elems
                .iter()
                .filter(|&&e| dense.contains(e as usize))
                .count(),
            (VarSetRef::Dense { blocks: a, .. }, VarSetRef::Dense { blocks: b, .. }) => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum(),
        }
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_len(self, other: VarSetRef<'_>) -> usize {
        self.len() - self.intersection_len(other)
    }

    /// True iff the sets share no elements.
    pub fn is_disjoint(self, other: VarSetRef<'_>) -> bool {
        self.check_compatible(other);
        match (self, other) {
            (VarSetRef::Sparse { elems: a, .. }, VarSetRef::Sparse { elems: b, .. }) => {
                sparse_is_disjoint(a, b)
            }
            (VarSetRef::Sparse { elems, .. }, dense @ VarSetRef::Dense { .. })
            | (dense @ VarSetRef::Dense { .. }, VarSetRef::Sparse { elems, .. }) => {
                elems.iter().all(|&e| !dense.contains(e as usize))
            }
            (VarSetRef::Dense { blocks: a, .. }, VarSetRef::Dense { blocks: b, .. }) => {
                a.iter().zip(b.iter()).all(|(x, y)| x & y == 0)
            }
        }
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(self, other: VarSetRef<'_>) -> bool {
        self.check_compatible(other);
        match (self, other) {
            (VarSetRef::Sparse { elems: a, .. }, VarSetRef::Sparse { elems: b, .. }) => {
                sparse_is_subset(a, b)
            }
            (VarSetRef::Sparse { elems, .. }, dense @ VarSetRef::Dense { .. }) => {
                elems.iter().all(|&e| dense.contains(e as usize))
            }
            (VarSetRef::Dense { blocks: a, .. }, VarSetRef::Dense { blocks: b, .. }) => {
                a.iter().zip(b.iter()).all(|(x, y)| x & !y == 0)
            }
            (dense @ VarSetRef::Dense { .. }, sparse @ VarSetRef::Sparse { .. }) => {
                dense.len() <= sparse.len() && dense.iter().all(|e| sparse.contains(e))
            }
        }
    }

    /// Iterates `self △ other` (elements in exactly one set) ascending.
    pub fn symmetric_difference(self, other: VarSetRef<'a>) -> SymmetricDifference<'a> {
        self.check_compatible(other);
        SymmetricDifference {
            a: self.iter().peekable(),
            b: other.iter().peekable(),
        }
    }

    /// Deterministic 64-bit FNV-1a content hash over the ascending
    /// element sequence — representation-independent, used by the plan
    /// pool's `by_set` interning.
    pub fn hash64(self) -> u64 {
        match self {
            VarSetRef::Sparse { elems, .. } => fnv1a_extend(FNV_SEED, elems.iter().copied()),
            VarSetRef::Dense { .. } => fnv1a_extend(FNV_SEED, self.iter().map(|e| e as u32)),
        }
    }

    /// Materializes an owned [`VarSet`] with this view's contents.
    pub fn to_var_set(self) -> VarSet {
        match self {
            VarSetRef::Sparse { elems, capacity } => VarSet::from_sorted(capacity, elems.to_vec()),
            VarSetRef::Dense { blocks, capacity } => {
                let len: usize = blocks.iter().map(|b| b.count_ones() as usize).sum();
                if len <= sparse_limit(capacity) {
                    VarSet {
                        capacity,
                        repr: Repr::Sparse(self.iter().map(|e| e as u32).collect()),
                    }
                } else {
                    VarSet {
                        capacity,
                        repr: Repr::Dense(blocks.to_vec().into_boxed_slice()),
                    }
                }
            }
        }
    }

    /// Materializes a dense [`BitSet`] with this view's contents.
    pub fn to_bitset(self) -> BitSet {
        BitSet::from_elements(self.capacity(), self.iter())
    }

    /// Representation-independent set equality (same universe, same
    /// elements).
    pub fn set_eq(self, other: VarSetRef<'_>) -> bool {
        if self.capacity() != other.capacity() {
            return false;
        }
        match (self, other) {
            (VarSetRef::Sparse { elems: a, .. }, VarSetRef::Sparse { elems: b, .. }) => a == b,
            (VarSetRef::Dense { blocks: a, .. }, VarSetRef::Dense { blocks: b, .. }) => a == b,
            _ => self.len() == other.len() && self.is_subset(other),
        }
    }
}

fn sparse_intersection_len(a: &[u32], b: &[u32]) -> usize {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * 16 < big.len() {
        // Galloping: membership-probe each element of the small side.
        let mut lo = 0usize;
        let mut count = 0usize;
        for &e in small {
            match big[lo..].binary_search(&e) {
                Ok(pos) => {
                    count += 1;
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= big.len() {
                break;
            }
        }
        count
    } else {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < small.len() && j < big.len() {
            match small[i].cmp(&big[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

fn sparse_is_disjoint(a: &[u32], b: &[u32]) -> bool {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() || big.is_empty() {
        return true;
    }
    // Range prune: disjoint whenever the value ranges don't overlap.
    if small[small.len() - 1] < big[0] || big[big.len() - 1] < small[0] {
        return true;
    }
    if small.len() * 16 < big.len() {
        let mut lo = 0usize;
        for &e in small {
            match big[lo..].binary_search(&e) {
                Ok(_) => return false,
                Err(pos) => lo += pos,
            }
            if lo >= big.len() {
                return true;
            }
        }
        true
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < big.len() {
            match small[i].cmp(&big[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }
}

fn sparse_is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    if a.len() * 16 < b.len() {
        let mut lo = 0usize;
        for &e in a {
            match b[lo..].binary_search(&e) {
                Ok(pos) => lo += pos + 1,
                Err(_) => return false,
            }
        }
        true
    } else {
        let mut j = 0usize;
        for &e in a {
            while j < b.len() && b[j] < e {
                j += 1;
            }
            if j >= b.len() || b[j] != e {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// Ascending element iterator over either representation.
pub enum VarSetIter<'a> {
    /// Walking a sorted element slice.
    Sparse(std::slice::Iter<'a, u32>),
    /// Walking set bits of dense blocks.
    Dense {
        /// The blocks being walked.
        blocks: &'a [u64],
        /// Index of the next block to load into `cur`.
        next_block: usize,
        /// Remaining bits of the current block.
        cur: u64,
        /// Element index of the current block's bit 0.
        base: usize,
    },
}

impl Iterator for VarSetIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            VarSetIter::Sparse(it) => it.next().map(|&e| e as usize),
            VarSetIter::Dense {
                blocks,
                next_block,
                cur,
                base,
            } => {
                while *cur == 0 {
                    if *next_block >= blocks.len() {
                        return None;
                    }
                    *cur = blocks[*next_block];
                    *base = *next_block * BITS;
                    *next_block += 1;
                }
                let tz = cur.trailing_zeros() as usize;
                *cur &= *cur - 1;
                Some(*base + tz)
            }
        }
    }
}

/// Ascending iterator over `a △ b` — see
/// [`VarSetRef::symmetric_difference`].
pub struct SymmetricDifference<'a> {
    a: Peekable<VarSetIter<'a>>,
    b: Peekable<VarSetIter<'a>>,
}

impl Iterator for SymmetricDifference<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            match (self.a.peek().copied(), self.b.peek().copied()) {
                (None, None) => return None,
                (Some(_), None) => return self.a.next(),
                (None, Some(_)) => return self.b.next(),
                (Some(x), Some(y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Less => return self.a.next(),
                    std::cmp::Ordering::Greater => return self.b.next(),
                    std::cmp::Ordering::Equal => {
                        self.a.next();
                        self.b.next();
                    }
                },
            }
        }
    }
}

impl VarSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        VarSet {
            capacity,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A singleton set.
    ///
    /// # Panics
    /// Panics if `element >= capacity`.
    pub fn singleton(capacity: usize, element: usize) -> Self {
        assert!(element < capacity, "element {element} out of universe");
        VarSet {
            capacity,
            repr: Repr::Sparse(vec![element as u32]),
        }
    }

    /// Builds a set from element indices (any order, duplicates allowed).
    ///
    /// # Panics
    /// Panics if an element is `>= capacity`.
    pub fn from_elements<I: IntoIterator<Item = usize>>(capacity: usize, elements: I) -> Self {
        let mut elems: Vec<u32> = elements
            .into_iter()
            .map(|e| {
                assert!(e < capacity, "element {e} out of universe");
                e as u32
            })
            .collect();
        elems.sort_unstable();
        elems.dedup();
        VarSet::from_sorted(capacity, elems)
    }

    /// Builds a set from an already sorted, deduplicated element vector —
    /// the allocation-free fast path for CSR pool slices and merge
    /// outputs.
    pub fn from_sorted(capacity: usize, elems: Vec<u32>) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending elements"
        );
        debug_assert!(elems.last().is_none_or(|&e| (e as usize) < capacity));
        let mut s = VarSet {
            capacity,
            repr: Repr::Sparse(elems),
        };
        s.maybe_promote();
        s
    }

    /// Converts a dense [`BitSet`], keeping whichever representation the
    /// size threshold selects.
    pub fn from_bitset(bits: &BitSet) -> Self {
        bits.as_set_ref().to_var_set()
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap footprint of the backing storage, in bytes — for
    /// deterministic memory accounting.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(elems) => elems.capacity() * std::mem::size_of::<u32>(),
            Repr::Dense(blocks) => blocks.len() * std::mem::size_of::<u64>(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_set_ref().len()
    }

    /// True iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_set_ref().is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, element: usize) -> bool {
        self.as_set_ref().contains(element)
    }

    /// Iterates over elements in ascending order.
    pub fn iter(&self) -> VarSetIter<'_> {
        self.as_set_ref().iter()
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.as_set_ref().first()
    }

    /// Removes all elements (reverting to the sparse representation).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(elems) => elems.clear(),
            Repr::Dense(_) => self.repr = Repr::Sparse(Vec::new()),
        }
    }

    /// Inserts an element. Returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `element >= capacity`.
    pub fn insert(&mut self, element: usize) -> bool {
        assert!(element < self.capacity, "element {element} out of universe");
        let fresh = match &mut self.repr {
            Repr::Sparse(elems) => match elems.binary_search(&(element as u32)) {
                Ok(_) => false,
                Err(pos) => {
                    elems.insert(pos, element as u32);
                    true
                }
            },
            Repr::Dense(blocks) => {
                let block = &mut blocks[element / BITS];
                let mask = 1u64 << (element % BITS);
                let fresh = *block & mask == 0;
                *block |= mask;
                fresh
            }
        };
        self.maybe_promote();
        fresh
    }

    /// Removes an element. Returns true if it was present.
    pub fn remove(&mut self, element: usize) -> bool {
        match &mut self.repr {
            Repr::Sparse(elems) => {
                if element > u32::MAX as usize {
                    return false;
                }
                match elems.binary_search(&(element as u32)) {
                    Ok(pos) => {
                        elems.remove(pos);
                        true
                    }
                    Err(_) => false,
                }
            }
            Repr::Dense(blocks) => {
                if element >= self.capacity {
                    return false;
                }
                let block = &mut blocks[element / BITS];
                let mask = 1u64 << (element % BITS);
                let present = *block & mask != 0;
                *block &= !mask;
                present
            }
        }
    }

    fn maybe_promote(&mut self) {
        if let Repr::Sparse(elems) = &self.repr {
            if elems.len() > sparse_limit(self.capacity) {
                self.promote_to_dense();
            }
        }
    }

    fn promote_to_dense(&mut self) {
        if let Repr::Sparse(elems) = &self.repr {
            let mut blocks = vec![0u64; self.capacity.div_ceil(BITS)].into_boxed_slice();
            for &e in elems {
                blocks[e as usize / BITS] |= 1u64 << (e as usize % BITS);
            }
            self.repr = Repr::Dense(blocks);
        }
    }

    /// In-place union.
    pub fn union_with<S: AsVarSetRef + ?Sized>(&mut self, other: &S) {
        let other = other.as_set_ref();
        self.as_set_ref().check_compatible(other);
        match &mut self.repr {
            Repr::Dense(blocks) => match other {
                VarSetRef::Dense { blocks: b, .. } => {
                    for (x, y) in blocks.iter_mut().zip(b.iter()) {
                        *x |= y;
                    }
                }
                VarSetRef::Sparse { elems, .. } => {
                    for &e in elems {
                        blocks[e as usize / BITS] |= 1u64 << (e as usize % BITS);
                    }
                }
            },
            Repr::Sparse(elems) => match other {
                VarSetRef::Sparse { elems: b, .. } => {
                    let merged = merge_union(elems, b);
                    self.repr = Repr::Sparse(merged);
                    self.maybe_promote();
                }
                VarSetRef::Dense { .. } => {
                    self.promote_to_dense();
                    self.union_with(&other);
                }
            },
        }
    }

    /// New set: `self ∪ other`.
    pub fn union<S: AsVarSetRef + ?Sized>(&self, other: &S) -> VarSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place intersection. A dense set intersected with a sparse one
    /// demotes to sparse (the result can be no bigger than the sparse
    /// side).
    pub fn intersect_with<S: AsVarSetRef + ?Sized>(&mut self, other: &S) {
        let other = other.as_set_ref();
        self.as_set_ref().check_compatible(other);
        match &mut self.repr {
            Repr::Sparse(elems) => elems.retain(|&e| other.contains(e as usize)),
            Repr::Dense(blocks) => match other {
                VarSetRef::Dense { blocks: b, .. } => {
                    for (x, y) in blocks.iter_mut().zip(b.iter()) {
                        *x &= y;
                    }
                }
                VarSetRef::Sparse { elems, .. } => {
                    let me = self.as_set_ref();
                    let kept: Vec<u32> = elems
                        .iter()
                        .copied()
                        .filter(|&e| me.contains(e as usize))
                        .collect();
                    self.repr = Repr::Sparse(kept);
                }
            },
        }
    }

    /// New set: `self ∩ other`.
    pub fn intersection<S: AsVarSetRef + ?Sized>(&self, other: &S) -> VarSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with<S: AsVarSetRef + ?Sized>(&mut self, other: &S) {
        let other = other.as_set_ref();
        self.as_set_ref().check_compatible(other);
        match &mut self.repr {
            Repr::Sparse(elems) => elems.retain(|&e| !other.contains(e as usize)),
            Repr::Dense(blocks) => match other {
                VarSetRef::Dense { blocks: b, .. } => {
                    for (x, y) in blocks.iter_mut().zip(b.iter()) {
                        *x &= !y;
                    }
                }
                VarSetRef::Sparse { elems, .. } => {
                    for &e in elems {
                        blocks[e as usize / BITS] &= !(1u64 << (e as usize % BITS));
                    }
                }
            },
        }
    }

    /// New set: `self \ other`.
    pub fn difference<S: AsVarSetRef + ?Sized>(&self, other: &S) -> VarSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_len<S: AsVarSetRef + ?Sized>(&self, other: &S) -> usize {
        self.as_set_ref().intersection_len(other.as_set_ref())
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_len<S: AsVarSetRef + ?Sized>(&self, other: &S) -> usize {
        self.as_set_ref().difference_len(other.as_set_ref())
    }

    /// True iff the sets share no elements.
    #[inline]
    pub fn is_disjoint<S: AsVarSetRef + ?Sized>(&self, other: &S) -> bool {
        self.as_set_ref().is_disjoint(other.as_set_ref())
    }

    /// True iff `self ⊆ other`.
    #[inline]
    pub fn is_subset<S: AsVarSetRef + ?Sized>(&self, other: &S) -> bool {
        self.as_set_ref().is_subset(other.as_set_ref())
    }

    /// Deterministic 64-bit content hash — see [`VarSetRef::hash64`].
    #[inline]
    pub fn hash64(&self) -> u64 {
        self.as_set_ref().hash64()
    }

    /// Materializes a dense [`BitSet`] with the same contents.
    pub fn to_bitset(&self) -> BitSet {
        self.as_set_ref().to_bitset()
    }
}

fn merge_union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl PartialEq for VarSetRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(*other)
    }
}

impl Eq for VarSetRef<'_> {}

impl PartialEq<BitSet> for VarSetRef<'_> {
    fn eq(&self, other: &BitSet) -> bool {
        self.set_eq(other.as_set_ref())
    }
}

impl PartialEq<VarSet> for VarSetRef<'_> {
    fn eq(&self, other: &VarSet) -> bool {
        self.set_eq(other.as_set_ref())
    }
}

impl PartialEq for VarSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_set_ref().set_eq(other.as_set_ref())
    }
}

impl Eq for VarSet {}

impl PartialEq<BitSet> for VarSet {
    fn eq(&self, other: &BitSet) -> bool {
        self.as_set_ref().set_eq(other.as_set_ref())
    }
}

impl PartialEq<VarSet> for BitSet {
    fn eq(&self, other: &VarSet) -> bool {
        self.as_set_ref().set_eq(other.as_set_ref())
    }
}

impl Hash for VarSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Over elements, not storage: a sparse set and its dense twin
        // must collide. Capacity is excluded, mirroring `BitSet`.
        for e in self.iter() {
            state.write_u32(e as u32);
        }
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Debug for VarSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::BTreeSet;

    fn sparse(capacity: usize, elems: &[usize]) -> VarSet {
        let s = VarSet::from_elements(capacity, elems.iter().copied());
        assert!(matches!(s.repr, Repr::Sparse(_)) || elems.len() > sparse_limit(capacity));
        s
    }

    fn dense(capacity: usize, elems: &[usize]) -> VarSet {
        let mut s = VarSet::from_elements(capacity, elems.iter().copied());
        s.promote_to_dense();
        assert!(matches!(s.repr, Repr::Dense(_)));
        s
    }

    fn std_hash(s: &VarSet) -> u64 {
        let mut h = DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    #[test]
    fn insert_contains_remove_both_reprs() {
        for make in [sparse as fn(usize, &[usize]) -> VarSet, dense] {
            let mut s = make(130, &[0, 64, 129]);
            assert!(!s.insert(64), "double insert reports false");
            assert!(s.insert(10));
            assert!(s.contains(0) && s.contains(64) && s.contains(129) && s.contains(10));
            assert!(!s.contains(1));
            assert_eq!(s.len(), 4);
            assert!(s.remove(64));
            assert!(!s.remove(64));
            assert_eq!(s.len(), 3);
            assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 10, 129]);
            assert_eq!(s.first(), Some(0));
        }
    }

    #[test]
    fn promotion_at_threshold() {
        let capacity = 2048; // sparse_limit = 64
        let mut s = VarSet::new(capacity);
        for e in 0..sparse_limit(capacity) {
            s.insert(2 * e);
        }
        assert!(
            matches!(s.repr, Repr::Sparse(_)),
            "at the limit stays sparse"
        );
        s.insert(2047);
        assert!(matches!(s.repr, Repr::Dense(_)), "past the limit promotes");
        assert_eq!(s.len(), sparse_limit(capacity) + 1);
    }

    #[test]
    fn intersection_with_sparse_demotes() {
        let a = dense(1024, &[1, 5, 9, 700]);
        let inter = a.intersection(&sparse(1024, &[5, 700, 900]));
        assert!(matches!(inter.repr, Repr::Sparse(_)));
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![5, 700]);
    }

    #[test]
    fn equality_and_hash_ignore_representation() {
        let a = sparse(512, &[3, 77, 200]);
        let b = dense(512, &[3, 77, 200]);
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(std_hash(&a), std_hash(&b));
        assert_ne!(a, sparse(512, &[3, 77]));
    }

    #[test]
    fn bitset_interop() {
        let bits = BitSet::from_elements(300, [4usize, 90, 250]);
        let v = VarSet::from_bitset(&bits);
        assert_eq!(v, bits);
        assert_eq!(bits, v);
        assert_eq!(v.to_bitset(), bits);
        assert_eq!(v.intersection_len(&bits), 3);
        assert!(v.is_subset(&bits) && bits.as_set_ref().is_subset(v.as_set_ref()));
    }

    #[test]
    fn symmetric_difference_merges_ascending() {
        let a = sparse(100, &[1, 2, 3, 70]);
        let b = dense(100, &[2, 3, 4]);
        let sym: Vec<usize> = a
            .as_set_ref()
            .symmetric_difference(b.as_set_ref())
            .collect();
        assert_eq!(sym, vec![1, 4, 70]);
    }

    #[test]
    fn incremental_fnv_matches_whole_set() {
        let elems = [7u32, 19, 23, 800];
        let whole = fnv1a_extend(FNV_SEED, elems.iter().copied());
        let prefix = fnv1a_extend(FNV_SEED, elems[..2].iter().copied());
        assert_eq!(fnv1a_extend(prefix, elems[2..].iter().copied()), whole);
        let s = VarSet::from_elements(1024, elems.iter().map(|&e| e as usize));
        assert_eq!(s.hash64(), whole);
    }

    proptest! {
        /// Sparse/dense op equivalence across the promotion threshold:
        /// every operation, in every representation pairing, matches the
        /// `BTreeSet` model. Universe 1024 puts `sparse_limit` at 32, so
        /// the 0..80-element generators straddle the boundary.
        #[test]
        fn reprs_agree_with_model(
            xs in proptest::collection::btree_set(0usize..1024, 0..80),
            ys in proptest::collection::btree_set(0usize..1024, 0..80),
        ) {
            let cap = 1024;
            let variants = |s: &BTreeSet<usize>| {
                let mut d = VarSet::from_elements(cap, s.iter().copied());
                d.promote_to_dense();
                [VarSet::from_elements(cap, s.iter().copied()), d]
            };
            let union: Vec<usize> = xs.union(&ys).copied().collect();
            let inter: Vec<usize> = xs.intersection(&ys).copied().collect();
            let diff: Vec<usize> = xs.difference(&ys).copied().collect();
            let sym: Vec<usize> = xs.symmetric_difference(&ys).copied().collect();
            for a in variants(&xs) {
                prop_assert_eq!(a.iter().collect::<Vec<_>>(),
                                xs.iter().copied().collect::<Vec<_>>());
                prop_assert_eq!(a.len(), xs.len());
                prop_assert_eq!(a.first(), xs.first().copied());
                for b in variants(&ys) {
                    prop_assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), union.clone());
                    prop_assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), inter.clone());
                    prop_assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), diff.clone());
                    prop_assert_eq!(
                        a.as_set_ref().symmetric_difference(b.as_set_ref())
                            .collect::<Vec<_>>(),
                        sym.clone());
                    prop_assert_eq!(a.intersection_len(&b), inter.len());
                    prop_assert_eq!(a.difference_len(&b), diff.len());
                    prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
                    prop_assert_eq!(a.is_disjoint(&b), xs.is_disjoint(&ys));
                    prop_assert_eq!(a == b, xs == ys);
                    if xs == ys {
                        prop_assert_eq!(a.hash64(), b.hash64());
                        prop_assert_eq!(std_hash(&a), std_hash(&b));
                    }
                }
                // BitSet views agree with same-content VarSets.
                let bits = BitSet::from_elements(cap, ys.iter().copied());
                prop_assert_eq!(a.intersection_len(&bits), inter.len());
                prop_assert_eq!(a.is_subset(&bits), xs.is_subset(&ys));
                prop_assert_eq!(a.is_disjoint(&bits), xs.is_disjoint(&ys));
            }
        }

        /// Mutation paths preserve the model across promotions.
        #[test]
        fn mutation_matches_model(
            base in proptest::collection::btree_set(0usize..1024, 0..40),
            ops in proptest::collection::vec(
                (0usize..1024, proptest::strategy::any::<bool>()), 0..64),
        ) {
            let mut model = base.clone();
            let mut s = VarSet::from_elements(1024, base.iter().copied());
            for (e, add) in ops {
                if add {
                    prop_assert_eq!(s.insert(e), model.insert(e));
                } else {
                    prop_assert_eq!(s.remove(e), model.remove(&e));
                }
                prop_assert_eq!(s.len(), model.len());
            }
            prop_assert_eq!(s.iter().collect::<Vec<_>>(),
                            model.iter().copied().collect::<Vec<_>>());
        }
    }
}
