//! The greedy covering algorithm.
//!
//! "Until the target set is covered, repeatedly pick the feasible set that
//! covers the maximum number of as-yet-uncovered elements" (Section II-D,
//! citing Johnson 1973). The greedy cover is within a `1 + ln n` factor of
//! the optimum, and its *size* is exactly what the planner's greedy
//! coverage gain measures, so [`greedy_cover`] reports both the chosen
//! sets and each step's marginal gain.

use crate::bitset::BitSet;
use crate::varset::{AsVarSetRef, VarSet, VarSetRef};

/// The result of a greedy covering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyCover {
    /// Indices (into the candidate collection) of the chosen sets, in
    /// selection order.
    pub chosen: Vec<usize>,
    /// Newly covered element count at each step (parallel to `chosen`).
    pub marginal_gains: Vec<usize>,
}

impl GreedyCover {
    /// Number of sets used — the planner's `|C_q|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.chosen.len()
    }
}

/// Greedily covers `target` using candidates that are subsets of `target`
/// (the paper's exact-cover convention). Returns `None` if the feasible
/// candidates cannot cover the target.
///
/// Ties are broken by candidate index, making the algorithm deterministic.
///
/// Complexity: `O(steps × |candidates| × n/64)`.
pub fn greedy_cover(target: &BitSet, candidates: &[BitSet]) -> Option<GreedyCover> {
    let refs: Vec<&BitSet> = candidates.iter().collect();
    greedy_cover_refs(target, &refs)
}

/// [`greedy_cover`] over borrowed candidate sets. Selection semantics are
/// identical — same feasibility filter, same max-gain steps, same
/// index tie-breaks — so callers holding candidates scattered across other
/// structures (the lazy planner's node pool) can cover without cloning
/// them into a contiguous owned slice first.
pub fn greedy_cover_refs(target: &BitSet, candidates: &[&BitSet]) -> Option<GreedyCover> {
    let feasible: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].is_subset(target) && !candidates[i].is_empty())
        .collect();

    let mut uncovered = target.clone();
    let mut chosen = Vec::new();
    let mut marginal_gains = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for &i in &feasible {
            let gain = candidates[i].intersection_len(&uncovered);
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, i));
            }
        }
        let (gain, idx) = best?;
        chosen.push(idx);
        marginal_gains.push(gain);
        uncovered.difference_with(candidates[idx]);
    }
    Some(GreedyCover {
        chosen,
        marginal_gains,
    })
}

/// Convenience: just the size of the greedy cover, or `None` if
/// infeasible. This is the `|C_q|` quantity inside the planner's expected
/// greedy coverage.
pub fn greedy_cover_size(target: &BitSet, candidates: &[BitSet]) -> Option<usize> {
    greedy_cover(target, candidates).map(|c| c.size())
}

/// [`greedy_cover_size`] over borrowed candidate sets.
pub fn greedy_cover_size_refs(target: &BitSet, candidates: &[&BitSet]) -> Option<usize> {
    greedy_cover_refs(target, candidates).map(|c| c.size())
}

/// [`greedy_cover_refs`] over [`VarSetRef`] views — the same algorithm,
/// selection step for selection step (same feasibility filter, same
/// max-gain loop with strict-greater comparisons keeping the lowest
/// index on ties), over the adaptive representation. Callers holding
/// node sets in a CSR pool cover without materializing dense words.
pub fn greedy_cover_views(
    target: VarSetRef<'_>,
    candidates: &[VarSetRef<'_>],
) -> Option<GreedyCover> {
    let feasible: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].is_subset(target) && !candidates[i].is_empty())
        .collect();

    let mut uncovered: VarSet = target.to_var_set();
    let mut chosen = Vec::new();
    let mut marginal_gains = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for &i in &feasible {
            let gain = candidates[i].intersection_len(uncovered.as_set_ref());
            if gain > 0 && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, i));
            }
        }
        let (gain, idx) = best?;
        chosen.push(idx);
        marginal_gains.push(gain);
        uncovered.difference_with(&candidates[idx]);
    }
    Some(GreedyCover {
        chosen,
        marginal_gains,
    })
}

/// Greedy *disjoint* cover (a partition of `target` into candidate sets):
/// at each step only candidates fitting entirely inside the still-
/// uncovered part are feasible. Needed when the aggregation operator is
/// not idempotent (sum, count, …, the paper's Section VII aggregates),
/// where double-counting an input corrupts the aggregate.
pub fn greedy_disjoint_cover(target: &BitSet, candidates: &[BitSet]) -> Option<GreedyCover> {
    let mut uncovered = target.clone();
    let mut chosen = Vec::new();
    let mut marginal_gains = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, c) in candidates.iter().enumerate() {
            if c.is_empty() || !c.is_subset(&uncovered) {
                continue;
            }
            let gain = c.len();
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, i));
            }
        }
        let (gain, idx) = best?;
        chosen.push(idx);
        marginal_gains.push(gain);
        uncovered.difference_with(&candidates[idx]);
    }
    Some(GreedyCover {
        chosen,
        marginal_gains,
    })
}

/// [`greedy_disjoint_cover`] over [`VarSetRef`] views — identical
/// feasibility (candidate fits entirely inside the uncovered remainder)
/// and selection semantics.
pub fn greedy_disjoint_cover_views(
    target: VarSetRef<'_>,
    candidates: &[VarSetRef<'_>],
) -> Option<GreedyCover> {
    let mut uncovered: VarSet = target.to_var_set();
    let mut chosen = Vec::new();
    let mut marginal_gains = Vec::new();
    while !uncovered.is_empty() {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, c) in candidates.iter().enumerate() {
            if c.is_empty() || !c.is_subset(uncovered.as_set_ref()) {
                continue;
            }
            let gain = c.len();
            if best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, i));
            }
        }
        let (gain, idx) = best?;
        chosen.push(idx);
        marginal_gains.push(gain);
        uncovered.difference_with(&candidates[idx]);
    }
    Some(GreedyCover {
        chosen,
        marginal_gains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_min_cover;
    use crate::instance::SetCoverInstance;
    use proptest::prelude::*;

    fn bs(capacity: usize, elements: &[usize]) -> BitSet {
        BitSet::from_elements(capacity, elements.iter().copied())
    }

    #[test]
    fn covers_simple_instance() {
        let target = BitSet::full(4);
        let candidates = vec![bs(4, &[0, 1]), bs(4, &[2]), bs(4, &[3]), bs(4, &[2, 3])];
        let cover = greedy_cover(&target, &candidates).unwrap();
        assert_eq!(cover.chosen, vec![0, 3]);
        assert_eq!(cover.marginal_gains, vec![2, 2]);
    }

    #[test]
    fn infeasible_returns_none() {
        let target = BitSet::full(3);
        let candidates = vec![bs(3, &[0])];
        assert!(greedy_cover(&target, &candidates).is_none());
    }

    #[test]
    fn supersets_of_target_are_infeasible() {
        // Exact-cover convention: a candidate spilling outside the target
        // cannot be used even though it would cover it.
        let target = bs(4, &[0, 1]);
        let candidates = vec![bs(4, &[0, 1, 2])];
        assert!(greedy_cover(&target, &candidates).is_none());
    }

    #[test]
    fn empty_target_needs_no_sets() {
        let cover = greedy_cover(&BitSet::new(4), &[bs(4, &[0])]).unwrap();
        assert!(cover.chosen.is_empty());
    }

    #[test]
    fn ties_break_by_index() {
        let target = BitSet::full(2);
        let candidates = vec![bs(2, &[0, 1]), bs(2, &[0, 1])];
        let cover = greedy_cover(&target, &candidates).unwrap();
        assert_eq!(cover.chosen, vec![0]);
    }

    #[test]
    fn greedy_is_log_factor_worse_on_adversarial_family() {
        // Classic lower-bound family: optimal = 2 rows, greedy picks all
        // the column sets (t of them).
        let inst = SetCoverInstance::greedy_adversarial(4);
        let target = inst.universe();
        let greedy = greedy_cover(&target, inst.sets()).unwrap();
        let exact = exact_min_cover(&target, inst.sets()).unwrap();
        assert_eq!(exact.len(), 2);
        assert!(
            greedy.size() > exact.len(),
            "greedy {} should exceed optimal {}",
            greedy.size(),
            exact.len()
        );
    }

    #[test]
    fn disjoint_cover_partitions() {
        let target = BitSet::full(6);
        let candidates = vec![
            bs(6, &[0, 1, 2]),
            bs(6, &[2, 3]), // overlaps the first: unusable after it
            bs(6, &[3, 4, 5]),
            bs(6, &[3]),
            bs(6, &[4]),
            bs(6, &[5]),
        ];
        let cover = greedy_disjoint_cover(&target, &candidates).unwrap();
        // Greedy takes {0,1,2} (gain 3), then {3,4,5} (gain 3).
        assert_eq!(cover.chosen, vec![0, 2]);
        // The chosen sets are pairwise disjoint and partition the target.
        let mut acc = BitSet::new(6);
        let mut total = 0;
        for &i in &cover.chosen {
            assert!(acc.is_disjoint(&candidates[i]));
            acc.union_with(&candidates[i]);
            total += candidates[i].len();
        }
        assert_eq!(acc, target);
        assert_eq!(total, 6, "no double counting");
    }

    #[test]
    fn disjoint_cover_can_fail_where_overlapping_succeeds() {
        // {0,1} and {1,2} cover {0,1,2} but cannot partition it.
        let target = BitSet::full(3);
        let candidates = vec![bs(3, &[0, 1]), bs(3, &[1, 2])];
        assert!(greedy_cover(&target, &candidates).is_some());
        assert!(greedy_disjoint_cover(&target, &candidates).is_none());
    }

    #[test]
    fn disjoint_cover_greedy_choice_can_block() {
        // Greedy takes the size-3 set, leaving {3} uncoverable even
        // though the partition {0,1}+{2,3} exists: returns None (the
        // planner falls back to singletons, which always exist there).
        let target = BitSet::full(4);
        let candidates = vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1]), bs(4, &[2, 3])];
        assert!(greedy_disjoint_cover(&target, &candidates).is_none());
        // With singletons available the greedy always completes.
        let mut with_singletons = candidates;
        for v in 0..4 {
            with_singletons.push(BitSet::singleton(4, v));
        }
        let cover = greedy_disjoint_cover(&target, &with_singletons).unwrap();
        let covered: usize = cover.marginal_gains.iter().sum();
        assert_eq!(covered, 4);
    }

    proptest! {
        /// The view-based entry points replicate the dense algorithms
        /// choice for choice, in sparse, dense, and mixed pairings.
        #[test]
        fn views_variant_matches_dense(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..12, 0..6), 1..8),
            target_extra in proptest::collection::btree_set(0usize..12, 0..4),
        ) {
            let candidates: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(12, s.iter().copied()))
                .collect();
            // A target that is not always coverable: union of candidates
            // plus extra elements exercises the None paths too.
            let mut target = BitSet::from_elements(12, target_extra.iter().copied());
            for c in &candidates[..candidates.len() / 2] {
                target.union_with(c);
            }
            let sparse: Vec<VarSet> = candidates
                .iter()
                .map(VarSet::from_bitset)
                .collect();
            let sparse_target = VarSet::from_bitset(&target);
            let views: Vec<VarSetRef> = sparse.iter().map(|s| s.as_set_ref()).collect();
            let mixed: Vec<VarSetRef> = candidates
                .iter()
                .zip(sparse.iter())
                .enumerate()
                .map(|(i, (b, s))| if i % 2 == 0 { b.as_set_ref() } else { s.as_set_ref() })
                .collect();
            prop_assert_eq!(
                greedy_cover(&target, &candidates),
                greedy_cover_views(sparse_target.as_set_ref(), &views)
            );
            prop_assert_eq!(
                greedy_cover(&target, &candidates),
                greedy_cover_views(target.as_set_ref(), &mixed)
            );
            prop_assert_eq!(
                greedy_disjoint_cover(&target, &candidates),
                greedy_disjoint_cover_views(sparse_target.as_set_ref(), &views)
            );
            prop_assert_eq!(
                greedy_disjoint_cover(&target, &candidates),
                greedy_disjoint_cover_views(target.as_set_ref(), &mixed)
            );
        }

        /// The borrowed-candidate entry point is the same algorithm.
        #[test]
        fn refs_variant_matches_owned(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..12, 1..6), 1..8),
        ) {
            let candidates: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(12, s.iter().copied()))
                .collect();
            let mut target = BitSet::new(12);
            for c in &candidates {
                target.union_with(c);
            }
            let refs: Vec<&BitSet> = candidates.iter().collect();
            prop_assert_eq!(
                greedy_cover(&target, &candidates),
                greedy_cover_refs(&target, &refs)
            );
            prop_assert_eq!(
                greedy_cover_size(&target, &candidates),
                greedy_cover_size_refs(&target, &refs)
            );
        }

        /// Greedy is feasible whenever exact is, covers the target
        /// exactly, and respects the (1 + ln n) approximation bound.
        #[test]
        fn greedy_soundness_and_ratio(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..12, 1..6), 1..8),
        ) {
            let candidates: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(12, s.iter().copied()))
                .collect();
            let mut target = BitSet::new(12);
            for c in &candidates {
                target.union_with(c);
            }
            let greedy = greedy_cover(&target, &candidates);
            let exact = exact_min_cover(&target, &candidates);
            prop_assert_eq!(greedy.is_some(), exact.is_some());
            if let (Some(g), Some(e)) = (greedy, exact) {
                // Union of chosen equals target.
                let mut acc = BitSet::new(12);
                for &i in &g.chosen {
                    acc.union_with(&candidates[i]);
                }
                prop_assert_eq!(acc, target.clone());
                // Marginal gains sum to |target| and are non-increasing.
                let total: usize = g.marginal_gains.iter().sum();
                prop_assert_eq!(total, target.len());
                for w in g.marginal_gains.windows(2) {
                    prop_assert!(w[0] >= w[1], "greedy gains must be non-increasing");
                }
                // Approximation bound.
                let n = target.len().max(1) as f64;
                let bound = (1.0 + n.ln()) * e.len() as f64;
                prop_assert!(g.size() as f64 <= bound + 1e-9);
            }
        }
    }
}
