//! A compact fixed-capacity bit set.
//!
//! Element sets in this workspace — advertiser interest sets `I_q`,
//! expression variable sets (Lemma 1 canonical forms), fragment signatures
//! — are dense subsets of a small universe `[n]`. A `Vec<u64>`-backed bit
//! set gives O(n/64) unions/intersections, which is what makes the plan
//! search and the greedy covering inner loops fast.

use std::fmt;
use std::hash::{Hash, Hasher};

const BITS: usize = 64;

/// A set of `usize` elements drawn from a fixed universe `0..capacity`.
///
/// All binary operations require equal capacities; this is asserted in
/// debug builds and is an API contract (a set is meaningless outside its
/// universe).
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Box<[u64]>,
    capacity: usize,
}

impl BitSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0u64; capacity.div_ceil(BITS)].into_boxed_slice(),
            capacity,
        }
    }

    /// The full set `{0, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Builds a set from element indices.
    ///
    /// # Panics
    /// Panics if an element is `>= capacity`.
    pub fn from_elements<I: IntoIterator<Item = usize>>(capacity: usize, elements: I) -> Self {
        let mut s = BitSet::new(capacity);
        for e in elements {
            s.insert(e);
        }
        s
    }

    /// A singleton set.
    pub fn singleton(capacity: usize, element: usize) -> Self {
        BitSet::from_elements(capacity, [element])
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap footprint of the backing block storage, in bytes — for
    /// deterministic memory accounting.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u64>()
    }

    /// The raw bit blocks (least-significant bit of block 0 = element 0) —
    /// the view [`crate::VarSetRef`] borrows for mixed sparse/dense
    /// algebra.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Inserts an element. Returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `element >= capacity`.
    #[inline]
    pub fn insert(&mut self, element: usize) -> bool {
        assert!(element < self.capacity, "element {element} out of universe");
        let block = &mut self.blocks[element / BITS];
        let mask = 1u64 << (element % BITS);
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Removes an element. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, element: usize) -> bool {
        assert!(element < self.capacity, "element {element} out of universe");
        let block = &mut self.blocks[element / BITS];
        let mask = 1u64 << (element % BITS);
        let present = *block & mask != 0;
        *block &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, element: usize) -> bool {
        element < self.capacity && self.blocks[element / BITS] & (1u64 << (element % BITS)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    fn check_compatible(&self, other: &BitSet) {
        debug_assert_eq!(
            self.capacity, other.capacity,
            "bit sets over different universes"
        );
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check_compatible(other);
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a |= b;
        }
    }

    /// New set: `self ∪ other`.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check_compatible(other);
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= b;
        }
    }

    /// New set: `self ∩ other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check_compatible(other);
        for (a, b) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *a &= !b;
        }
    }

    /// New set: `self \ other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.check_compatible(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    pub fn difference_len(&self, other: &BitSet) -> usize {
        self.check_compatible(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// True iff the sets share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check_compatible(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_compatible(other);
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, &block)| BlockBits {
                block,
                base: i * BITS,
            })
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (i, &block) in self.blocks.iter().enumerate() {
            if block != 0 {
                return Some(i * BITS + block.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for b in self.blocks.iter_mut() {
            *b = 0;
        }
    }
}

struct BlockBits {
    block: u64,
    base: usize,
}

impl Iterator for BlockBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            None
        } else {
            let tz = self.block.trailing_zeros() as usize;
            self.block &= self.block - 1;
            Some(self.base + tz)
        }
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Capacity is deliberately excluded: two sets with the same
        // elements hash alike regardless of universe padding, which is
        // irrelevant here because all comparisons are same-universe.
        self.blocks.hash(state);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects into a set whose capacity is `max element + 1`.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let elements: Vec<usize> = iter.into_iter().collect();
        let capacity = elements.iter().max().map_or(0, |&m| m + 1);
        BitSet::from_elements(capacity, elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let s = BitSet::from_elements(200, [150, 3, 64, 63, 65]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![3, 63, 64, 65, 150]);
        assert_eq!(s.first(), Some(3));
        assert_eq!(BitSet::new(10).first(), None);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_elements(100, [1, 2, 3, 70]);
        let b = BitSet::from_elements(100, [2, 3, 4]);
        assert_eq!(a.union(&b), BitSet::from_elements(100, [1, 2, 3, 4, 70]));
        assert_eq!(a.intersection(&b), BitSet::from_elements(100, [2, 3]));
        assert_eq!(a.difference(&b), BitSet::from_elements(100, [1, 70]));
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.difference_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&BitSet::from_elements(100, [5, 99])));
        assert!(BitSet::from_elements(100, [2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(BitSet::new(100).is_subset(&a), "empty set is subset of all");
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_is_false_beyond_capacity() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    proptest! {
        /// Differential test against BTreeSet for all the set algebra.
        #[test]
        fn matches_btreeset(
            xs in proptest::collection::btree_set(0usize..128, 0..40),
            ys in proptest::collection::btree_set(0usize..128, 0..40),
        ) {
            let a = BitSet::from_elements(128, xs.iter().copied());
            let b = BitSet::from_elements(128, ys.iter().copied());
            let union: BTreeSet<usize> = xs.union(&ys).copied().collect();
            let inter: BTreeSet<usize> = xs.intersection(&ys).copied().collect();
            let diff: BTreeSet<usize> = xs.difference(&ys).copied().collect();
            prop_assert_eq!(a.union(&b).iter().collect::<BTreeSet<_>>(), union);
            prop_assert_eq!(a.intersection(&b).iter().collect::<BTreeSet<_>>(), inter.clone());
            prop_assert_eq!(a.difference(&b).iter().collect::<BTreeSet<_>>(), diff.clone());
            prop_assert_eq!(a.intersection_len(&b), inter.len());
            prop_assert_eq!(a.difference_len(&b), diff.len());
            prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
            prop_assert_eq!(a.is_disjoint(&b), xs.is_disjoint(&ys));
            prop_assert_eq!(a.len(), xs.len());
        }
    }
}
