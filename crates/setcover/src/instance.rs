//! Set cover problem instances.

use crate::bitset::BitSet;

/// A set cover instance: a universe `0..universe_size` and a collection of
/// candidate subsets.
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    universe_size: usize,
    sets: Vec<BitSet>,
}

impl SetCoverInstance {
    /// Builds an instance.
    ///
    /// # Panics
    /// Panics if any candidate set's capacity differs from
    /// `universe_size`.
    pub fn new(universe_size: usize, sets: Vec<BitSet>) -> Self {
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(
                s.capacity(),
                universe_size,
                "candidate set {i} has a different universe"
            );
        }
        SetCoverInstance {
            universe_size,
            sets,
        }
    }

    /// Universe size `|U|`.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The full universe as a set.
    pub fn universe(&self) -> BitSet {
        BitSet::full(self.universe_size)
    }

    /// The candidate sets.
    #[inline]
    pub fn sets(&self) -> &[BitSet] {
        &self.sets
    }

    /// True iff the union of all candidates is the whole universe (the
    /// set-cover problem's standing assumption `∪ S = U`).
    pub fn is_coverable(&self) -> bool {
        let mut acc = BitSet::new(self.universe_size);
        for s in &self.sets {
            acc.union_with(s);
        }
        acc.len() == self.universe_size
    }

    /// The classic family on which greedy set cover is `Θ(log n)` worse
    /// than optimal: universe of size `2^(t+1) - 2`, two disjoint "rows"
    /// that cover it with 2 sets, plus column sets of sizes
    /// `2^t, 2^(t-1), …, 1` duplicated across the rows that greedy
    /// prefers. Used by the inapproximability experiments (Theorem 3).
    pub fn greedy_adversarial(t: u32) -> Self {
        let half = (1usize << t) - 1; // 2^t - 1 elements per row
        let n = 2 * half;
        let row0 = BitSet::from_elements(n, 0..half);
        let row1 = BitSet::from_elements(n, half..n);
        let mut sets = vec![row0, row1];
        // Column blocks: sizes 2^(t-1), 2^(t-2), ..., 1, each spanning both
        // rows (size doubled), laid out left to right.
        let mut offset = 0usize;
        let mut width = 1usize << (t - 1);
        while width >= 1 {
            let block: Vec<usize> = (offset..offset + width)
                .chain(half + offset..half + offset + width)
                .collect();
            sets.push(BitSet::from_elements(n, block));
            offset += width;
            if width == 1 {
                break;
            }
            width /= 2;
        }
        SetCoverInstance::new(n, sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverable_detects_gaps() {
        let inst = SetCoverInstance::new(
            4,
            vec![
                BitSet::from_elements(4, [0, 1]),
                BitSet::from_elements(4, [2]),
            ],
        );
        assert!(!inst.is_coverable());
        let inst = SetCoverInstance::new(
            4,
            vec![
                BitSet::from_elements(4, [0, 1]),
                BitSet::from_elements(4, [2, 3]),
            ],
        );
        assert!(inst.is_coverable());
    }

    #[test]
    fn adversarial_instance_shape() {
        let inst = SetCoverInstance::greedy_adversarial(3);
        assert_eq!(inst.universe_size(), 14); // 2 * (2^3 - 1)
        assert!(inst.is_coverable());
        // Two rows + columns of width 4, 2, 1.
        assert_eq!(inst.sets().len(), 5);
        // The two rows alone cover the universe.
        assert_eq!(inst.sets()[0].union(&inst.sets()[1]).len(), 14);
    }

    #[test]
    #[should_panic(expected = "different universe")]
    fn rejects_mismatched_universe() {
        SetCoverInstance::new(4, vec![BitSet::new(5)]);
    }
}
