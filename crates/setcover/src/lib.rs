#![warn(missing_docs)]

//! Set cover substrate.
//!
//! The shared-aggregation planner in the paper leans on set cover twice:
//!
//! * **Hardness** (Theorems 2 and 3): finding a min-cost shared plan is
//!   NP-hard and inapproximable within `log n`, by reduction from set
//!   cover.
//! * **The heuristic** (Section II-D): an incomplete plan is completed "by
//!   finding a set cover of the missing query nodes from the collection of
//!   existing nodes", using the classical greedy covering algorithm, which
//!   is a `(1 + ln n)`-approximation [Johnson 1973].
//!
//! This crate provides the machinery both uses: a compact fixed-capacity
//! [`BitSet`] for element sets, the [greedy] covering algorithm
//! (instrumented with marginal gains, since the planner's *greedy coverage
//! gain* needs them), and an [exact] branch-and-bound solver used to
//! validate the reductions and measure heuristic quality on small
//! instances.
//!
//! Note the paper's convention, which we follow: "we use the term 'set
//! cover' to mean a cover whose union exactly equals the target set instead
//! of just being a superset" — so only candidate sets that are *subsets* of
//! the target are feasible.

pub mod bitset;
pub mod exact;
pub mod greedy;
pub mod instance;
pub mod varset;

pub use bitset::BitSet;
pub use exact::exact_min_cover;
pub use greedy::{
    greedy_cover, greedy_cover_refs, greedy_cover_views, greedy_disjoint_cover,
    greedy_disjoint_cover_views, GreedyCover,
};
pub use instance::SetCoverInstance;
pub use varset::{AsVarSetRef, VarSet, VarSetRef};
