//! A steady-state *no-occurrence* `run_round` on the sharded executor
//! must allocate nothing, same as the classic path pinned by
//! `engine_round_alloc`. (Rounds with occurring phrases still allocate
//! settle-prep scratch per outcome — auction entries, the pricing
//! instance, display-event vectors — so this pins the executor's own
//! overhead at zero, not the whole active-round path.)
//!
//! A counting global allocator wraps the system allocator. The workload's
//! search rates are all zero, so no phrase ever occurs and every round is
//! pure executor overhead: the per-shard occurrence scatter in
//! `begin_round`, the degenerate (empty) pipeline, and settlement over
//! empty ledgers. All per-round shard state — occurrence
//! lists, cursors, participant sets, the persistent bid buffer — must
//! reuse capacity sized during warm-up.
//!
//! This file deliberately holds a single `#[test]`: the allocation
//! counter is process-global, and a concurrently running test in the same
//! binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssa_core::engine::{Engine, EngineConfig, RoutingMode, SharingStrategy};
use ssa_workload::{Workload, WorkloadConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_sharded_round_allocates_nothing() {
    // Mirror of `engine_round_alloc` with `shards: 4`: every sharing
    // strategy gets its own per-shard resolver slice, and the Hybrid
    // engines run over a mixed workload so both resolvers are in play.
    let configs = [
        ("shared-aggregation", 0.0, EngineConfig::default()),
        (
            "hybrid-static",
            0.4,
            EngineConfig {
                sharing: SharingStrategy::Hybrid,
                ..EngineConfig::default()
            },
        ),
        (
            "hybrid-adaptive",
            0.4,
            EngineConfig {
                sharing: SharingStrategy::Hybrid,
                routing: RoutingMode::Adaptive,
                ..EngineConfig::default()
            },
        ),
    ];
    for (name, jitter, config) in configs {
        let workload = Workload::generate(&WorkloadConfig {
            advertisers: 50,
            phrases: 6,
            topics: 3,
            phrase_factor_jitter: jitter,
            separable_fraction: if jitter > 0.0 { 0.5 } else { 1.0 },
            max_search_rate: 0.0, // no phrase ever occurs
            ..WorkloadConfig::default()
        });
        let mut engine = Engine::new(
            workload,
            EngineConfig {
                shards: 4,
                ..config
            },
        );
        assert!(
            engine.metrics().shards_resolved > 1,
            "[{name}] partition must actually shard this workload"
        );

        // Warm-up: sizes the m_i scratch, the persistent bid buffer, and
        // every shard's occurrence/cursor scratch.
        for _ in 0..3 {
            engine.run_round();
        }

        for round in 0..10 {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let outcomes = engine.run_round();
            let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert!(outcomes.is_empty(), "zero search rates: no auctions");
            assert_eq!(
                allocated, 0,
                "[{name}] steady-state sharded round {round} performed {allocated} heap allocations"
            );
        }
        assert_eq!(engine.metrics().rounds, 13, "[{name}]");
        assert_eq!(engine.last_effective_bids().len(), 50, "[{name}]");
    }
}
