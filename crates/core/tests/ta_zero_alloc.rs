//! Steady-state TA must not touch the heap in its seen-set and top-k
//! scratch paths.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up run has sized the [`TaScratch`] stamps, the top-k working
//! list, and the output buffer — and the merge network's caches are warm
//! — a TA run over the same phrase must allocate exactly nothing.
//!
//! This file deliberately holds a single `#[test]`: the allocation
//! counter is process-global, and a concurrently running test in the same
//! binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_core::sort::ta::{threshold_top_k_into, TaScratch};
use ssa_core::sort::MergeNetwork;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_ta_allocates_nothing() {
    let n = 64usize;
    let bids: Vec<u64> = (0..n).map(|i| ((i as u64 * 131) % 97) * 10).collect();
    let factors: Vec<f64> = (0..n)
        .map(|i| 0.1 + ((i * 29) % 23) as f64 / 10.0)
        .collect();

    // Balanced network over all advertisers, drained so caches are warm
    // (a steady-state round re-reads cached prefixes; it only merges
    // fresh items inside refreshed cones, which is the network's cost,
    // not TA's).
    let mut net = MergeNetwork::new();
    let mut level: Vec<usize> = bids
        .iter()
        .enumerate()
        .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            next.push(if pair.len() == 2 {
                net.merge(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        level = next;
    }
    let root = level[0];
    net.drain(root);

    let mut c_order: Vec<(AdvertiserId, f64)> = factors
        .iter()
        .enumerate()
        .map(|(i, &c)| (AdvertiserId::from_index(i), c))
        .collect();
    c_order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut scratch = TaScratch::new();
    let mut out = Vec::new();
    let k = 5;
    let run = |net: &mut MergeNetwork,
               scratch: &mut TaScratch,
               out: &mut Vec<(AdvertiserId, ssa_auction::score::Score)>| {
        threshold_top_k_into(
            |i| net.get(root, i),
            &c_order,
            |a| Money::from_micros(bids[a.index()]),
            |a| factors[a.index()],
            k,
            scratch,
            out,
        )
    };

    // Warm-up: sizes the stamps array, the k-list, and the out buffer.
    let warm = run(&mut net, &mut scratch, &mut out);

    // Steady state: several rounds, zero allocations.
    for round in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let steady = run(&mut net, &mut scratch, &mut out);
        let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
        assert_eq!(
            allocated, 0,
            "steady-state TA round {round} performed {allocated} heap allocations"
        );
        assert_eq!(steady, warm, "round {round} diverged");
    }
    assert_eq!(out.len(), k);
}
