//! Bytes-per-advertiser ceilings for the engine's hot state, per sharing
//! strategy, at n = 10 000.
//!
//! Two gates, both failing loudly with the measured numbers so a
//! regression shows its size immediately:
//!
//! 1. **Deterministic accounting** — [`Engine::hot_state_bytes`] sums the
//!    capacities of every persistent per-advertiser structure (SoA
//!    ledgers, bid vectors, participant scratch, plan/merge-network
//!    arenas and caches). Capacity arithmetic, not RSS, so the ceiling is
//!    bit-reproducible across hosts.
//! 2. **Allocator peak** — a counting global allocator tracks peak live
//!    heap bytes across engine construction plus warm rounds, catching
//!    transient population-sized spikes (e.g. a builder cloning dense
//!    per-advertiser tables) that capacity accounting cannot see.
//!
//! This file deliberately holds a single `#[test]`: the allocation
//! counter is process-global, and a concurrently running test in the same
//! binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssa_core::engine::{Engine, EngineConfig, SharingStrategy};
use ssa_workload::{Workload, WorkloadConfig};

struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn track(delta: u64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new > old {
            track(new - old);
        } else {
            LIVE.fetch_sub(old - new, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: PeakAlloc = PeakAlloc;

const N: usize = 10_000;

#[test]
fn bytes_per_advertiser_stay_under_ceiling() {
    // (name, sharing, jitter, hot-state ceiling, allocator-peak
    // ceiling), both ceilings in bytes per advertiser. Measured 2026-08
    // at n=10k, 32 phrases: hot state Unshared 80 (stateless resolver:
    // just the engine's SoA ledgers/bid vectors), SharedSort 752 (merge
    // arena + caches), SharedAggregation 5360 and Hybrid 5539 (the plan
    // DAG keeps a dense n-bit variable set per node, so its footprint
    // scales with nodes x n/8 — the known reason the memory-scaling
    // sweep runs SharedSort). Peaks add the planner's construction
    // scratch (~9000/adv for plan-bearing strategies), dropped before
    // steady state. Ceilings leave ~50% headroom; one extra dense
    // population-sized vector (8+ bytes/advertiser) blows through them.
    let cases = [
        ("unshared", SharingStrategy::Unshared, 0.4, 120, 160),
        (
            "shared-aggregation",
            SharingStrategy::SharedAggregation,
            0.0,
            8_000,
            14_000,
        ),
        (
            "shared-sort",
            SharingStrategy::SharedSort,
            0.4,
            1_200,
            1_600,
        ),
        ("hybrid", SharingStrategy::Hybrid, 0.4, 8_000, 13_000),
    ];
    for (name, sharing, jitter, hot_ceiling, peak_ceiling) in cases {
        let workload = Workload::generate(&WorkloadConfig {
            advertisers: N,
            phrases: 32,
            topics: 8,
            phrase_factor_jitter: jitter,
            separable_fraction: if jitter > 0.0 { 0.5 } else { 1.0 },
            max_search_rate: 0.3,
            seed: 7,
            ..WorkloadConfig::default()
        });

        // Baseline after the workload exists: everything the engine adds
        // on top — construction spikes included — counts against the
        // peak ceiling.
        let base = LIVE.load(Ordering::Relaxed);
        PEAK.store(base, Ordering::Relaxed);
        let mut engine = Engine::new(
            workload,
            EngineConfig {
                sharing,
                ..EngineConfig::default()
            },
        );
        for _ in 0..5 {
            engine.run_round();
        }
        let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(base) as usize;

        let hot = engine.hot_state_bytes();
        eprintln!("MEASURE {name}: hot={hot} peak={peak_delta}");
        let hot_per_adv = hot.div_ceil(N);
        let peak_per_adv = peak_delta.div_ceil(N);
        assert!(
            hot_per_adv <= hot_ceiling,
            "[{name}] hot state grew to {hot} bytes = {hot_per_adv} bytes/advertiser \
             (ceiling {hot_ceiling}); a new population-sized structure costs 4-8+ \
             bytes/advertiser — account for it or shrink it"
        );
        assert!(
            peak_per_adv <= peak_ceiling,
            "[{name}] peak heap during construction + 5 rounds was {peak_delta} bytes \
             = {peak_per_adv} bytes/advertiser (ceiling {peak_ceiling}); look for a \
             transient dense copy in construction or the round path"
        );
    }
}
