//! Bytes-per-advertiser ceilings for the engine's hot state, per sharing
//! strategy, at n = 10 000 (plus a 100k re-pin for the plan-bearing
//! strategy, whose footprint history is the one with a density cliff).
//!
//! Two gates, both failing loudly with the measured numbers so a
//! regression shows its size immediately:
//!
//! 1. **Deterministic accounting** — [`Engine::hot_state_bytes`] sums the
//!    capacities of every persistent per-advertiser structure (SoA
//!    ledgers, bid vectors, participant scratch, plan/merge-network
//!    arenas and caches). Capacity arithmetic, not RSS, so the ceiling is
//!    bit-reproducible across hosts.
//! 2. **Allocator peak** — a counting global allocator tracks peak live
//!    heap bytes across engine construction plus warm rounds, catching
//!    transient population-sized spikes (e.g. a builder cloning dense
//!    per-advertiser tables) that capacity accounting cannot see.
//!
//! This file deliberately holds a single `#[test]`: the allocation
//! counter is process-global, and a concurrently running test in the same
//! binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssa_core::engine::{Engine, EngineConfig, SharingStrategy};
use ssa_workload::{Workload, WorkloadConfig};

struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn track(delta: u64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new > old {
            track(new - old);
        } else {
            LIVE.fetch_sub(old - new, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: PeakAlloc = PeakAlloc;

#[test]
fn bytes_per_advertiser_stay_under_ceiling() {
    // (name, sharing, n, jitter, hot-state ceiling, allocator-peak
    // ceiling), both ceilings in bytes per advertiser. Measured 2026-08
    // at n=10k, 32 phrases: hot state Unshared 80 (stateless resolver:
    // just the engine's SoA ledgers/bid vectors), SharedSort 752 (merge
    // arena + caches), SharedAggregation 304 and Hybrid 754 (plan nodes
    // hold adaptive-sparse `VarSet`s in a CSR pool and the cost tracker's
    // reach sets are sparse, so the plan's footprint follows interest
    // density, not nodes x n/8 — down from 5360/5539 when every node
    // owned a dense n-bit set). The shared-aggregation-100k case re-pins
    // the plan-bearing ceiling a decade up (measured 288 hot / 542 peak)
    // to catch anything population-quadratic hiding at 10k. Peaks add
    // the planner's construction scratch, dropped before steady state.
    // Ceilings leave ~50% headroom; one extra dense population-sized
    // vector (8+ bytes/advertiser) blows through them.
    let cases = [
        ("unshared", SharingStrategy::Unshared, 10_000, 0.4, 120, 160),
        (
            "shared-aggregation",
            SharingStrategy::SharedAggregation,
            10_000,
            0.0,
            450,
            1_100,
        ),
        (
            "shared-sort",
            SharingStrategy::SharedSort,
            10_000,
            0.4,
            1_200,
            1_600,
        ),
        ("hybrid", SharingStrategy::Hybrid, 10_000, 0.4, 1_200, 1_400),
        (
            "shared-aggregation-100k",
            SharingStrategy::SharedAggregation,
            100_000,
            0.0,
            450,
            1_100,
        ),
    ];
    for (name, sharing, n, jitter, hot_ceiling, peak_ceiling) in cases {
        let workload = Workload::generate(&WorkloadConfig {
            advertisers: n,
            phrases: 32,
            topics: 8,
            phrase_factor_jitter: jitter,
            separable_fraction: if jitter > 0.0 { 0.5 } else { 1.0 },
            max_search_rate: 0.3,
            seed: 7,
            ..WorkloadConfig::default()
        });

        // Baseline after the workload exists: everything the engine adds
        // on top — construction spikes included — counts against the
        // peak ceiling.
        let base = LIVE.load(Ordering::Relaxed);
        PEAK.store(base, Ordering::Relaxed);
        let mut engine = Engine::new(
            workload,
            EngineConfig {
                sharing,
                ..EngineConfig::default()
            },
        );
        for _ in 0..5 {
            engine.run_round();
        }
        let peak_delta = PEAK.load(Ordering::Relaxed).saturating_sub(base) as usize;

        let hot = engine.hot_state_bytes();
        eprintln!("MEASURE {name}: hot={hot} peak={peak_delta}");
        let hot_per_adv = hot.div_ceil(n);
        let peak_per_adv = peak_delta.div_ceil(n);
        assert!(
            hot_per_adv <= hot_ceiling,
            "[{name}] hot state grew to {hot} bytes = {hot_per_adv} bytes/advertiser \
             (ceiling {hot_ceiling}); a new population-sized structure costs 4-8+ \
             bytes/advertiser — account for it or shrink it"
        );
        assert!(
            peak_per_adv <= peak_ceiling,
            "[{name}] peak heap during construction + 5 rounds was {peak_delta} bytes \
             = {peak_per_adv} bytes/advertiser (ceiling {peak_ceiling}); look for a \
             transient dense copy in construction or the round path"
        );
    }
}
