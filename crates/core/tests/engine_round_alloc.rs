//! Steady-state `run_round` must not clone the effective-bids vector (or
//! anything else population-sized) every round.
//!
//! A counting global allocator wraps the system allocator. The workload's
//! search rates are all zero, so no phrase ever occurs and every round is
//! pure executor overhead: participation counting, the (empty) throttle
//! stage, resolver dispatch, and settlement over empty ledgers. After the
//! warm-up rounds have sized the m_i scratch and the persistent
//! effective-bids buffer, such a round must allocate exactly nothing —
//! before the persistent buffer, the per-round
//! `last_effective_bids = effective_bids.clone()` alone allocated here.
//!
//! This file deliberately holds a single `#[test]`: the allocation
//! counter is process-global, and a concurrently running test in the same
//! binary would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ssa_core::engine::{Engine, EngineConfig, RoutingMode, SharingStrategy};
use ssa_workload::{Workload, WorkloadConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_round_allocates_nothing() {
    // The Hybrid engines run over a mixed (jittered, half-separable)
    // workload so both resolvers — and the adaptive router's seeding
    // path — are actually in play; the shared plan requires jitter-free.
    let configs = [
        ("shared-aggregation", 0.0, EngineConfig::default()),
        (
            "hybrid-static",
            0.4,
            EngineConfig {
                sharing: SharingStrategy::Hybrid,
                ..EngineConfig::default()
            },
        ),
        (
            "hybrid-adaptive",
            0.4,
            EngineConfig {
                sharing: SharingStrategy::Hybrid,
                routing: RoutingMode::Adaptive,
                ..EngineConfig::default()
            },
        ),
    ];
    for (name, jitter, config) in configs {
        let workload = Workload::generate(&WorkloadConfig {
            advertisers: 50,
            phrases: 6,
            topics: 3,
            phrase_factor_jitter: jitter,
            separable_fraction: if jitter > 0.0 { 0.5 } else { 1.0 },
            max_search_rate: 0.0, // no phrase ever occurs
            ..WorkloadConfig::default()
        });
        let mut engine = Engine::new(workload, config);

        // Warm-up: sizes the m_i scratch and the persistent bid buffer.
        for _ in 0..3 {
            engine.run_round();
        }

        for round in 0..10 {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let outcomes = engine.run_round();
            let allocated = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert!(outcomes.is_empty(), "zero search rates: no auctions");
            assert_eq!(
                allocated, 0,
                "[{name}] steady-state round {round} performed {allocated} heap allocations"
            );
        }
        assert_eq!(engine.metrics().rounds, 13, "[{name}]");
        assert_eq!(engine.last_effective_bids().len(), 50, "[{name}]");
    }
}
