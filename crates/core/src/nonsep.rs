//! Shared winner determination without separability (Section V).
//!
//! For non-separable CTRs, single-auction winner determination prunes the
//! advertiser–slot bipartite graph to the advertisers with the k highest
//! edges *per slot* and runs the Hungarian algorithm
//! ([`ssa_auction::nonseparable`]). The paper's Section V observes that
//! this pruning step is itself a family of top-k queries — one per
//! (phrase, slot) — and that "we can use the shared top-k algorithms
//! presented in this paper to find the top k advertisers for each slot in
//! the graph-pruning step".
//!
//! Since the edge weight `b_i · ctr_ij` of an advertiser in a fixed slot
//! `j` is the same in every phrase auction (only the *interest sets*
//! differ by phrase), one shared aggregation plan over the phrase
//! interest sets serves all slots: evaluate it `k` times, once per slot's
//! weight vector, and feed each phrase's per-slot top-k lists into the
//! pruned matching.

use ssa_auction::ctr::CtrModel;
use ssa_auction::ids::{AdvertiserId, SlotIndex};
use ssa_auction::money::Money;
use ssa_auction::score::Score;
use ssa_auction::winner::{Assignment, RankedWinner};
use ssa_setcover::BitSet;

use crate::plan::{PlanDag, PlanProblem, SharedPlanner};
use crate::topk::{KList, ScoredAd, ScoredTopKOp};

/// A compiled shared non-separable resolver for one round structure.
#[derive(Debug, Clone)]
pub struct SharedNonSeparable {
    plan: PlanDag,
    advertiser_count: usize,
    k: usize,
}

/// One phrase's resolution plus the work accounting.
#[derive(Debug, Clone)]
pub struct SharedNonSepOutcome {
    /// Slot assignments per occurring phrase (`None` for phrases that did
    /// not occur).
    pub assignments: Vec<Option<Assignment>>,
    /// Top-k aggregation operations spent in the shared pruning step.
    pub aggregation_ops: usize,
    /// The per-slot scans an unshared system would have performed
    /// (`k · Σ_occurring |I_q|`).
    pub unshared_scan_baseline: usize,
}

impl SharedNonSeparable {
    /// Compiles the shared plan over the phrase interest sets.
    pub fn new(
        advertiser_count: usize,
        interest: &[BitSet],
        search_rates: &[f64],
        k: usize,
    ) -> Self {
        let queries: Vec<BitSet> = interest
            .iter()
            .map(|q| {
                if q.is_empty() {
                    BitSet::singleton(advertiser_count, 0)
                } else {
                    q.clone()
                }
            })
            .collect();
        let problem = PlanProblem::new(advertiser_count, queries, Some(search_rates.to_vec()));
        SharedNonSeparable {
            plan: SharedPlanner::fragments_only().plan(&problem),
            advertiser_count,
            k,
        }
    }

    /// Resolves a round: for each occurring phrase, prune via the shared
    /// per-slot top-k plans and run the maximum-weight matching on the
    /// pruned graph.
    pub fn resolve_round<M: CtrModel>(
        &self,
        model: &M,
        bids: &[Money],
        interest: &[BitSet],
        occurring: &[bool],
    ) -> SharedNonSepOutcome {
        assert_eq!(bids.len(), self.advertiser_count, "one bid per advertiser");
        assert_eq!(occurring.len(), interest.len(), "one flag per phrase");
        assert_eq!(model.slot_count(), self.k, "model must cover k slots");
        let op = ScoredTopKOp { k: self.k };

        // One shared-plan evaluation per slot; `slot_tops[j][q]` is the
        // top-k of slot j's edge weights within phrase q's interest set.
        let mut aggregation_ops = 0usize;
        let mut slot_tops: Vec<Vec<Option<KList<ScoredAd>>>> = Vec::with_capacity(self.k);
        for j in 0..self.k {
            let slot = SlotIndex(j as u8);
            let leaves: Vec<KList<ScoredAd>> = (0..self.advertiser_count)
                .map(|i| {
                    let adv = AdvertiserId::from_index(i);
                    let weight = model.ctr(adv, slot).value() * bids[i].to_f64();
                    KList::singleton(self.k, ScoredAd::new(adv, Score::new(weight)))
                })
                .collect();
            let (results, ops) = self.plan.evaluate(&op, &leaves, occurring);
            aggregation_ops += ops;
            slot_tops.push(results);
        }

        // Per occurring phrase: candidates = union of its k slot lists,
        // then the pruned maximum-weight matching.
        let mut assignments = Vec::with_capacity(interest.len());
        for (q, (&occ, iq)) in occurring.iter().zip(interest).enumerate() {
            if !occ || iq.is_empty() {
                assignments.push(None);
                continue;
            }
            let mut candidates: Vec<AdvertiserId> = Vec::new();
            for tops in slot_tops.iter() {
                if let Some(list) = &tops[q] {
                    for s in list.items() {
                        // Guard against the empty-phrase placeholder leaf.
                        if iq.contains(s.advertiser.index()) && !candidates.contains(&s.advertiser)
                        {
                            candidates.push(s.advertiser);
                        }
                    }
                }
            }
            candidates.sort_unstable();
            let weights: Vec<Vec<f64>> = (0..self.k)
                .map(|j| {
                    candidates
                        .iter()
                        .map(|&a| {
                            model.ctr(a, SlotIndex(j as u8)).value() * bids[a.index()].to_f64()
                        })
                        .collect()
                })
                .collect();
            let matching = ssa_auction::assignment::max_weight_assignment(&weights);
            let winners: Vec<RankedWinner> = matching
                .row_to_col
                .iter()
                .enumerate()
                .filter_map(|(j, col)| {
                    col.and_then(|c| {
                        let w = weights[j][c];
                        (w > 0.0).then(|| RankedWinner {
                            slot: SlotIndex(j as u8),
                            advertiser: candidates[c],
                            score: Score::new(w),
                        })
                    })
                })
                .collect();
            assignments.push(Some(Assignment::from_winners(winners)));
        }

        let unshared_scan_baseline = self.k
            * interest
                .iter()
                .zip(occurring)
                .filter(|(_, &occ)| occ)
                .map(|(iq, _)| iq.len())
                .sum::<usize>();
        SharedNonSepOutcome {
            assignments,
            aggregation_ops,
            unshared_scan_baseline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_auction::ctr::CtrMatrix;
    use ssa_auction::nonseparable::{determine_winners_nonseparable, NonSeparableBid};

    /// Per-phrase unshared reference.
    fn reference(
        matrix: &CtrMatrix,
        bids: &[Money],
        interest: &[BitSet],
        occurring: &[bool],
    ) -> Vec<Option<f64>> {
        interest
            .iter()
            .zip(occurring)
            .map(|(iq, &occ)| {
                if !occ || iq.is_empty() {
                    return None;
                }
                let phrase_bids: Vec<NonSeparableBid> = iq
                    .iter()
                    .map(|i| NonSeparableBid {
                        advertiser: AdvertiserId::from_index(i),
                        bid: bids[i],
                    })
                    .collect();
                Some(determine_winners_nonseparable(matrix, &phrase_bids).expected_value)
            })
            .collect()
    }

    fn assignment_value(assignment: &Assignment, matrix: &CtrMatrix, bids: &[Money]) -> f64 {
        assignment
            .winners()
            .iter()
            .map(|w| matrix.ctr(w.advertiser, w.slot).value() * bids[w.advertiser.index()].to_f64())
            .sum()
    }

    #[test]
    fn matches_per_phrase_resolution() {
        let k = 3;
        let n = 12;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..k)
                    .map(|j| ((i * 5 + j * 11 + 3) % 17) as f64 / 17.0)
                    .collect()
            })
            .collect();
        let matrix = CtrMatrix::new(rows).unwrap();
        let bids: Vec<Money> = (0..n)
            .map(|i| Money::from_f64(1.0 + (i % 5) as f64 * 0.7))
            .collect();
        let interest = vec![
            BitSet::from_elements(n, 0..8),
            BitSet::from_elements(n, 4..12),
            BitSet::from_elements(n, (0..n).filter(|i| i % 2 == 0)),
        ];
        let rates = vec![0.8, 0.8, 0.6];
        let shared = SharedNonSeparable::new(n, &interest, &rates, k);
        let occurring = vec![true, true, true];
        let outcome = shared.resolve_round(&matrix, &bids, &interest, &occurring);
        let want = reference(&matrix, &bids, &interest, &occurring);
        for (q, (got, want)) in outcome.assignments.iter().zip(&want).enumerate() {
            let got_v = got.as_ref().map(|a| assignment_value(a, &matrix, &bids));
            match (got_v, want) {
                (Some(g), Some(w)) => {
                    assert!((g - w).abs() < 1e-9, "phrase {q}: {g} vs {w}")
                }
                (None, None) => {}
                other => panic!("phrase {q}: {other:?}"),
            }
        }
        assert!(outcome.aggregation_ops > 0);
        assert!(
            outcome.aggregation_ops < outcome.unshared_scan_baseline,
            "sharing must beat {} scans (got {} ops)",
            outcome.unshared_scan_baseline,
            outcome.aggregation_ops
        );
    }

    #[test]
    fn skips_non_occurring_and_empty_phrases() {
        let k = 2;
        let n = 6;
        let matrix =
            CtrMatrix::new((0..n).map(|i| vec![0.1 * (i + 1) as f64, 0.05]).collect()).unwrap();
        let bids = vec![Money::from_units(1); n];
        let interest = vec![
            BitSet::from_elements(n, 0..4),
            BitSet::new(n),
            BitSet::from_elements(n, 2..6),
        ];
        let shared = SharedNonSeparable::new(n, &interest, &[0.5; 3], k);
        let outcome = shared.resolve_round(&matrix, &bids, &interest, &[true, true, false]);
        assert!(outcome.assignments[0].is_some());
        assert!(outcome.assignments[1].is_none(), "empty phrase");
        assert!(outcome.assignments[2].is_none(), "did not occur");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The shared pruning pipeline is lossless: per-phrase objective
        /// values equal the unshared per-phrase resolution.
        #[test]
        fn shared_pruning_is_lossless(
            n in 4usize..10,
            k in 1usize..4,
            ctr_seed in proptest::collection::vec(0u8..=100, 40),
            bid_seed in proptest::collection::vec(1u8..50, 10),
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..10, 1..8), 1..4),
            occ in proptest::collection::vec(any::<bool>(), 4),
        ) {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..k).map(|j| ctr_seed[(i * 4 + j) % 40] as f64 / 100.0).collect())
                .collect();
            let matrix = CtrMatrix::new(rows).unwrap();
            let bids: Vec<Money> = (0..n)
                .map(|i| Money::from_f64(bid_seed[i % 10] as f64 / 10.0))
                .collect();
            let interest: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(n, s.iter().copied().filter(|&v| v < n)))
                .collect();
            // Drop phrases that became empty after filtering.
            let interest: Vec<BitSet> =
                interest.into_iter().filter(|s| !s.is_empty()).collect();
            prop_assume!(!interest.is_empty());
            let m = interest.len();
            let occurring: Vec<bool> = (0..m).map(|q| occ[q % occ.len()]).collect();
            let shared = SharedNonSeparable::new(n, &interest, &vec![0.5; m], k);
            let outcome = shared.resolve_round(&matrix, &bids, &interest, &occurring);
            let want = reference(&matrix, &bids, &interest, &occurring);
            for (q, (got, want)) in outcome.assignments.iter().zip(&want).enumerate() {
                let got_v = got.as_ref().map(|a| assignment_value(a, &matrix, &bids));
                match (got_v, want) {
                    (Some(g), Some(w)) =>
                        prop_assert!((g - w).abs() < 1e-9, "phrase {}: {} vs {}", q, g, w),
                    (None, None) => {}
                    other => prop_assert!(false, "phrase {}: {:?}", q, other),
                }
            }
        }
    }
}
