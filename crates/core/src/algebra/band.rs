//! The free band: an exact word problem for idempotent semigroups.
//!
//! Figure 5 leaves the complexity of optimal *plan sharing* open for
//! associative, idempotent, non-commutative operators (bands). Deciding
//! A-equivalence of two ⊕-expressions in that class is nonetheless a
//! classical solved problem — the free band's word problem — via the
//! Green's-relations normal form:
//!
//! Two words are equal in the free band iff they have the same *content*
//! (set of letters) and, recursively, the same
//! `(prefix-part, completion letter, anchor letter, suffix-part)`
//! decomposition, where
//!
//! * the **completion letter** `a` is the last letter of the shortest
//!   prefix containing the full content, and the prefix-part is that
//!   prefix minus `a` (its content misses exactly `a`);
//! * symmetrically the **anchor letter** `b` is the first letter of the
//!   shortest suffix with full content, and the suffix-part is that
//!   suffix minus `b`.
//!
//! This gives [`Expr::canon_key`](super::expr::Expr::canon_key) an exact
//! canonical form for the band class (the sequence-with-adjacent-dedup
//! approximation used previously is kept only as documentation history).
//! The classic counting facts — the free band on 2 generators has 6
//! elements, on 3 generators 159 — are verified in the tests.

/// The normal form of a nonempty word in the free band.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BandNf {
    /// A single letter (any power of a letter collapses here).
    Letter(usize),
    /// A word whose content has at least two letters.
    Node {
        /// Normal form of the shortest full-content prefix minus its last
        /// letter.
        left: Box<BandNf>,
        /// The completion letter `a`.
        completion: usize,
        /// The anchor letter `b`.
        anchor: usize,
        /// Normal form of the shortest full-content suffix minus its
        /// first letter.
        right: Box<BandNf>,
    },
}

/// Computes the free-band normal form of a nonempty word.
///
/// # Panics
/// Panics on an empty word (the band has no identity element).
pub fn band_normal_form(word: &[usize]) -> BandNf {
    assert!(!word.is_empty(), "the free band has no empty word");
    let mut content: Vec<usize> = word.to_vec();
    content.sort_unstable();
    content.dedup();
    if content.len() == 1 {
        return BandNf::Letter(content[0]);
    }

    // Shortest prefix with full content: scan until every letter seen.
    let target = content.len();
    let mut seen: Vec<bool> = Vec::new();
    let max_letter = *content.last().expect("nonempty");
    seen.resize(max_letter + 1, false);
    let mut distinct = 0;
    let mut prefix_end = 0;
    for (i, &c) in word.iter().enumerate() {
        if !seen[c] {
            seen[c] = true;
            distinct += 1;
        }
        if distinct == target {
            prefix_end = i;
            break;
        }
    }
    let completion = word[prefix_end];
    let left = band_normal_form(&word[..prefix_end]);

    // Shortest suffix with full content (mirror scan).
    for s in seen.iter_mut() {
        *s = false;
    }
    distinct = 0;
    let mut suffix_start = 0;
    for (i, &c) in word.iter().enumerate().rev() {
        if !seen[c] {
            seen[c] = true;
            distinct += 1;
        }
        if distinct == target {
            suffix_start = i;
            break;
        }
    }
    let anchor = word[suffix_start];
    let right = band_normal_form(&word[suffix_start + 1..]);

    BandNf::Node {
        left: Box::new(left),
        completion,
        anchor,
        right: Box::new(right),
    }
}

/// Decides equality in the free band.
pub fn band_equivalent(a: &[usize], b: &[usize]) -> bool {
    band_normal_form(a) == band_normal_form(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn nf(w: &[usize]) -> BandNf {
        band_normal_form(w)
    }

    #[test]
    fn powers_of_a_letter_collapse() {
        assert_eq!(nf(&[0]), nf(&[0, 0, 0, 0]));
        assert_eq!(nf(&[3, 3]), BandNf::Letter(3));
    }

    #[test]
    fn basic_band_identities() {
        // ww = w.
        let w = [0, 1, 0, 2];
        let ww: Vec<usize> = w.iter().chain(w.iter()).copied().collect();
        assert!(band_equivalent(&w, &ww));
        // Adjacent square collapse: xyyz = xyz.
        assert!(band_equivalent(&[0, 1, 1, 2], &[0, 1, 2]));
        // xyxy = xy (it's (xy)²).
        assert!(band_equivalent(&[0, 1, 0, 1], &[0, 1]));
        // But xyx ≠ xy and xyx ≠ yx in the free band.
        assert!(!band_equivalent(&[0, 1, 0], &[0, 1]));
        assert!(!band_equivalent(&[0, 1, 0], &[1, 0]));
        // Non-commutative: xy ≠ yx.
        assert!(!band_equivalent(&[0, 1], &[1, 0]));
    }

    #[test]
    fn free_band_on_two_generators_has_six_elements() {
        let mut classes: HashSet<BandNf> = HashSet::new();
        // All words over {0, 1} up to length 6.
        for len in 1..=6usize {
            for code in 0..(1usize << len) {
                let word: Vec<usize> = (0..len).map(|i| (code >> i) & 1).collect();
                classes.insert(nf(&word));
            }
        }
        assert_eq!(classes.len(), 6, "free band on 2 generators");
    }

    #[test]
    fn free_band_on_three_generators_has_159_elements() {
        let mut classes: HashSet<BandNf> = HashSet::new();
        // Words up to length 8 over {0,1,2} are enough to realize every
        // element (the longest minimal representatives have length 8).
        for len in 1..=8usize {
            let mut word = vec![0usize; len];
            loop {
                classes.insert(nf(&word));
                // Odometer increment in base 3.
                let mut i = 0;
                loop {
                    if i == len {
                        break;
                    }
                    word[i] += 1;
                    if word[i] < 3 {
                        break;
                    }
                    word[i] = 0;
                    i += 1;
                }
                if i == len {
                    break;
                }
            }
        }
        assert_eq!(classes.len(), 159, "free band on 3 generators");
    }

    #[test]
    #[should_panic(expected = "no empty word")]
    fn rejects_empty_word() {
        band_normal_form(&[]);
    }

    proptest! {
        /// Idempotence as a property: w·w ≡ w for random words.
        #[test]
        fn squaring_is_identity(word in proptest::collection::vec(0usize..4, 1..12)) {
            let doubled: Vec<usize> = word.iter().chain(word.iter()).copied().collect();
            prop_assert!(band_equivalent(&word, &doubled));
        }

        /// Collapsing an adjacent duplicate never changes the class.
        #[test]
        fn adjacent_dedup_is_sound(word in proptest::collection::vec(0usize..4, 2..12),
                                   pos in 0usize..11) {
            let pos = pos % (word.len() - 1).max(1);
            // Duplicate the letter at `pos`.
            let mut stuttered = word.clone();
            stuttered.insert(pos, word[pos]);
            prop_assert!(band_equivalent(&word, &stuttered));
        }

        /// Normal forms respect content: different letter sets always
        /// separate.
        #[test]
        fn content_mismatch_separates(
            a in proptest::collection::vec(0usize..3, 1..8),
            b in proptest::collection::vec(0usize..3, 1..8),
        ) {
            let ca: std::collections::BTreeSet<usize> = a.iter().copied().collect();
            let cb: std::collections::BTreeSet<usize> = b.iter().copied().collect();
            if ca != cb {
                prop_assert!(!band_equivalent(&a, &b));
            }
        }

        /// Congruence: if u ≡ v then wu ≡ wv and uw ≡ vw, exercised via
        /// the square witness (u = w, v = ww).
        #[test]
        fn congruence_under_concatenation(
            w in proptest::collection::vec(0usize..3, 1..8),
            z in proptest::collection::vec(0usize..3, 1..8),
        ) {
            let ww: Vec<usize> = w.iter().chain(w.iter()).copied().collect();
            let wz: Vec<usize> = w.iter().chain(z.iter()).copied().collect();
            let wwz: Vec<usize> = ww.iter().chain(z.iter()).copied().collect();
            prop_assert!(band_equivalent(&wz, &wwz));
            let zw: Vec<usize> = z.iter().chain(w.iter()).copied().collect();
            let zww: Vec<usize> = z.iter().chain(ww.iter()).copied().collect();
            prop_assert!(band_equivalent(&zw, &zww));
        }
    }
}
