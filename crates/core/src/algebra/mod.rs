//! The abstract aggregation algebra.
//!
//! Section II-C abstracts the top-k aggregator as a binary operator ⊕ (a
//! *magma*) satisfying a subset of five axioms; Section VII extends the
//! study to the full lattice of axiom combinations and tabulates the
//! complexity of optimal plan sharing per combination (Figure 5):
//!
//! * **A1** associativity, **A2** identity, **A3** idempotence,
//!   **A4** commutativity, **A5** divisibility
//!   (`∀a,b ∃!c ∃!d. a⊕c = d⊕a = b`).
//!
//! [`AxiomSet`] represents such subsets; [`expr`] provides ⊕-expressions
//! with per-axiom-set canonical forms and A-equivalence (Lemma 1 for the
//! semilattice case); [`ops`] provides the concrete operators the paper
//! names (top-k, max, min, sum, count, product, Bloom-filter union, …)
//! with their declared axioms, plus a property-testing harness that
//! verifies each declaration.

pub mod band;
pub mod expr;
pub mod ops;

pub use expr::{CanonKey, Expr};
pub use ops::AggregateOp;

use std::fmt;

/// A subset of the axioms A1–A5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxiomSet(u8);

impl AxiomSet {
    /// The empty axiom set (a bare magma).
    pub const NONE: AxiomSet = AxiomSet(0);
    /// A1: associativity.
    pub const A1: AxiomSet = AxiomSet(1);
    /// A2: two-sided identity element.
    pub const A2: AxiomSet = AxiomSet(2);
    /// A3: idempotence (`a ⊕ a = a`).
    pub const A3: AxiomSet = AxiomSet(4);
    /// A4: commutativity.
    pub const A4: AxiomSet = AxiomSet(8);
    /// A5: divisibility (unique left/right quotients).
    pub const A5: AxiomSet = AxiomSet(16);

    /// The paper's main object: `A = {A1, A2, A3, A4}`, a semilattice
    /// with identity — the top-k aggregator's axioms.
    pub const SEMILATTICE_WITH_IDENTITY: AxiomSet = AxiomSet(1 | 2 | 4 | 8);

    /// Union of two axiom sets.
    #[inline]
    pub const fn with(self, other: AxiomSet) -> AxiomSet {
        AxiomSet(self.0 | other.0)
    }

    /// True iff every axiom in `other` is present.
    #[inline]
    pub const fn contains(self, other: AxiomSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Shorthand accessors.
    #[inline]
    pub const fn associative(self) -> bool {
        self.contains(AxiomSet::A1)
    }
    /// A2 present.
    #[inline]
    pub const fn has_identity(self) -> bool {
        self.contains(AxiomSet::A2)
    }
    /// A3 present.
    #[inline]
    pub const fn idempotent(self) -> bool {
        self.contains(AxiomSet::A3)
    }
    /// A4 present.
    #[inline]
    pub const fn commutative(self) -> bool {
        self.contains(AxiomSet::A4)
    }
    /// A5 present.
    #[inline]
    pub const fn divisible(self) -> bool {
        self.contains(AxiomSet::A5)
    }

    /// True iff the axioms force the algebra to be trivial (a single
    /// element), making plan optimization O(1):
    ///
    /// * A1+A3+A5: a semigroup with divisibility is a group; an
    ///   idempotent group is trivial (`a² = a ⇒ a = e`).
    /// * A2+A3+A5: `a⊕a = a = a⊕e` plus the *unique* solvability of
    ///   `a⊕x = a` forces `a = e` for every `a`.
    ///
    /// These are exactly the O(1) rows of Figure 5 (rows 5 and 9).
    pub const fn is_degenerate(self) -> bool {
        (self.idempotent() && self.divisible()) && (self.associative() || self.has_identity())
    }

    /// The standard name of the algebraic structure these axioms
    /// characterize, following the paper's list.
    pub fn structure_name(self) -> &'static str {
        match (
            self.associative(),
            self.has_identity(),
            self.idempotent(),
            self.commutative(),
            self.divisible(),
        ) {
            (true, true, false, true, true) => "Abelian group",
            (true, true, false, false, true) => "group",
            (true, true, true, true, _) => "semilattice with identity",
            (true, false, true, true, _) => "semilattice",
            (true, _, true, false, _) => "band",
            (true, true, false, _, false) => "monoid",
            (true, false, false, _, false) => "semigroup",
            (false, true, _, _, true) => "loop",
            (false, false, _, _, true) => "quasigroup",
            _ => "magma",
        }
    }
}

impl fmt::Display for AxiomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (bit, name) in [
            (AxiomSet::A1, "A1"),
            (AxiomSet::A2, "A2"),
            (AxiomSet::A3, "A3"),
            (AxiomSet::A4, "A4"),
            (AxiomSet::A5, "A5"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

/// Complexity of finding an optimal shared plan for an axiom class
/// (Figure 5's right column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanComplexity {
    /// Solvable in polynomial time.
    Ptime,
    /// Trivial: the algebra is degenerate, optimization is constant time.
    Constant,
    /// NP-complete.
    NpComplete,
    /// Open in the paper (rows 6–8 with A4 = N).
    Open,
}

/// The Figure 5 classification: the complexity of optimally sharing
/// aggregation for operators with exactly these axioms.
///
/// Rows are matched in the paper's order; `*` entries are wildcards.
pub fn fig5_complexity(a: AxiomSet) -> PlanComplexity {
    let (a1, a2, a3, a4, a5) = (
        a.associative(),
        a.has_identity(),
        a.idempotent(),
        a.commutative(),
        a.divisible(),
    );
    match (a1, a2, a3, a4, a5) {
        // Row 5: N Y Y * Y → O(1); Row 9: Y * Y * Y → O(1).
        (false, true, true, _, true) | (true, _, true, _, true) => PlanComplexity::Constant,
        // Row 1: N * * * N → PTIME.
        (false, _, _, _, false) => PlanComplexity::Ptime,
        // Rows 2–4: N {N,Y} {N,Y} * Y → PTIME (row 5 already matched).
        (false, _, _, _, true) => PlanComplexity::Ptime,
        // Rows 6–8: Y * {N,Y} Y {N,Y} → NP-complete (row 9 matched above).
        (true, _, _, true, _) => PlanComplexity::NpComplete,
        // Lines 6–8 with A4 = N: open per the paper.
        (true, _, _, false, _) => PlanComplexity::Open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axiom_set_algebra() {
        let s = AxiomSet::A1.with(AxiomSet::A4);
        assert!(s.associative() && s.commutative());
        assert!(!s.idempotent());
        assert!(s.contains(AxiomSet::A1));
        assert!(!s.contains(AxiomSet::A1.with(AxiomSet::A3)));
        assert_eq!(s.to_string(), "A1+A4");
        assert_eq!(AxiomSet::NONE.to_string(), "∅");
    }

    #[test]
    fn semilattice_constant_matches_components() {
        let s = AxiomSet::SEMILATTICE_WITH_IDENTITY;
        assert!(s.associative() && s.has_identity() && s.idempotent() && s.commutative());
        assert!(!s.divisible());
        assert_eq!(s.structure_name(), "semilattice with identity");
    }

    #[test]
    fn structure_names() {
        assert_eq!(AxiomSet::A1.structure_name(), "semigroup");
        assert_eq!(AxiomSet::A1.with(AxiomSet::A2).structure_name(), "monoid");
        assert_eq!(
            AxiomSet::A1
                .with(AxiomSet::A2)
                .with(AxiomSet::A5)
                .structure_name(),
            "group"
        );
        assert_eq!(
            AxiomSet::A1
                .with(AxiomSet::A2)
                .with(AxiomSet::A4)
                .with(AxiomSet::A5)
                .structure_name(),
            "Abelian group"
        );
        assert_eq!(AxiomSet::A1.with(AxiomSet::A3).structure_name(), "band");
        assert_eq!(
            AxiomSet::A1
                .with(AxiomSet::A3)
                .with(AxiomSet::A4)
                .structure_name(),
            "semilattice"
        );
        assert_eq!(AxiomSet::A5.structure_name(), "quasigroup");
        assert_eq!(AxiomSet::A2.with(AxiomSet::A5).structure_name(), "loop");
        assert_eq!(AxiomSet::NONE.structure_name(), "magma");
    }

    #[test]
    fn degeneracy() {
        // A1+A3+A5 trivial.
        assert!(AxiomSet::A1
            .with(AxiomSet::A3)
            .with(AxiomSet::A5)
            .is_degenerate());
        // A2+A3+A5 trivial.
        assert!(AxiomSet::A2
            .with(AxiomSet::A3)
            .with(AxiomSet::A5)
            .is_degenerate());
        // Semilattice (no A5) is not degenerate.
        assert!(!AxiomSet::SEMILATTICE_WITH_IDENTITY.is_degenerate());
        // Quasigroup with idempotence but neither A1 nor A2 is not
        // (e.g. the "midpoint" operation on ℝ).
        assert!(!AxiomSet::A3.with(AxiomSet::A5).is_degenerate());
    }

    /// The full Figure 5 table, row by row.
    #[test]
    fn fig5_rows() {
        use PlanComplexity::*;
        let n = AxiomSet::NONE;
        let rows: Vec<(AxiomSet, PlanComplexity)> = vec![
            // Row 1: N * * * N → PTIME (sample the wildcards).
            (n, Ptime),
            (AxiomSet::A2.with(AxiomSet::A4), Ptime),
            (AxiomSet::A3, Ptime),
            // Row 2: N N N * Y → PTIME.
            (AxiomSet::A5, Ptime),
            (AxiomSet::A4.with(AxiomSet::A5), Ptime),
            // Row 3: N Y N * Y → PTIME.
            (AxiomSet::A2.with(AxiomSet::A5), Ptime),
            // Row 4: N N Y * Y → PTIME.
            (AxiomSet::A3.with(AxiomSet::A5), Ptime),
            // Row 5: N Y Y * Y → O(1).
            (AxiomSet::A2.with(AxiomSet::A3).with(AxiomSet::A5), Constant),
            // Row 6: Y * N Y N → NP-complete.
            (AxiomSet::A1.with(AxiomSet::A4), NpComplete),
            (
                AxiomSet::A1.with(AxiomSet::A2).with(AxiomSet::A4),
                NpComplete,
            ),
            // Row 7: Y * N Y Y → NP-complete (Abelian groups!).
            (
                AxiomSet::A1
                    .with(AxiomSet::A2)
                    .with(AxiomSet::A4)
                    .with(AxiomSet::A5),
                NpComplete,
            ),
            // Row 8: Y * Y Y N → NP-complete (the semilattice case).
            (AxiomSet::SEMILATTICE_WITH_IDENTITY, NpComplete),
            (
                AxiomSet::A1.with(AxiomSet::A3).with(AxiomSet::A4),
                NpComplete,
            ),
            // Row 9: Y * Y * Y → O(1).
            (AxiomSet::A1.with(AxiomSet::A3).with(AxiomSet::A5), Constant),
            (
                AxiomSet::A1
                    .with(AxiomSet::A3)
                    .with(AxiomSet::A4)
                    .with(AxiomSet::A5),
                Constant,
            ),
            // Open: associative, non-commutative rows.
            (AxiomSet::A1, Open),
            (AxiomSet::A1.with(AxiomSet::A3), Open),
        ];
        for (axioms, expected) in rows {
            assert_eq!(
                fig5_complexity(axioms),
                expected,
                "axioms {axioms} misclassified"
            );
        }
    }

    #[test]
    fn degenerate_sets_classify_constant() {
        // Consistency: every degenerate axiom set must be O(1) in Fig 5.
        for bits in 0u8..32 {
            let s = AxiomSet(bits);
            if s.is_degenerate() {
                assert_eq!(fig5_complexity(s), PlanComplexity::Constant, "{s}");
            }
        }
    }
}
