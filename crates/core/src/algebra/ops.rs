//! Concrete aggregation operators and their declared axioms.
//!
//! The paper's examples: top-k, max, min, sum, count, product, and
//! Bloom-filter unions/intersections ("these aggregates can be combined
//! with each other to compute other useful aggregates such as mean and
//! variance"). Each operator declares its axiom set; the
//! [`check_axioms`] harness verifies every declared axiom on sample
//! values, so a wrong declaration fails tests rather than silently
//! corrupting plan sharing.

use crate::algebra::AxiomSet;
use crate::bloom::BloomFilter;
use crate::topk::KList;

/// A binary aggregation operator with declared algebraic properties.
pub trait AggregateOp {
    /// The value domain `Z`.
    type Value: Clone + PartialEq + std::fmt::Debug;

    /// Operator name for reports.
    fn name(&self) -> &'static str;

    /// The axioms this operator satisfies.
    fn axioms(&self) -> AxiomSet;

    /// `a ⊕ b`.
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The identity element, if A2 is declared.
    fn identity(&self) -> Option<Self::Value> {
        None
    }
}

/// Top-k aggregation over ordered items (the paper's central operator):
/// semilattice with identity.
#[derive(Debug, Clone, Copy)]
pub struct TopKOp {
    /// The slot count `k`.
    pub k: usize,
}

impl AggregateOp for TopKOp {
    type Value = KList<i64>;

    fn name(&self) -> &'static str {
        "top-k"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::SEMILATTICE_WITH_IDENTITY
    }

    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        a.merge(b)
    }

    fn identity(&self) -> Option<Self::Value> {
        Some(KList::empty(self.k))
    }
}

/// Maximum: semilattice (identity only with a least element; we use
/// `i64::MIN` as a practical identity).
#[derive(Debug, Clone, Copy)]
pub struct MaxOp;

impl AggregateOp for MaxOp {
    type Value = i64;

    fn name(&self) -> &'static str {
        "max"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::SEMILATTICE_WITH_IDENTITY
    }

    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.max(b)
    }

    fn identity(&self) -> Option<i64> {
        Some(i64::MIN)
    }
}

/// Minimum: the dual semilattice.
#[derive(Debug, Clone, Copy)]
pub struct MinOp;

impl AggregateOp for MinOp {
    type Value = i64;

    fn name(&self) -> &'static str {
        "min"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::SEMILATTICE_WITH_IDENTITY
    }

    fn combine(&self, a: &i64, b: &i64) -> i64 {
        *a.min(b)
    }

    fn identity(&self) -> Option<i64> {
        Some(i64::MAX)
    }
}

/// Sum over ℤ: Abelian group — Figure 5 row 7, one of the NP-complete
/// divisible classes.
#[derive(Debug, Clone, Copy)]
pub struct SumOp;

impl AggregateOp for SumOp {
    type Value = i64;

    fn name(&self) -> &'static str {
        "sum"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::A1
            .with(AxiomSet::A2)
            .with(AxiomSet::A4)
            .with(AxiomSet::A5)
    }

    fn combine(&self, a: &i64, b: &i64) -> i64 {
        a.wrapping_add(*b)
    }

    fn identity(&self) -> Option<i64> {
        Some(0)
    }
}

/// Count: isomorphic to sum of ones (the per-leaf value is each input's
/// contribution, 1).
#[derive(Debug, Clone, Copy)]
pub struct CountOp;

impl AggregateOp for CountOp {
    type Value = u64;

    fn name(&self) -> &'static str {
        "count"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::A1.with(AxiomSet::A2).with(AxiomSet::A4)
    }

    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }

    fn identity(&self) -> Option<u64> {
        Some(0)
    }
}

/// Product over ℤ: commutative monoid (no division within ℤ).
#[derive(Debug, Clone, Copy)]
pub struct ProductOp;

impl AggregateOp for ProductOp {
    type Value = i64;

    fn name(&self) -> &'static str {
        "product"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::A1.with(AxiomSet::A2).with(AxiomSet::A4)
    }

    fn combine(&self, a: &i64, b: &i64) -> i64 {
        a.wrapping_mul(*b)
    }

    fn identity(&self) -> Option<i64> {
        Some(1)
    }
}

/// Boolean OR: the two-element semilattice.
#[derive(Debug, Clone, Copy)]
pub struct BoolOrOp;

impl AggregateOp for BoolOrOp {
    type Value = bool;

    fn name(&self) -> &'static str {
        "or"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::SEMILATTICE_WITH_IDENTITY
    }

    fn combine(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }

    fn identity(&self) -> Option<bool> {
        Some(false)
    }
}

/// XOR over u64: Abelian group where every element is its own inverse —
/// divisible but *not* idempotent.
#[derive(Debug, Clone, Copy)]
pub struct XorOp;

impl AggregateOp for XorOp {
    type Value = u64;

    fn name(&self) -> &'static str {
        "xor"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::A1
            .with(AxiomSet::A2)
            .with(AxiomSet::A4)
            .with(AxiomSet::A5)
    }

    fn combine(&self, a: &u64, b: &u64) -> u64 {
        a ^ b
    }

    fn identity(&self) -> Option<u64> {
        Some(0)
    }
}

/// Bloom-filter union: semilattice with identity (the empty filter).
#[derive(Debug, Clone, Copy)]
pub struct BloomUnionOp {
    /// Filter size in bits.
    pub m_bits: usize,
    /// Hash count.
    pub hashes: u32,
}

impl AggregateOp for BloomUnionOp {
    type Value = BloomFilter;

    fn name(&self) -> &'static str {
        "bloom-union"
    }

    fn axioms(&self) -> AxiomSet {
        AxiomSet::SEMILATTICE_WITH_IDENTITY
    }

    fn combine(&self, a: &BloomFilter, b: &BloomFilter) -> BloomFilter {
        a.union(b)
    }

    fn identity(&self) -> Option<BloomFilter> {
        Some(BloomFilter::new(self.m_bits, self.hashes))
    }
}

/// A report from [`check_axioms`]: which declared axioms were violated on
/// the sample set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AxiomReport {
    /// Human-readable violations; empty means all declared axioms held.
    pub violations: Vec<String>,
}

impl AxiomReport {
    /// True iff no declared axiom was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies every axiom the operator declares against the sample values.
/// (A5's `∃` half cannot be refuted on finite samples; we check the
/// uniqueness half — no two distinct sample values solve `a ⊕ c = b` —
/// which is the part the degeneracy arguments rely on.)
pub fn check_axioms<O: AggregateOp>(op: &O, samples: &[O::Value]) -> AxiomReport {
    let mut violations = Vec::new();
    let axioms = op.axioms();
    if axioms.associative() {
        for a in samples {
            for b in samples {
                for c in samples {
                    let left = op.combine(&op.combine(a, b), c);
                    let right = op.combine(a, &op.combine(b, c));
                    if left != right {
                        violations.push(format!("{}: associativity fails", op.name()));
                    }
                }
            }
        }
    }
    if axioms.has_identity() {
        match op.identity() {
            None => violations.push(format!("{}: A2 declared but no identity", op.name())),
            Some(e) => {
                for a in samples {
                    if op.combine(a, &e) != *a || op.combine(&e, a) != *a {
                        violations.push(format!("{}: identity fails", op.name()));
                    }
                }
            }
        }
    }
    if axioms.idempotent() {
        for a in samples {
            if op.combine(a, a) != *a {
                violations.push(format!("{}: idempotence fails", op.name()));
            }
        }
    }
    if axioms.commutative() {
        for a in samples {
            for b in samples {
                if op.combine(a, b) != op.combine(b, a) {
                    violations.push(format!("{}: commutativity fails", op.name()));
                }
            }
        }
    }
    if axioms.divisible() {
        // Uniqueness check: for each (a, b), at most one sample c solves
        // a ⊕ c = b and at most one sample d solves d ⊕ a = b.
        for a in samples {
            for b in samples {
                let right_solutions = samples.iter().filter(|c| op.combine(a, c) == *b).count();
                let left_solutions = samples.iter().filter(|d| op.combine(d, a) == *b).count();
                if right_solutions > 1 || left_solutions > 1 {
                    violations.push(format!("{}: divisibility uniqueness fails", op.name()));
                }
            }
        }
    }
    violations.sort();
    violations.dedup();
    AxiomReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_axioms_hold_for_integer_ops() {
        let ints = [-7i64, -1, 0, 1, 2, 5];
        assert!(check_axioms(&MaxOp, &ints).ok());
        assert!(check_axioms(&MinOp, &ints).ok());
        assert!(check_axioms(&SumOp, &ints).ok());
        assert!(check_axioms(&ProductOp, &ints).ok());
        let uints = [0u64, 1, 2, 9];
        assert!(check_axioms(&CountOp, &uints).ok());
        assert!(check_axioms(&XorOp, &uints).ok());
        assert!(check_axioms(&BoolOrOp, &[false, true]).ok());
    }

    #[test]
    fn topk_axioms_hold() {
        let op = TopKOp { k: 3 };
        let samples = [
            KList::from_items(3, [1i64, 5, 9]),
            KList::from_items(3, [2i64, 5]),
            KList::empty(3),
            KList::from_items(3, [-4i64, 7, 7, 0]),
        ];
        assert!(check_axioms(&op, &samples).ok());
    }

    #[test]
    fn bloom_union_axioms_hold() {
        let op = BloomUnionOp {
            m_bits: 128,
            hashes: 3,
        };
        let mut a = BloomFilter::new(128, 3);
        a.insert(1);
        let mut b = BloomFilter::new(128, 3);
        b.insert(2);
        b.insert(3);
        let samples = [a, b, BloomFilter::new(128, 3)];
        assert!(check_axioms(&op, &samples).ok());
    }

    #[test]
    fn harness_catches_false_declarations() {
        /// Subtraction claiming to be a commutative semigroup.
        struct BadOp;
        impl AggregateOp for BadOp {
            type Value = i64;
            fn name(&self) -> &'static str {
                "sub"
            }
            fn axioms(&self) -> AxiomSet {
                AxiomSet::A1.with(AxiomSet::A4)
            }
            fn combine(&self, a: &i64, b: &i64) -> i64 {
                a - b
            }
        }
        let report = check_axioms(&BadOp, &[0, 1, 2]);
        assert!(!report.ok());
        assert!(report.violations.iter().any(|v| v.contains("assoc")));
        assert!(report.violations.iter().any(|v| v.contains("commut")));
    }

    #[test]
    fn harness_catches_missing_identity() {
        struct NoIdOp;
        impl AggregateOp for NoIdOp {
            type Value = i64;
            fn name(&self) -> &'static str {
                "no-id"
            }
            fn axioms(&self) -> AxiomSet {
                AxiomSet::A2
            }
            fn combine(&self, a: &i64, _b: &i64) -> i64 {
                *a
            }
        }
        let report = check_axioms(&NoIdOp, &[1]);
        assert!(!report.ok());
    }

    #[test]
    fn max_is_not_divisible() {
        // Sanity: max declares no A5, and indeed many c solve
        // max(5, c) = 5 — the uniqueness check would fail if declared.
        struct MaxClaimingA5;
        impl AggregateOp for MaxClaimingA5 {
            type Value = i64;
            fn name(&self) -> &'static str {
                "max-a5"
            }
            fn axioms(&self) -> AxiomSet {
                AxiomSet::A5
            }
            fn combine(&self, a: &i64, b: &i64) -> i64 {
                *a.max(b)
            }
        }
        let report = check_axioms(&MaxClaimingA5, &[1, 2, 5]);
        assert!(!report.ok());
    }
}
