//! ⊕-expressions and A-equivalence.
//!
//! "Given the abstract operator ⊕, aggregation queries are represented by
//! ⊕-expressions which are obtained by starting out with a set of
//! variables X and closing off under the binary ⊕ operator." Two
//! expressions are *A-equivalent* iff their equality is provable from the
//! axiom set A. Equivalence is decided through per-axiom-set canonical
//! forms:
//!
//! | axioms              | canonical form                      |
//! |---------------------|-------------------------------------|
//! | degenerate (Fig 5 O(1) rows) | the single trivial value   |
//! | A1 + A3 + A4        | the *set* of variables (Lemma 1)    |
//! | A1 + A4             | the multiset of variables           |
//! | A1 + A3             | the free band's exact normal form ([`super::band`]) |
//! | A1                  | the flattened variable sequence |
//! | otherwise           | the expression tree, children sorted under A4 and doubled nodes collapsed under A3 |

use std::collections::BTreeMap;
use std::fmt;

use super::AxiomSet;

/// An ⊕-expression over variables `x0, x1, …`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A variable (an advertiser's bid in the paper's setting).
    Var(usize),
    /// An application of the binary operator.
    Op(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for `a ⊕ b`.
    pub fn op(a: Expr, b: Expr) -> Expr {
        Expr::Op(Box::new(a), Box::new(b))
    }

    /// The right-associated chain `x_0 ⊕ (x_1 ⊕ (… ⊕ x_k))` over the
    /// given variables — the paper's convention for writing `⊕_{i∈I} b_i`.
    ///
    /// # Panics
    /// Panics on an empty variable list (no identity to fall back on).
    pub fn chain(vars: &[usize]) -> Expr {
        assert!(!vars.is_empty(), "cannot build an empty ⊕-expression");
        let mut it = vars.iter().rev();
        let mut acc = Expr::Var(*it.next().unwrap());
        for &v in it {
            acc = Expr::op(Expr::Var(v), acc);
        }
        acc
    }

    /// All variables, in occurrence (in-order) sequence.
    pub fn var_sequence(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Op(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The *set* of variables mentioned — Lemma 1's canonical object for
    /// the semilattice case.
    pub fn var_set(&self) -> Vec<usize> {
        let mut v = self.var_sequence();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of ⊕ applications.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Var(_) => 0,
            Expr::Op(a, b) => 1 + a.op_count() + b.op_count(),
        }
    }

    /// The canonical key of this expression under the axiom set.
    pub fn canon_key(&self, axioms: AxiomSet) -> CanonKey {
        if axioms.is_degenerate() {
            return CanonKey::Trivial;
        }
        if axioms.associative() {
            if axioms.commutative() {
                if axioms.idempotent() {
                    CanonKey::Set(self.var_set())
                } else {
                    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
                    for v in self.var_sequence() {
                        *counts.entry(v).or_insert(0) += 1;
                    }
                    CanonKey::Multiset(counts.into_iter().collect())
                }
            } else if axioms.idempotent() {
                // Band: the free idempotent semigroup's word problem,
                // solved exactly by the Green's-relations normal form.
                CanonKey::Band(super::band::band_normal_form(&self.var_sequence()))
            } else {
                CanonKey::Seq(self.var_sequence())
            }
        } else {
            CanonKey::Tree(self.canon_tree(axioms))
        }
    }

    /// Canonical tree for non-associative axiom sets: children sorted
    /// under commutativity, `e ⊕ e` collapsed under idempotence.
    fn canon_tree(&self, axioms: AxiomSet) -> CanonTree {
        match self {
            Expr::Var(v) => CanonTree::Var(*v),
            Expr::Op(a, b) => {
                let ca = a.canon_tree(axioms);
                let cb = b.canon_tree(axioms);
                if axioms.idempotent() && ca == cb {
                    return ca;
                }
                let (l, r) = if axioms.commutative() && cb < ca {
                    (cb, ca)
                } else {
                    (ca, cb)
                };
                CanonTree::Op(Box::new(l), Box::new(r))
            }
        }
    }

    /// Decides A-equivalence through canonical keys; exact for every
    /// axiom combination (the band case uses the free band's
    /// Green's-relations normal form).
    pub fn a_equivalent(&self, other: &Expr, axioms: AxiomSet) -> bool {
        self.canon_key(axioms) == other.canon_key(axioms)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "x{v}"),
            Expr::Op(a, b) => write!(f, "({a} ⊕ {b})"),
        }
    }
}

/// Canonical tree used for non-associative algebras.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CanonTree {
    /// A variable leaf.
    Var(usize),
    /// A canonicalized operator node.
    Op(Box<CanonTree>, Box<CanonTree>),
}

/// The canonical key deciding A-equivalence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CanonKey {
    /// Degenerate algebra: all expressions are equal.
    Trivial,
    /// Semilattice: the set of variables (Lemma 1).
    Set(Vec<usize>),
    /// Commutative semigroup/monoid: the multiset `(var, count)`.
    Multiset(Vec<(usize, usize)>),
    /// Associative non-commutative non-idempotent: the flattened
    /// sequence.
    Seq(Vec<usize>),
    /// Band (associative + idempotent, non-commutative): the free band's
    /// exact normal form.
    Band(super::band::BandNf),
    /// Non-associative: the canonicalized tree.
    Tree(CanonTree),
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn x(v: usize) -> Expr {
        Expr::Var(v)
    }

    const SL: AxiomSet = AxiomSet::SEMILATTICE_WITH_IDENTITY;

    #[test]
    fn chain_builds_right_associated() {
        let e = Expr::chain(&[0, 1, 2]);
        assert_eq!(e.to_string(), "(x0 ⊕ (x1 ⊕ x2))");
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.var_sequence(), vec![0, 1, 2]);
    }

    /// Lemma 1: under the semilattice axioms, two ⊕-expressions are
    /// A-equivalent iff their variable *sets* are equal.
    #[test]
    fn lemma_1_semilattice_equivalence() {
        let e1 = Expr::op(Expr::op(x(0), x(1)), x(2));
        let e2 = Expr::op(x(2), Expr::op(x(1), Expr::op(x(0), x(0))));
        assert!(e1.a_equivalent(&e2, SL));
        let e3 = Expr::op(x(0), x(1));
        assert!(!e1.a_equivalent(&e3, SL));
    }

    #[test]
    fn commutative_without_idempotence_counts_multiplicity() {
        let ax = AxiomSet::A1.with(AxiomSet::A4); // e.g. sum
        let twice = Expr::op(x(0), x(0));
        let once = x(0);
        assert!(!twice.a_equivalent(&once, ax), "x+x ≠ x for sums");
        let ab = Expr::op(x(0), x(1));
        let ba = Expr::op(x(1), x(0));
        assert!(ab.a_equivalent(&ba, ax));
        // But under idempotence they merge.
        assert!(twice.a_equivalent(&once, SL));
    }

    #[test]
    fn associative_noncommutative_keeps_order() {
        let ax = AxiomSet::A1; // semigroup, e.g. string concatenation
        let ab = Expr::op(x(0), x(1));
        let ba = Expr::op(x(1), x(0));
        assert!(!ab.a_equivalent(&ba, ax));
        let left = Expr::op(Expr::op(x(0), x(1)), x(2));
        let right = Expr::op(x(0), Expr::op(x(1), x(2)));
        assert!(left.a_equivalent(&right, ax), "reassociation is free");
    }

    #[test]
    fn band_adjacent_collapse() {
        let ax = AxiomSet::A1.with(AxiomSet::A3); // band
        let e1 = Expr::op(x(0), Expr::op(x(0), x(1)));
        let e2 = Expr::op(x(0), x(1));
        assert!(e1.a_equivalent(&e2, ax), "x(xy) = xy by idempotence");
    }

    #[test]
    fn magma_is_purely_syntactic() {
        let ax = AxiomSet::NONE;
        let left = Expr::op(Expr::op(x(0), x(1)), x(2));
        let right = Expr::op(x(0), Expr::op(x(1), x(2)));
        assert!(!left.a_equivalent(&right, ax));
        assert!(left.a_equivalent(&left.clone(), ax));
    }

    #[test]
    fn commutative_magma_sorts_children() {
        let ax = AxiomSet::A4;
        let e1 = Expr::op(Expr::op(x(1), x(0)), x(2));
        let e2 = Expr::op(x(2), Expr::op(x(0), x(1)));
        assert!(e1.a_equivalent(&e2, ax));
        // Grouping still matters without associativity.
        let e3 = Expr::op(Expr::op(x(0), x(2)), x(1));
        assert!(!e1.a_equivalent(&e3, ax));
    }

    #[test]
    fn idempotent_magma_collapses_equal_children() {
        let ax = AxiomSet::A3;
        let e1 = Expr::op(Expr::op(x(0), x(1)), Expr::op(x(0), x(1)));
        let e2 = Expr::op(x(0), x(1));
        assert!(e1.a_equivalent(&e2, ax));
    }

    #[test]
    fn degenerate_identifies_everything() {
        let ax = AxiomSet::A1.with(AxiomSet::A3).with(AxiomSet::A5);
        assert!(x(0).a_equivalent(&Expr::op(x(1), x(2)), ax));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn chain_rejects_empty() {
        Expr::chain(&[]);
    }

    proptest! {
        /// Lemma 1 as a property: random expressions over ≤ 5 variables
        /// are semilattice-equivalent iff their var sets agree.
        #[test]
        fn lemma1_property(seq1 in proptest::collection::vec(0usize..5, 1..8),
                           seq2 in proptest::collection::vec(0usize..5, 1..8)) {
            let e1 = Expr::chain(&seq1);
            let e2 = Expr::chain(&seq2);
            let sets_equal = e1.var_set() == e2.var_set();
            prop_assert_eq!(e1.a_equivalent(&e2, SL), sets_equal);
        }

        /// Canonical keys are invariant under random reassociation for
        /// associative axiom sets.
        #[test]
        fn reassociation_invariance(vars in proptest::collection::vec(0usize..6, 2..8),
                                    split in 1usize..7) {
            let flat = Expr::chain(&vars);
            let s = split.min(vars.len() - 1);
            let left = Expr::chain(&vars[..s]);
            let right = Expr::chain(&vars[s..]);
            let grouped = Expr::op(left, right);
            for ax in [AxiomSet::A1, AxiomSet::A1.with(AxiomSet::A4), SL] {
                prop_assert!(flat.a_equivalent(&grouped, ax), "axioms {}", ax);
            }
        }
    }
}
