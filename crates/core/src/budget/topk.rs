//! Top-k winner determination under budget uncertainty.
//!
//! Winner determination needs the advertisers with the k highest values
//! of `b̂_i · c_i` — but each `b̂_i` is only available as interval bounds
//! that are expensive to tighten. This module runs the selection with
//! *lazy refinement*: every candidate starts at depth 0 (pure Hoeffding
//! bounds); only candidates whose intervals still overlap a selection or
//! ranking boundary get refined deeper, and candidates whose upper bound
//! falls below the k-th lower bound are eliminated outright — the same
//! "quickly eliminate unlikely contenders" scheduling idea the paper
//! credits to Ré–Dalvi–Suciu's multisimulation.
//!
//! Exact `b̂` values are computed only for the k winners afterwards (the
//! paper: "there are only k winning advertisers at this point, so the
//! amount of computation is a lot less"), via the budget-capped
//! convolution — polynomial in the outstanding-ad count, unlike interval
//! refinement whose cost doubles per depth level. The same convolution
//! finishes off candidates still contested at [`SNAP_DEPTH`]: past that
//! point one exact evaluation is cheaper than any further halving of the
//! interval, and without the cap a pair of near-tied heavy advertisers
//! (the common case late in a simulation, when winners have accumulated
//! many outstanding ads) forces `O(2^l)` work per auction.

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_auction::score::Score;
use ssa_stats::interval::Interval;

use super::{BudgetContext, ThrottledBidRefiner};

/// Refinement depth past which a contested candidate is finished off
/// with one exact convolution instead of ever-deeper interval bounds.
/// A bound evaluation at depth `d` costs `O(2^d)`; the capped
/// convolution is polynomial, so by this depth it is the cheaper move.
const SNAP_DEPTH: usize = 12;

/// One contender in an uncertain top-k selection.
#[derive(Debug, Clone)]
pub struct UncertainCandidate {
    /// The advertiser.
    pub advertiser: AdvertiserId,
    /// The advertiser-specific CTR factor `c_i` scaling the throttled bid
    /// into a score.
    pub factor: f64,
    /// The bound refiner over the advertiser's throttled bid.
    pub refiner: ThrottledBidRefiner,
    /// The budget context, kept for the exact-convolution evaluations
    /// (winners, and candidates still contested at [`SNAP_DEPTH`]).
    ctx: BudgetContext,
}

impl UncertainCandidate {
    /// Builds a candidate from a budget context.
    pub fn new(advertiser: AdvertiserId, factor: f64, ctx: &BudgetContext) -> Self {
        UncertainCandidate {
            advertiser,
            factor,
            refiner: ctx.refiner(),
            ctx: ctx.clone(),
        }
    }

    /// The exact throttled bid, via the budget-capped convolution.
    pub fn exact_bid(&self) -> Money {
        self.ctx.throttled_bid_exact()
    }

    fn score_bounds(&self, depth: usize) -> Interval {
        self.refiner.bounds(depth).scale(self.factor.max(0.0))
    }

    /// The exact score in the same space as [`score_bounds`] — money
    /// micro-units scaled by the factor, NOT currency units.
    fn exact_score_micros(&self) -> f64 {
        self.exact_bid().micros() as f64 * self.factor.max(0.0)
    }
}

/// Statistics from one uncertain top-k run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UncertainTopKStats {
    /// Total bound evaluations performed.
    pub bound_evaluations: u64,
    /// Exact throttled-bid computations performed (winners only).
    pub exact_evaluations: u64,
    /// The deepest refinement depth any candidate reached.
    pub max_depth_used: usize,
    /// Candidates eliminated without ever being refined past depth 0.
    pub eliminated_at_depth_zero: usize,
}

/// A ranked winner with its exact throttled score (computed only for
/// winners).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertainWinner {
    /// The advertiser.
    pub advertiser: AdvertiserId,
    /// The exact throttled bid `b̂_i` (before the CTR factor).
    pub bid: Money,
    /// The exact score `b̂_i · c_i`.
    pub score: Score,
}

/// Finds the ranked top-k candidates by `b̂_i · c_i` using lazy bound
/// refinement. Ties (exactly equal scores) break by advertiser id.
pub fn top_k_uncertain(
    candidates: &[UncertainCandidate],
    k: usize,
) -> (Vec<UncertainWinner>, UncertainTopKStats) {
    let mut stats = UncertainTopKStats::default();
    if k == 0 || candidates.is_empty() {
        return (Vec::new(), stats);
    }

    // Per-candidate state: current depth and score bounds.
    let mut depth: Vec<usize> = vec![0; candidates.len()];
    let mut bounds: Vec<Interval> = candidates
        .iter()
        .map(|c| {
            stats.bound_evaluations += 1;
            c.score_bounds(0)
        })
        .collect();
    let mut alive: Vec<usize> = (0..candidates.len()).collect();
    let mut was_refined: Vec<bool> = vec![false; candidates.len()];

    loop {
        // Order alive candidates by (lower bound desc, id asc).
        alive.sort_by(|&a, &b| {
            bounds[b]
                .lo()
                .total_cmp(&bounds[a].lo())
                .then(candidates[a].advertiser.cmp(&candidates[b].advertiser))
        });
        let kk = k.min(alive.len());

        // Eliminate candidates whose best case is below the k-th worst
        // case (they can never enter the top k).
        if alive.len() > kk {
            let kth_lo = bounds[alive[kk - 1]].lo();
            let before = alive.len();
            alive.retain(|&c| {
                let keep = bounds[c].hi() >= kth_lo;
                if !keep && !was_refined[c] {
                    stats.eliminated_at_depth_zero += 1;
                }
                keep
            });
            if alive.len() != before {
                continue;
            }
        }

        // Check the separation chain needed for a certain ranked top-k:
        // each of the first kk−1 strictly above its successor, and the
        // kk-th strictly above every survivor below it.
        let mut violators: Vec<usize> = Vec::new();
        for i in 0..kk {
            let upper_idx = alive[i];
            let lo = bounds[upper_idx].lo();
            let below = if i + 1 < kk {
                &alive[i + 1..i + 2]
            } else {
                &alive[kk..]
            };
            for &lower_idx in below {
                let overlap = bounds[lower_idx].hi() >= lo
                    && !(bounds[upper_idx].is_exact() && bounds[lower_idx].is_exact());
                if overlap {
                    violators.push(upper_idx);
                    violators.push(lower_idx);
                }
            }
        }
        violators.sort_unstable();
        violators.dedup();
        // Refine violators that still can be refined; a violator already
        // at the depth cap collapses to its exact convolution value
        // instead. Exact-tied pairs are excluded from the violator set
        // above, so every violator pair has at least one member that
        // deepens or snaps and the loop always makes progress.
        for &c in &violators {
            let cap = candidates[c].refiner.max_depth().min(SNAP_DEPTH);
            if depth[c] < cap {
                depth[c] += 1;
                was_refined[c] = true;
                bounds[c] = candidates[c].score_bounds(depth[c]);
                stats.bound_evaluations += 1;
                stats.max_depth_used = stats.max_depth_used.max(depth[c]);
            } else if !bounds[c].is_exact() {
                bounds[c] = Interval::exact(candidates[c].exact_score_micros());
                was_refined[c] = true;
                stats.exact_evaluations += 1;
            }
        }
        if violators.is_empty() {
            break;
        }
    }

    // The loop exits only when the first kk alive candidates (by lower
    // bound) are pairwise separated from their successors — i.e. that
    // prefix IS the ranked top-k, exact ties resolved by id through the
    // sort. Exact bids are then computed for the winners.
    let kk = k.min(alive.len());
    let winners = alive[..kk]
        .iter()
        .map(|&c| {
            let exact = candidates[c].exact_bid();
            stats.exact_evaluations += 1;
            UncertainWinner {
                advertiser: candidates[c].advertiser,
                bid: exact,
                score: Score::new(exact.to_f64() * candidates[c].factor.max(0.0)),
            }
        })
        .filter(|w| !w.score.is_zero())
        .collect();
    (winners, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_auction::money::Money;

    use crate::budget::OutstandingAd;

    fn ctx(bid_units: f64, budget_units: f64, m: u64, outstanding: &[(f64, f64)]) -> BudgetContext {
        BudgetContext {
            bid: Money::from_f64(bid_units),
            remaining_budget: Money::from_f64(budget_units),
            auctions_in_round: m,
            outstanding: outstanding
                .iter()
                .map(|&(p, c)| OutstandingAd::new(Money::from_f64(p), c))
                .collect(),
        }
    }

    fn cand(id: u32, factor: f64, c: &BudgetContext) -> UncertainCandidate {
        UncertainCandidate::new(AdvertiserId(id), factor, c)
    }

    /// Naive reference: exact throttled scores, full sort.
    fn naive(cands: &[UncertainCandidate], k: usize) -> Vec<AdvertiserId> {
        let mut scored: Vec<(AdvertiserId, f64)> = cands
            .iter()
            .map(|c| (c.advertiser, c.exact_bid().to_f64() * c.factor.max(0.0)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .take(k)
            .map(|(a, _)| a)
            .collect()
    }

    #[test]
    fn selects_and_ranks_clear_winners() {
        let candidates = vec![
            cand(0, 1.0, &ctx(5.0, 1000.0, 1, &[])), // score 5
            cand(1, 1.0, &ctx(1.0, 1000.0, 1, &[])), // score 1
            cand(2, 2.0, &ctx(2.0, 1000.0, 1, &[])), // score 4
            cand(3, 1.0, &ctx(0.5, 1000.0, 1, &[])), // score 0.5
        ];
        let (winners, stats) = top_k_uncertain(&candidates, 2);
        let ids: Vec<u32> = winners.iter().map(|w| w.advertiser.0).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(stats.max_depth_used, 0, "certain bids need no refinement");
        assert_eq!(
            winners[0].bid,
            Money::from_f64(5.0),
            "winners carry their exact throttled bid"
        );
        assert_eq!(stats.exact_evaluations, 2, "one exact pass per winner");
    }

    #[test]
    fn budget_pressure_reorders_winners() {
        // Advertiser 0 bids more but is nearly broke with a pending debt;
        // advertiser 1 overtakes after throttling.
        let a0 = ctx(5.0, 2.0, 1, &[(1.9, 0.99)]); // b̂ ≈ 0.12
        let a1 = ctx(3.0, 1000.0, 1, &[]); // b̂ = 3
        let candidates = vec![cand(0, 1.0, &a0), cand(1, 1.0, &a1)];
        let (winners, _) = top_k_uncertain(&candidates, 1);
        assert_eq!(winners[0].advertiser, AdvertiserId(1));
    }

    #[test]
    fn zero_score_candidates_are_dropped() {
        let candidates = vec![
            cand(0, 1.0, &ctx(2.0, 0.0, 1, &[])),  // broke
            cand(1, 0.0, &ctx(2.0, 10.0, 1, &[])), // zero factor
            cand(2, 1.0, &ctx(2.0, 10.0, 1, &[])),
        ];
        let (winners, _) = top_k_uncertain(&candidates, 3);
        assert_eq!(winners.len(), 1);
        assert_eq!(winners[0].advertiser, AdvertiserId(2));
    }

    #[test]
    fn far_apart_candidates_eliminate_cheaply() {
        // 1 strong candidate, many weak ones with uncertainty: the weak
        // ones must be eliminated without deep refinement.
        let mut candidates = vec![cand(0, 2.0, &ctx(9.0, 1000.0, 1, &[]))];
        for i in 1..12 {
            candidates.push(cand(i, 0.1, &ctx(1.0, 2.0, 1, &[(1.0, 0.5), (0.5, 0.5)])));
        }
        let (winners, stats) = top_k_uncertain(&candidates, 1);
        assert_eq!(winners[0].advertiser, AdvertiserId(0));
        assert!(
            stats.eliminated_at_depth_zero >= 10,
            "weak candidates should fall at depth 0, got {}",
            stats.eliminated_at_depth_zero
        );
    }

    #[test]
    fn empty_and_zero_k() {
        let (w, _) = top_k_uncertain(&[], 3);
        assert!(w.is_empty());
        let candidates = vec![cand(0, 1.0, &ctx(1.0, 10.0, 1, &[]))];
        let (w, _) = top_k_uncertain(&candidates, 0);
        assert!(w.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Lazy selection returns exactly the naive exact-computation
        /// ranking.
        #[test]
        fn lazy_matches_naive(
            specs in proptest::collection::vec(
                (1u64..8, 1u64..16, 0usize..4), 1..8),
            factors in proptest::collection::vec(1u32..30, 8),
            prices in proptest::collection::vec(1u64..6, 4),
            probs in proptest::collection::vec(0.1f64..=0.9, 4),
            k in 1usize..4,
        ) {
            let candidates: Vec<UncertainCandidate> = specs
                .iter()
                .enumerate()
                .map(|(i, &(bid, budget, n_out))| {
                    let outs: Vec<(f64, f64)> = (0..n_out)
                        .map(|j| (prices[j] as f64, probs[j]))
                        .collect();
                    cand(
                        i as u32,
                        factors[i] as f64 / 10.0,
                        &ctx(bid as f64, budget as f64, 2, &outs),
                    )
                })
                .collect();
            let (winners, _) = top_k_uncertain(&candidates, k);
            let got: Vec<AdvertiserId> =
                winners.iter().map(|w| w.advertiser).collect();
            let want = naive(&candidates, k);
            prop_assert_eq!(got, want);
        }
    }
}
