//! Budget uncertainty and throttled bids (Section IV).
//!
//! An advertiser's remaining budget is uncertain while displayed ads
//! await clicks. With remaining budget `β`, per-click bid `b`, `m`
//! auctions this round, and outstanding debt `S = Σ X_j` (ad `j` pays
//! `π_j` with probability `ctr_j`), the paper's *throttled bid* is
//!
//! ```text
//! b̂ = E( min(b, max(0, β − S) / m) )
//!   = E( min(m·b, β − min(β, S)) ) / m
//! ```
//!
//! [`BudgetContext::throttled_bid_exact`] computes it exactly via the
//! capped convolution (`O(min(2^l, β))`, Section IV-B);
//! [`ThrottledBidRefiner`] produces interval bounds at increasing
//! expansion depths using the decomposition
//!
//! ```text
//! b̂ = b·Pr(S < β − m·b) + (1/m)·E((β − S)·1{β − m·b ≤ S < β})
//! ```
//!
//! so that *comparisons* between advertisers resolve without exact
//! computation ("we do not need the precise values of b̂; we simply need
//! the ability to compare"). [`compare_throttled`] escalates depth until
//! the intervals separate; [`topk`] runs whole-auction winner
//! determination on those lazily refined bounds.

pub mod domain;
pub mod topk;

use std::cmp::Ordering;

use ssa_auction::money::Money;
use ssa_stats::bernoulli_sum::{BernoulliSum, Term};
use ssa_stats::hoeffding::Clamp;
use ssa_stats::interval::Interval;
use ssa_stats::refine::Refiner;

/// One displayed-but-unclicked ad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutstandingAd {
    /// The price `π_j` that will be charged if the click lands.
    pub price: Money,
    /// The residual probability `ctr_j` of the click landing.
    pub click_probability: f64,
}

impl OutstandingAd {
    /// Creates an outstanding ad (probability clamped to `[0,1]`).
    pub fn new(price: Money, click_probability: f64) -> Self {
        OutstandingAd {
            price,
            click_probability: click_probability.clamp(0.0, 1.0),
        }
    }
}

/// Everything needed to throttle one advertiser's bid for one round.
#[derive(Debug, Clone)]
pub struct BudgetContext {
    /// The advertiser's stated per-click bid `b_i`.
    pub bid: Money,
    /// Remaining budget `β_i` (daily budget minus already-settled
    /// payments).
    pub remaining_budget: Money,
    /// The number of auctions `m_i` the advertiser takes part in this
    /// round.
    pub auctions_in_round: u64,
    /// The outstanding ads awaiting clicks.
    pub outstanding: Vec<OutstandingAd>,
}

impl BudgetContext {
    /// The debt variable `S_l` as a Bernoulli sum over money micro-units.
    pub fn debt_sum(&self) -> BernoulliSum {
        BernoulliSum::new(
            self.outstanding
                .iter()
                .map(|ad| Term::new(ad.price.micros(), ad.click_probability))
                .collect(),
        )
    }

    /// The certain-worst-case debt `ω_l = Σ π_j`.
    pub fn worst_case_debt(&self) -> Money {
        self.outstanding.iter().map(|ad| ad.price).sum()
    }

    /// Fast path: when even the worst case leaves room for full bids
    /// (`ω ≤ β − m·b`), the throttled bid is the stated bid.
    pub fn is_unconstrained(&self) -> bool {
        let m = self.auctions_in_round.max(1);
        let need = Money::from_micros(self.bid.micros().saturating_mul(m));
        self.worst_case_debt()
            .checked_add(need)
            .is_some_and(|total| total <= self.remaining_budget)
    }

    /// The exact throttled bid `E(min(m·b, β − min(β, S)))/m`, via the
    /// budget-capped convolution.
    pub fn throttled_bid_exact(&self) -> Money {
        let m = self.auctions_in_round.max(1);
        if self.bid.is_zero() || self.remaining_budget.is_zero() {
            return Money::ZERO;
        }
        if self.is_unconstrained() {
            return self.bid;
        }
        let beta = self.remaining_budget.micros();
        let mb = self.bid.micros().saturating_mul(m);
        let dist = self.debt_sum().distribution_capped(beta);
        let expectation = dist.expectation_of(|s_capped| {
            let headroom = beta - s_capped; // s_capped ≤ beta by the cap
            mb.min(headroom) as f64
        });
        Money::from_micros((expectation / m as f64).round() as u64)
    }

    /// A lazy bound refiner for this context.
    pub fn refiner(&self) -> ThrottledBidRefiner {
        ThrottledBidRefiner::new(self)
    }
}

/// Interval bounds on a throttled bid, tightened by expanding outstanding
/// ads largest-price-first (Section IV-B).
#[derive(Debug, Clone)]
pub struct ThrottledBidRefiner {
    bid_micros: f64,
    beta_micros: f64,
    m: f64,
    refiner: Refiner,
    max_depth: usize,
    exact_hint: Option<Money>,
}

impl ThrottledBidRefiner {
    fn new(ctx: &BudgetContext) -> Self {
        let m = ctx.auctions_in_round.max(1);
        let exact_hint = if ctx.bid.is_zero() || ctx.remaining_budget.is_zero() {
            Some(Money::ZERO)
        } else if ctx.is_unconstrained() {
            Some(ctx.bid)
        } else {
            None
        };
        let sum = ctx.debt_sum();
        let max_depth = sum.len();
        ThrottledBidRefiner {
            bid_micros: ctx.bid.micros() as f64,
            beta_micros: ctx.remaining_budget.micros() as f64,
            m: m as f64,
            refiner: Refiner::new(sum, Clamp::Sound),
            max_depth,
            exact_hint,
        }
    }

    /// The depth at which bounds become exact.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Bounds on the throttled bid (in money micro-units) at the given
    /// expansion depth.
    pub fn bounds(&self, depth: usize) -> Interval {
        self.bounds_costed(depth).0
    }

    /// Like [`ThrottledBidRefiner::bounds`], also reporting the number of
    /// elementary bound evaluations (recursion leaves) the computation
    /// cost — the work metric of the E8 experiment.
    pub fn bounds_costed(&self, depth: usize) -> (Interval, u64) {
        if let Some(exact) = self.exact_hint {
            return (Interval::exact(exact.micros() as f64), 0);
        }
        let b = self.bid_micros;
        let beta = self.beta_micros;
        let m = self.m;
        let x = beta - m * b; // may be negative: full bid never affordable
        let t1 = self.refiner.pr_less_costed(x, depth);
        let term1 = t1.interval.scale(b);
        let r_lo = self.refiner.pr_less_costed(x, depth);
        let r_hi = self.refiner.pr_less_costed(beta, depth);
        let range = ssa_stats::hoeffding::pr_range_from_cdf(r_lo.interval, r_hi.interval);
        let mom = self.refiner.truncated_moment_costed(x, beta, depth);
        // (β·Pr(range) − E[S·1{range}]) / m, kept sound under interval
        // subtraction, then clamped into the feasible [0, b].
        let term2 = range.scale(beta).sub(mom.interval).scale(1.0 / m);
        let leaves = t1.leaves + r_lo.leaves + r_hi.leaves + mom.leaves;
        (term1.add(term2).clamp(0.0, b), leaves)
    }

    /// The exact throttled bid via full-depth bounds.
    pub fn exact(&self) -> Money {
        if let Some(exact) = self.exact_hint {
            return exact;
        }
        let b = self.bounds(self.max_depth);
        debug_assert!(b.width() < 1.0, "full depth must pin the value");
        Money::from_micros(b.midpoint().round().max(0.0) as u64)
    }
}

/// The outcome of a bound-based comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparisonOutcome {
    /// The resolved ordering of the two throttled bids.
    pub ordering: Ordering,
    /// The deepest expansion level needed.
    pub depth_used: usize,
}

/// Compares two throttled bids by successively tightening both bounds
/// until they separate (or both are exact). This is the paper's
/// winner-determination primitive: "we use Hoeffding bounds to compute
/// successively tighter upper and lower bounds … until the upper bound
/// is lower than the lower bound for the other".
pub fn compare_throttled(a: &ThrottledBidRefiner, b: &ThrottledBidRefiner) -> ComparisonOutcome {
    let max_depth = a.max_depth().max(b.max_depth());
    for depth in 0..=max_depth {
        let ia = a.bounds(depth);
        let ib = b.bounds(depth);
        if ia.strictly_below(ib) {
            return ComparisonOutcome {
                ordering: Ordering::Less,
                depth_used: depth,
            };
        }
        if ib.strictly_below(ia) {
            return ComparisonOutcome {
                ordering: Ordering::Greater,
                depth_used: depth,
            };
        }
        if ia.is_exact() && ib.is_exact() {
            return ComparisonOutcome {
                ordering: ia.midpoint().total_cmp(&ib.midpoint()),
                depth_used: depth,
            };
        }
    }
    // Full depth reached: both bounds are exact (width below one micro).
    let ia = a.bounds(max_depth);
    let ib = b.bounds(max_depth);
    ComparisonOutcome {
        ordering: ia.midpoint().total_cmp(&ib.midpoint()),
        depth_used: max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(bid_units: f64, budget_units: f64, m: u64, outstanding: &[(f64, f64)]) -> BudgetContext {
        BudgetContext {
            bid: Money::from_f64(bid_units),
            remaining_budget: Money::from_f64(budget_units),
            auctions_in_round: m,
            outstanding: outstanding
                .iter()
                .map(|&(p, c)| OutstandingAd::new(Money::from_f64(p), c))
                .collect(),
        }
    }

    #[test]
    fn unconstrained_bids_pass_through() {
        // Huge budget: b̂ = b even with outstanding ads.
        let c = ctx(1.0, 1000.0, 3, &[(2.0, 0.5), (3.0, 0.9)]);
        assert!(c.is_unconstrained());
        assert_eq!(c.throttled_bid_exact(), c.bid);
        assert_eq!(c.refiner().exact(), c.bid);
    }

    #[test]
    fn no_outstanding_ads_matches_closed_form() {
        // The paper's warm-up: b̂ = min(b, β/m).
        let c = ctx(2.0, 3.0, 4, &[]);
        let expected = Money::from_f64(0.75);
        assert_eq!(c.throttled_bid_exact(), expected);
        assert_eq!(c.refiner().exact(), expected);
        // And when budget suffices, the stated bid.
        let c = ctx(2.0, 100.0, 4, &[]);
        assert_eq!(c.throttled_bid_exact(), Money::from_f64(2.0));
    }

    #[test]
    fn exhausted_budget_bids_zero() {
        let c = ctx(2.0, 0.0, 1, &[(1.0, 0.5)]);
        assert_eq!(c.throttled_bid_exact(), Money::ZERO);
        assert_eq!(c.refiner().exact(), Money::ZERO);
    }

    #[test]
    fn hand_computed_two_outcomes() {
        // β=10, b=4, m=1, one outstanding ad: π=8 w.p. 0.5.
        // S=0 (p .5): min(4, 10)/1 = 4. S=8 (p .5): min(4, 2) = 2.
        // b̂ = 3.
        let c = ctx(4.0, 10.0, 1, &[(8.0, 0.5)]);
        assert_eq!(c.throttled_bid_exact(), Money::from_f64(3.0));
    }

    #[test]
    fn certain_debt_reduces_headroom_deterministically() {
        // π=6 w.p. 1: β−S = 4 < b·m = 5 → b̂ = 4/1.
        let c = ctx(5.0, 10.0, 1, &[(6.0, 1.0)]);
        assert_eq!(c.throttled_bid_exact(), Money::from_f64(4.0));
    }

    #[test]
    fn bounds_tighten_to_exact() {
        let c = ctx(3.0, 10.0, 2, &[(4.0, 0.5), (3.0, 0.25), (2.0, 0.8)]);
        let exact = c.throttled_bid_exact().micros() as f64;
        let r = c.refiner();
        let mut prev_width = f64::INFINITY;
        for depth in 0..=r.max_depth() {
            let b = r.bounds(depth);
            assert!(
                b.lo() - 1.0 <= exact && exact <= b.hi() + 1.0,
                "depth {depth}: exact {exact} outside [{}, {}]",
                b.lo(),
                b.hi()
            );
            assert!(b.width() <= prev_width + 1e-6, "bounds must not widen");
            prev_width = b.width();
        }
        assert!(prev_width < 1.0, "full depth pins the value");
        assert_eq!(r.exact(), c.throttled_bid_exact());
    }

    #[test]
    fn comparison_resolves_early_when_far_apart() {
        // Rich advertiser vs nearly broke one: depth 0 should suffice.
        let rich = ctx(5.0, 1000.0, 2, &[(1.0, 0.5)]).refiner();
        let broke = ctx(5.0, 1.0, 2, &[(1.0, 0.9)]).refiner();
        let out = compare_throttled(&broke, &rich);
        assert_eq!(out.ordering, Ordering::Less);
        assert_eq!(out.depth_used, 0, "trivial bounds must suffice");
    }

    #[test]
    fn comparison_of_identical_contexts_is_equal() {
        let a = ctx(2.0, 5.0, 2, &[(3.0, 0.5), (1.0, 0.25)]).refiner();
        let b = ctx(2.0, 5.0, 2, &[(3.0, 0.5), (1.0, 0.25)]).refiner();
        let out = compare_throttled(&a, &b);
        assert_eq!(out.ordering, Ordering::Equal);
    }

    #[test]
    fn close_contenders_need_deeper_refinement() {
        let a = ctx(3.0, 7.0, 1, &[(4.0, 0.5), (2.0, 0.5), (1.0, 0.5)]);
        let b = ctx(3.0, 7.2, 1, &[(4.0, 0.5), (2.0, 0.5), (1.0, 0.5)]);
        let out = compare_throttled(&a.refiner(), &b.refiner());
        // Exact values: identical structure, slightly more budget for b.
        assert_eq!(out.ordering, Ordering::Less);
        assert!(out.depth_used > 0, "tight contest should need refinement");
        // Sanity against exact computation.
        assert!(a.throttled_bid_exact() < b.throttled_bid_exact());
    }

    proptest! {
        /// Bounds contain the exact throttled bid at every depth, and the
        /// refiner's exact value agrees with the convolution (±1 micro
        /// rounding).
        #[test]
        fn bounds_sound_and_exact_agrees(
            bid in 1u64..8,
            budget in 0u64..20,
            m in 1u64..4,
            prices in proptest::collection::vec(1u64..10, 0..5),
            probs in proptest::collection::vec(0.0f64..=1.0, 5),
        ) {
            let outstanding: Vec<(f64, f64)> = prices
                .iter()
                .zip(&probs)
                .map(|(&p, &c)| (p as f64, c))
                .collect();
            let c = ctx(bid as f64, budget as f64, m, &outstanding);
            let exact = c.throttled_bid_exact().micros() as f64;
            let r = c.refiner();
            for depth in 0..=r.max_depth() {
                let b = r.bounds(depth);
                prop_assert!(
                    b.lo() - 2.0 <= exact && exact <= b.hi() + 2.0,
                    "depth {depth}: exact {exact} outside [{}, {}]",
                    b.lo(), b.hi()
                );
            }
            let via_bounds = r.exact().micros() as i64;
            prop_assert!((via_bounds - exact as i64).abs() <= 1);
        }

        /// compare_throttled agrees with the exact ordering.
        #[test]
        fn comparison_agrees_with_exact(
            bid_a in 1u64..6, budget_a in 1u64..15,
            bid_b in 1u64..6, budget_b in 1u64..15,
            prices in proptest::collection::vec(1u64..8, 0..4),
            probs in proptest::collection::vec(0.1f64..=0.9, 4),
        ) {
            let outs: Vec<(f64, f64)> = prices
                .iter()
                .zip(&probs)
                .map(|(&p, &c)| (p as f64, c))
                .collect();
            let a = ctx(bid_a as f64, budget_a as f64, 2, &outs);
            let b = ctx(bid_b as f64, budget_b as f64, 2, &outs);
            let out = compare_throttled(&a.refiner(), &b.refiner());
            let ea = a.throttled_bid_exact();
            let eb = b.throttled_bid_exact();
            // Allow Equal vs micro-level differences from rounding.
            if ea != eb && (ea.micros() as i64 - eb.micros() as i64).abs() > 2 {
                prop_assert_eq!(out.ordering, ea.cmp(&eb));
            }
        }
    }
}
