//! Per-shard budget-accounting domains and their reconciliation.
//!
//! Under sharded execution every shard prices its auctions against the
//! *pre-round* budget state — ledgers are immutable for the whole
//! throttle/winner-determination/pricing pipeline, exactly as they are
//! inside one round of the sequential executor. Each shard accumulates
//! its budget effects as a list of [`DisplayEvent`]s (one priced slot
//! each) instead of mutating ledgers directly; those event lists are the
//! shard's budget domain.
//!
//! **Reconciliation invariant.** The committing thread replays every
//! shard's events in *global phrase-occurrence order* (ascending phrase
//! id, slots in priced order within a phrase) — the exact order the
//! sequential executor displays winners in. Because the click
//! simulator's RNG is consumed once per event, in that order, and ledger
//! mutations (pending-ad pushes, then settlement) happen only during
//! this ordered replay, an advertiser whose interest set spans shards
//! accrues pending ads in the same order, with the same click fates and
//! the same charges, as under sequential execution — sharded and
//! sequential runs are bit-identical in outcomes, effective bids, and
//! budget snapshots for every shard count. The differential corpus'
//! `shard-exec` check pins this across seeds × policies × shard counts.

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;

/// One priced slot display, recorded by a shard's settle-prep stage and
/// committed against the ledgers by the ordered reconciliation replay.
/// Everything here is a pure function of the round's effective bids and
/// the pre-round workload state — crucially *not* of the RNG, which is
/// only consumed at commit time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisplayEvent {
    /// The advertiser whose ad was displayed.
    pub advertiser: AdvertiserId,
    /// The price charged if the click lands, already rounded down to the
    /// billing increment.
    pub price: Money,
    /// The displayed ad's click-through rate (phrase factor × slot
    /// factor, clamped to `[0, 1]`).
    pub display_ctr: f64,
}
