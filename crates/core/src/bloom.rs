//! A Bloom filter.
//!
//! The paper repeatedly names Bloom-filter union as an aggregation
//! operator in the semilattice class its hardness results cover ("our
//! results in this subsection apply to any meet or join operator, such as
//! min, max, Bloom filter unions, etc."). This is that substrate: a
//! fixed-geometry Bloom filter whose union is associative, commutative,
//! and idempotent with the empty filter as identity — exactly axioms
//! A1–A4.
//!
//! Hashing is double hashing over two independent 64-bit mixers (the
//! standard Kirsch–Mitzenmacher construction), dependency-free.

/// A Bloom filter over `u64` keys with fixed geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    hashes: u32,
}

/// 64-bit mix (splitmix64 finalizer) — the first hash. Crate-visible so
/// the lazy planner's single-word signature blooms reuse the same
/// double-hash family without carrying a full filter per node.
pub(crate) fn mix1(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A second, independent mix (murmur3 finalizer with different constants).
pub(crate) fn mix2(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl BloomFilter {
    /// An empty filter with `m_bits` bits and `hashes` hash functions.
    ///
    /// # Panics
    /// Panics if `m_bits == 0` or `hashes == 0`.
    pub fn new(m_bits: usize, hashes: u32) -> Self {
        assert!(m_bits > 0 && hashes > 0, "degenerate Bloom geometry");
        BloomFilter {
            bits: vec![0u64; m_bits.div_ceil(64)],
            m_bits,
            hashes,
        }
    }

    /// Geometry sized for `expected_items` at roughly
    /// `false_positive_rate`, using the standard formulas
    /// `m = −n ln p / (ln 2)²`, `k = (m/n) ln 2`.
    pub fn with_capacity(expected_items: usize, false_positive_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = false_positive_rate.clamp(1e-9, 0.5);
        let m = (-(n * p.ln()) / (2f64.ln().powi(2))).ceil().max(64.0) as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter::new(m, k)
    }

    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix1(key);
        let h2 = mix2(key) | 1; // odd stride
        let m = self.m_bits as u64;
        (0..self.hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
    }

    /// Membership test: false means definitely absent; true means
    /// probably present.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// The union (bitwise OR) of two filters — the semilattice ⊕.
    ///
    /// # Panics
    /// Panics on geometry mismatch (different universes).
    pub fn union(&self, other: &BloomFilter) -> BloomFilter {
        assert_eq!(self.m_bits, other.m_bits, "geometry mismatch");
        assert_eq!(self.hashes, other.hashes, "geometry mismatch");
        let bits = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| a | b)
            .collect();
        BloomFilter {
            bits,
            m_bits: self.m_bits,
            hashes: self.hashes,
        }
    }

    /// The intersection (bitwise AND) — also named by the paper's
    /// future-work aggregate list. Note intersected filters may report
    /// extra false positives relative to a filter built from the exact
    /// intersection.
    pub fn intersection(&self, other: &BloomFilter) -> BloomFilter {
        assert_eq!(self.m_bits, other.m_bits, "geometry mismatch");
        assert_eq!(self.hashes, other.hashes, "geometry mismatch");
        let bits = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| a & b)
            .collect();
        BloomFilter {
            bits,
            m_bits: self.m_bits,
            hashes: self.hashes,
        }
    }

    /// Overlap test without allocating: true iff the two filters share at
    /// least one set bit. `false` means the inserted key sets are
    /// *definitely* disjoint; `true` means they may intersect (subject to
    /// the usual false-positive rate). The lazy planner uses this as the
    /// first-stage prune on node signature overlap before the exact bitset
    /// intersection.
    ///
    /// # Panics
    /// Panics on geometry mismatch (different universes).
    pub fn intersects(&self, other: &BloomFilter) -> bool {
        assert_eq!(self.m_bits, other.m_bits, "geometry mismatch");
        assert_eq!(self.hashes, other.hashes, "geometry mismatch");
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits (diagnostic; drives fill-ratio estimates).
    pub fn popcount(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff no key was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(100, 0.01);
        for key in 0..100u64 {
            f.insert(key * 7919);
        }
        for key in 0..100u64 {
            assert!(f.contains(key * 7919));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        for key in 0..1000u64 {
            f.insert(key);
        }
        let fps = (1_000_000u64..1_010_000).filter(|&k| f.contains(k)).count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.05, "false positive rate {rate} too high");
    }

    #[test]
    fn union_is_semilattice() {
        let mut a = BloomFilter::new(256, 3);
        let mut b = BloomFilter::new(256, 3);
        let mut c = BloomFilter::new(256, 3);
        a.insert(1);
        b.insert(2);
        c.insert(3);
        // A1, A4, A3, A2.
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&a), a);
        let e = BloomFilter::new(256, 3);
        assert_eq!(a.union(&e), a);
    }

    #[test]
    fn union_preserves_membership() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(10);
        b.insert(20);
        let u = a.union(&b);
        assert!(u.contains(10) && u.contains(20));
    }

    #[test]
    fn intersection_keeps_common_keys() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        for k in [1u64, 2, 3] {
            a.insert(k);
        }
        for k in [3u64, 4, 5] {
            b.insert(k);
        }
        let i = a.intersection(&b);
        assert!(i.contains(3));
    }

    #[test]
    fn intersects_agrees_with_intersection_emptiness() {
        let mut a = BloomFilter::new(512, 4);
        let mut b = BloomFilter::new(512, 4);
        a.insert(1);
        b.insert(2);
        assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
        b.insert(1);
        assert!(a.intersects(&b));
        assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
        // Empty filters never intersect anything.
        let e = BloomFilter::new(512, 4);
        assert!(!e.intersects(&a) && !a.intersects(&e));
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn union_rejects_mismatch() {
        let _ = BloomFilter::new(64, 2).union(&BloomFilter::new(128, 2));
    }

    #[test]
    fn empty_detection() {
        let mut f = BloomFilter::new(64, 2);
        assert!(f.is_empty());
        f.insert(9);
        assert!(!f.is_empty());
        assert!(f.popcount() >= 1);
    }

    proptest! {
        /// Inserted keys are always found (no false negatives), under any
        /// geometry.
        #[test]
        fn never_false_negative(
            keys in proptest::collection::vec(any::<u64>(), 1..50),
            m in 64usize..1024,
            h in 1u32..8,
        ) {
            let mut f = BloomFilter::new(m, h);
            for &k in &keys {
                f.insert(k);
            }
            for &k in &keys {
                prop_assert!(f.contains(k));
            }
        }
    }
}
