#![warn(missing_docs)]

//! Shared winner determination for sponsored search auctions.
//!
//! This crate is the primary contribution of *Shared Winner Determination
//! in Sponsored Search Auctions* (Martin & Halpern, ICDE 2009), built on
//! the substrate crates of this workspace:
//!
//! * [`topk`] — the top-k list and its merge, the aggregation operator at
//!   the heart of Section II ("the binary function that takes in two
//!   k-lists and outputs a k-list of the top k elements of the union").
//! * [`bloom`] — a Bloom filter, the paper's other running example of a
//!   semilattice aggregation operator.
//! * [`algebra`] — the abstract aggregation framework: axioms A1–A5,
//!   ⊕-expressions, per-axiom-set canonical forms and A-equivalence
//!   (Lemma 1), and the algebra-class taxonomy of Figure 5.
//! * [`plan`] — shared aggregation plans (Section II): the A-plan DAG and
//!   its probabilistic cost model, fragment identification, the greedy
//!   set-cover-driven completion heuristic, a syntactic CSE planner (the
//!   non-associative baseline), an exact optimal planner for small
//!   instances, and the executable set-cover reductions behind Theorems 2
//!   and 3.
//! * [`sort`] — shared sorting (Section III): on-demand merge-sort
//!   networks with per-operator caches, the bottom-up greedy network
//!   planner, and the Threshold Algorithm driver.
//! * [`budget`] — budget uncertainty (Section IV): outstanding ads,
//!   throttled bids `b̂ᵢ = E(min(bᵢ, max(0, βᵢ − S)/mᵢ))` computed exactly
//!   or via refined Hoeffding bounds, comparison and top-k under
//!   uncertainty, and the naive-vs-throttled gaming demonstration.
//! * [`nonsep`] — the Section V integration: shared top-k plans driving
//!   the graph-pruning step of non-separable winner determination.
//! * [`engine`] — the round-based auction engine tying it together:
//!   batching, per-round shared evaluation, pricing, delayed clicks,
//!   budget settlement, and automated bidding programs.
//! * [`exec`] — the deterministic scoped-worker fan-out behind the
//!   engine's parallel round executor (`wd_threads`).

pub mod algebra;
pub mod bloom;
pub mod budget;
pub mod engine;
pub mod exec;
pub mod nonsep;
pub mod plan;
pub mod sort;
pub mod topk;

pub use plan::{DisjointPlanner, PlanDag, SharedPlanner};
pub use topk::KList;
