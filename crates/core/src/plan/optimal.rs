//! Exhaustive minimum-cost planning (small instances only).
//!
//! Theorem 2 shows min-cost A-plans are NP-hard to find, so any exact
//! planner is exponential; this one exists to (a) measure how close the
//! Section II-D heuristic gets on small instances (ablation E9) and (b)
//! exhibit the exponential scaling the Figure 5 NP-complete rows predict.
//!
//! The search is iterative-deepening DFS over *node collections*: a state
//! is the set of variable sets available; an action unions two existing
//! sets (the new set must fit inside some query — supersets of every query
//! are useless); the goal is every query's set being available. Action
//! count = total plan cost.

use std::collections::HashSet;

use ssa_setcover::BitSet;

use super::{PlanDag, PlanProblem};

/// Result of an exact search.
#[derive(Debug, Clone)]
pub struct OptimalPlan {
    /// The minimum total cost (number of internal nodes).
    pub total_cost: usize,
    /// The union steps, in order; replay with [`replay`] to obtain a
    /// `PlanDag`.
    pub steps: Vec<(BitSet, BitSet)>,
}

/// Search effort cap: number of DFS node expansions before giving up.
const DEFAULT_NODE_BUDGET: u64 = 50_000_000;

/// Finds a minimum-total-cost plan for the problem (search rates are
/// ignored: with all `sr_q = 1` expected cost equals total cost, which is
/// the setting of the paper's hardness results). Returns `None` if the
/// node budget is exhausted before the search completes.
pub fn optimal_plan(problem: &PlanProblem) -> Option<OptimalPlan> {
    optimal_plan_with_budget(problem, DEFAULT_NODE_BUDGET)
}

/// [`optimal_plan`] with an explicit node budget.
pub fn optimal_plan_with_budget(problem: &PlanProblem, budget: u64) -> Option<OptimalPlan> {
    let queries: Vec<BitSet> = dedup_queries(problem);
    // Lower bound: every non-variable query needs a node; upper bound:
    // build each query as its own chain.
    let base: usize = queries.iter().filter(|q| q.len() > 1).count();
    let naive: usize = queries.iter().map(|q| q.len().saturating_sub(1)).sum();
    let mut expansions = 0u64;
    for limit in base..=naive {
        let mut search = Search {
            queries: &queries,
            limit,
            expansions: &mut expansions,
            budget,
            visited: HashSet::new(),
            steps: Vec::new(),
        };
        let leaves: Vec<BitSet> = (0..problem.var_count)
            .map(|v| BitSet::singleton(problem.var_count, v))
            .collect();
        match search.dfs(leaves) {
            Outcome::Found(steps) => {
                return Some(OptimalPlan {
                    total_cost: limit,
                    steps,
                })
            }
            Outcome::Exhausted => return None,
            Outcome::NotFound => {}
        }
    }
    // naive bound is always achievable, so we must have returned.
    unreachable!("chain plans always reach the goal within the naive bound")
}

fn dedup_queries(problem: &PlanProblem) -> Vec<BitSet> {
    let mut out: Vec<BitSet> = Vec::new();
    for q in &problem.queries {
        let q = q.to_bitset();
        if !out.contains(&q) {
            out.push(q);
        }
    }
    out
}

enum Outcome {
    Found(Vec<(BitSet, BitSet)>),
    NotFound,
    Exhausted,
}

struct Search<'a> {
    queries: &'a [BitSet],
    limit: usize,
    expansions: &'a mut u64,
    budget: u64,
    visited: HashSet<Vec<BitSet>>,
    steps: Vec<(BitSet, BitSet)>,
}

impl Search<'_> {
    fn dfs(&mut self, available: Vec<BitSet>) -> Outcome {
        *self.expansions += 1;
        if *self.expansions > self.budget {
            return Outcome::Exhausted;
        }
        let missing: Vec<&BitSet> = self
            .queries
            .iter()
            .filter(|q| !available.contains(q))
            .collect();
        if missing.is_empty() {
            return Outcome::Found(self.steps.clone());
        }
        let used = self.steps.len();
        // Admissible bound: each missing query needs at least one more
        // node (its own).
        if used + missing.len() > self.limit {
            return Outcome::NotFound;
        }
        // Canonical state for memoization: internal sets, sorted.
        let mut key: Vec<BitSet> = available.clone();
        key.sort_by(|a, b| {
            a.iter()
                .collect::<Vec<_>>()
                .cmp(&b.iter().collect::<Vec<_>>())
        });
        if !self.visited.insert(key) {
            return Outcome::NotFound;
        }

        // Candidate unions, deduplicated.
        let mut seen: HashSet<BitSet> = HashSet::new();
        let mut exhausted = false;
        for i in 0..available.len() {
            for j in (i + 1)..available.len() {
                let w = available[i].union(&available[j]);
                if available.contains(&w) || seen.contains(&w) {
                    continue;
                }
                if !self.queries.iter().any(|q| w.is_subset(q)) {
                    continue;
                }
                seen.insert(w.clone());
                self.steps
                    .push((available[i].clone(), available[j].clone()));
                let mut next = available.clone();
                next.push(w);
                match self.dfs(next) {
                    Outcome::Found(steps) => return Outcome::Found(steps),
                    Outcome::Exhausted => exhausted = true,
                    Outcome::NotFound => {}
                }
                self.steps.pop();
                if exhausted {
                    return Outcome::Exhausted;
                }
            }
        }
        Outcome::NotFound
    }
}

/// Replays an optimal search result into a concrete [`PlanDag`], binding
/// the problem's queries.
pub fn replay(problem: &PlanProblem, optimal: &OptimalPlan) -> PlanDag {
    let mut plan = PlanDag::new(problem.var_count);
    for (a, b) in &optimal.steps {
        let ia = plan.node_for(a).expect("step operand exists");
        let ib = plan.node_for(b).expect("step operand exists");
        plan.merge(ia, ib);
    }
    for q in &problem.queries {
        plan.bind_query(q);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::greedy::SharedPlanner;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    #[test]
    fn single_query_needs_len_minus_one() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2, 3])], None);
        let opt = optimal_plan(&problem).unwrap();
        assert_eq!(opt.total_cost, 3);
        let plan = replay(&problem, &opt);
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(plan.total_cost(), 3);
    }

    #[test]
    fn shared_prefix_is_found() {
        // {0,1,2} and {0,1,3}: optimal shares {0,1}: cost 3 (not 4).
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])], None);
        let opt = optimal_plan(&problem).unwrap();
        assert_eq!(opt.total_cost, 3);
    }

    #[test]
    fn disjoint_queries_cannot_share() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1]), bs(4, &[2, 3])], None);
        let opt = optimal_plan(&problem).unwrap();
        assert_eq!(opt.total_cost, 2);
    }

    #[test]
    fn variable_queries_cost_nothing() {
        let problem = PlanProblem::new(3, vec![bs(3, &[0])], None);
        let opt = optimal_plan(&problem).unwrap();
        assert_eq!(opt.total_cost, 0);
    }

    #[test]
    fn heuristic_never_beats_optimal_and_often_matches() {
        // Small instance battery: heuristic cost >= optimal cost.
        let cases: Vec<Vec<BitSet>> = vec![
            vec![bs(6, &[0, 1, 2]), bs(6, &[1, 2, 3]), bs(6, &[2, 3, 4])],
            vec![bs(6, &[0, 1, 2, 3]), bs(6, &[0, 1]), bs(6, &[2, 3])],
            vec![
                bs(6, &[0, 1, 2, 3, 4, 5]),
                bs(6, &[0, 1, 2]),
                bs(6, &[3, 4, 5]),
            ],
            vec![bs(6, &[0, 2, 4]), bs(6, &[1, 3, 5])],
        ];
        for queries in cases {
            let problem = PlanProblem::new(6, queries, None);
            let opt = optimal_plan(&problem).unwrap();
            let heur = SharedPlanner::full().plan(&problem);
            assert!(
                heur.total_cost() >= opt.total_cost,
                "heuristic {} below optimal {} — optimality bug",
                heur.total_cost(),
                opt.total_cost
            );
        }
    }

    #[test]
    fn subsuming_structure_is_exploited() {
        // {0,1}, {0,1,2}, {0,1,2,3}: optimal is one chain, cost 3.
        let problem = PlanProblem::new(
            4,
            vec![bs(4, &[0, 1]), bs(4, &[0, 1, 2]), bs(4, &[0, 1, 2, 3])],
            None,
        );
        let opt = optimal_plan(&problem).unwrap();
        assert_eq!(opt.total_cost, 3);
        // And the heuristic finds it too.
        let heur = SharedPlanner::full().plan(&problem);
        assert_eq!(heur.total_cost(), 3);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let problem = PlanProblem::new(
            8,
            vec![
                bs(8, &[0, 1, 2, 3, 4]),
                bs(8, &[1, 2, 3, 4, 5]),
                bs(8, &[2, 3, 4, 5, 6]),
                bs(8, &[3, 4, 5, 6, 7]),
            ],
            None,
        );
        assert!(optimal_plan_with_budget(&problem, 10).is_none());
    }
}
