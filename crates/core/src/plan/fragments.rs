//! Stage 1 of the heuristic: fragment identification.
//!
//! "We group together all variables that occur in the same set of query
//! expressions. We associate with each variable a bit string of length m,
//! where the i-th bit indicates whether or not the variable occurs in the
//! i-th query expression. … These groups are equivalence classes of
//! variables and are called fragments [Krishnamurthy–Wu–Franklin]. Note
//! that even though there are 2^m possible fragments, only O(n) will be
//! non-empty. We can safely aggregate elements within a fragment since no
//! sharing occurs across fragments."
//!
//! Signatures are built by *inverting* the query sets — one pass over
//! `Σ_q |X_q|` sparse elements into a CSR of per-variable query lists —
//! rather than probing every query per variable. At a million advertisers
//! the old dense probe was O(n·m) regardless of interest density; the
//! inverted build is linear in the input size, which is the paper's own
//! running-time parameter.

use std::collections::HashMap;

use ssa_setcover::VarSet;

use super::{PlanDag, PlanProblem};

/// One fragment: a maximal group of variables sharing a query signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// The variables in the fragment.
    pub vars: VarSet,
    /// The query-membership signature (element `i` present iff the
    /// variables occur in query `i`).
    pub signature: VarSet,
}

/// The output of fragment identification.
#[derive(Debug, Clone)]
pub struct Fragments {
    /// Non-empty fragments, in deterministic order (by smallest member
    /// variable).
    pub fragments: Vec<Fragment>,
    /// `per_query[q]` = indices (into `fragments`) of the fragments that
    /// partition query `q`'s variable set.
    pub per_query: Vec<Vec<usize>>,
    /// `frag_of[v]` = index of the fragment containing variable `v`, or
    /// `u32::MAX` for variables occurring in no query. Stage 2's lazy
    /// completion uses this to jump from a node's minimum variable to
    /// the exact query signature governing which pools may absorb it.
    pub frag_of: Vec<u32>,
}

/// Groups variables into fragments in `O(Σ_q |X_q|)` expected time via an
/// inverted signature build plus hashed grouping.
///
/// Variables that occur in no query are dropped: they can never
/// contribute to any aggregate.
pub fn identify_fragments(problem: &PlanProblem) -> Fragments {
    let n = problem.var_count;
    let m = problem.query_count();
    // Invert: CSR of ascending query lists per variable. Queries are
    // visited in index order, so each variable's list is ascending.
    let mut counts = vec![0u32; n];
    for set in &problem.queries {
        for v in set.iter() {
            counts[v] += 1;
        }
    }
    let mut offsets = vec![0u32; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + counts[v];
    }
    let mut fill = offsets[..n].to_vec();
    let mut sig_qs = vec![0u32; offsets[n] as usize];
    for (q, set) in problem.queries.iter().enumerate() {
        for v in set.iter() {
            sig_qs[fill[v] as usize] = q as u32;
            fill[v] += 1;
        }
    }
    // Group variables by signature slice. Scanning variables in ascending
    // order makes first-encounter order equal to order-by-smallest-member,
    // the documented deterministic fragment order.
    let mut by_sig: HashMap<&[u32], usize> = HashMap::new();
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut sigs: Vec<&[u32]> = Vec::new();
    let mut frag_of = vec![u32::MAX; n];
    for v in 0..n {
        let sig = &sig_qs[offsets[v] as usize..offsets[v + 1] as usize];
        if sig.is_empty() {
            continue;
        }
        let idx = *by_sig.entry(sig).or_insert_with(|| {
            members.push(Vec::new());
            sigs.push(sig);
            members.len() - 1
        });
        members[idx].push(v as u32);
        frag_of[v] = idx as u32;
    }
    let fragments: Vec<Fragment> = members
        .iter()
        .zip(&sigs)
        .map(|(vars, sig)| Fragment {
            vars: VarSet::from_sorted(n, vars.clone()),
            signature: VarSet::from_sorted(m, sig.to_vec()),
        })
        .collect();
    // Fragments are ordered ascending by first member, so each query's
    // fragment list comes out ascending too.
    let mut per_query: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, sig) in sigs.iter().enumerate() {
        for &q in *sig {
            per_query[q as usize].push(i);
        }
    }
    Fragments {
        fragments,
        per_query,
        frag_of,
    }
}

/// Builds the stage-1 plan: every multi-variable fragment is aggregated by
/// a left-deep chain. Returns the plan plus, per query, the plan-node
/// indices of its fragments (the starting points for stage 2). Queries
/// that consist of a single fragment already have their node and are
/// *not* yet bound (binding happens when the planner finishes).
pub fn build_fragment_plan(problem: &PlanProblem) -> (PlanDag, Fragments, Vec<Vec<usize>>) {
    let fragments = identify_fragments(problem);
    let mut plan = PlanDag::new(problem.var_count);
    let fragment_nodes: Vec<usize> = fragments
        .fragments
        .iter()
        .map(|f| {
            let leaves: Vec<usize> = f.vars.iter().collect();
            plan.merge_chain(&leaves)
        })
        .collect();
    let per_query_nodes = fragments
        .per_query
        .iter()
        .map(|frs| frs.iter().map(|&f| fragment_nodes[f]).collect())
        .collect();
    (plan, fragments, per_query_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_setcover::BitSet;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    /// The hiking-boots example's structure in miniature: vars 0-1 in both
    /// queries, var 2 only in q0, var 3 only in q1, var 4 in neither.
    fn mini_problem() -> PlanProblem {
        PlanProblem::new(5, vec![bs(5, &[0, 1, 2]), bs(5, &[0, 1, 3])], None)
    }

    #[test]
    fn fragments_partition_by_signature() {
        let f = identify_fragments(&mini_problem());
        assert_eq!(f.fragments.len(), 3);
        let shared = &f.fragments[0];
        assert_eq!(shared.vars, bs(5, &[0, 1]));
        assert_eq!(shared.signature, bs(2, &[0, 1]));
        assert_eq!(f.fragments[1].vars, bs(5, &[2]));
        assert_eq!(f.fragments[1].signature, bs(2, &[0]));
        assert_eq!(f.fragments[2].vars, bs(5, &[3]));
        // Variable 4 occurs nowhere and is dropped.
        for frag in &f.fragments {
            assert!(!frag.vars.contains(4));
        }
        assert_eq!(f.frag_of, vec![0, 0, 1, 2, u32::MAX]);
    }

    #[test]
    fn per_query_fragments_partition_each_query() {
        let problem = mini_problem();
        let f = identify_fragments(&problem);
        for (q, frs) in f.per_query.iter().enumerate() {
            let mut union = VarSet::new(5);
            let mut total = 0;
            for &i in frs {
                union.union_with(&f.fragments[i].vars);
                total += f.fragments[i].vars.len();
            }
            assert_eq!(union, problem.queries[q], "query {q} union");
            assert_eq!(total, problem.queries[q].len(), "query {q} disjoint");
        }
    }

    #[test]
    fn fragment_plan_has_chain_costs() {
        let problem = mini_problem();
        let (plan, f, per_query_nodes) = build_fragment_plan(&problem);
        // One multi-var fragment of size 2 → 1 internal node; singleton
        // fragments reuse their leaves.
        assert_eq!(plan.total_cost(), 1);
        assert_eq!(f.fragments.len(), 3);
        assert!(plan.validate().is_ok());
        // Per-query nodes exist and union correctly.
        for (q, nodes) in per_query_nodes.iter().enumerate() {
            let mut union = VarSet::new(5);
            for &idx in nodes {
                union.union_with(&plan.vars(idx));
            }
            assert_eq!(union, problem.queries[q]);
        }
    }

    #[test]
    fn identical_queries_collapse_to_one_fragment() {
        let problem = PlanProblem::new(3, vec![bs(3, &[0, 1, 2]), bs(3, &[0, 1, 2])], None);
        let f = identify_fragments(&problem);
        assert_eq!(f.fragments.len(), 1);
        let (plan, _, _) = build_fragment_plan(&problem);
        // Chain of 3 vars = 2 nodes, shared by both queries.
        assert_eq!(plan.total_cost(), 2);
    }

    #[test]
    fn no_shared_variables_yields_per_query_fragments() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1]), bs(4, &[2, 3])], None);
        let f = identify_fragments(&problem);
        assert_eq!(f.fragments.len(), 2);
        assert_eq!(f.per_query[0], vec![0]);
        assert_eq!(f.per_query[1], vec![1]);
    }

    proptest! {
        /// Fragments always partition each query exactly, and every
        /// fragment's signature matches its variables' membership.
        #[test]
        fn fragments_are_a_partition(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..10, 1..8), 1..6),
        ) {
            let queries: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(10, s.iter().copied()))
                .collect();
            let problem = PlanProblem::new(10, queries.clone(), None);
            let f = identify_fragments(&problem);
            // Disjointness of fragments.
            for i in 0..f.fragments.len() {
                for j in (i + 1)..f.fragments.len() {
                    prop_assert!(f.fragments[i].vars.is_disjoint(&f.fragments[j].vars));
                }
            }
            // Partition per query, and frag_of agrees with membership.
            for (q, set) in queries.iter().enumerate() {
                let mut union = VarSet::new(10);
                for &i in &f.per_query[q] {
                    prop_assert!(f.fragments[i].vars.is_subset(set));
                    union.union_with(&f.fragments[i].vars);
                }
                prop_assert_eq!(&union, set);
            }
            for (i, frag) in f.fragments.iter().enumerate() {
                for v in frag.vars.iter() {
                    prop_assert_eq!(f.frag_of[v], i as u32);
                }
            }
        }
    }
}
