//! The probabilistic cost model.
//!
//! "A node is materialized in a given round if it is used to compute the
//! result for a bid phrase that occurs in that round. … the probability of
//! node v being materialized is `1 − Π_{q: v⇝q} (1 − sr_q)`. Thus, by
//! linearity of expectation, the total expected cost of a plan is
//! `Σ_v (1 − Π_{q: v⇝q} (1 − sr_q))`."

use super::{PlanDag, PlanProblem};
use ssa_setcover::VarSet;

/// The expected number of internal nodes materialized per round, under
/// independent Bernoulli query occurrence with the given search rates.
///
/// # Panics
/// Panics if `search_rates.len()` differs from the plan's query count.
pub fn expected_cost(plan: &PlanDag, search_rates: &[f64]) -> f64 {
    assert_eq!(
        search_rates.len(),
        plan.query_count(),
        "one search rate per bound query"
    );
    let reach = plan.reach_sets();
    let mut total = 0.0;
    for idx in plan.var_count()..plan.node_count() {
        let mut none_occur = 1.0;
        for &q in reach.queries_of(idx) {
            none_occur *= 1.0 - search_rates[q as usize];
        }
        total += 1.0 - none_occur;
    }
    total
}

/// The expected cost of resolving every query independently (no sharing):
/// each occurring query `q` pays `|X_q| − 1` pairwise aggregations, so the
/// expectation is `Σ_q sr_q (|X_q| − 1)`.
pub fn unshared_expected_cost(problem: &PlanProblem) -> f64 {
    problem
        .queries
        .iter()
        .zip(&problem.search_rates)
        .map(|(set, &sr)| sr * (set.len().saturating_sub(1)) as f64)
        .sum()
}

/// Incrementally maintained expected cost.
///
/// [`expected_cost`] rescans the whole plan — `reach_sets()` alone walks
/// every query's cone — which is fine for one-shot evaluation but wasteful
/// under plan maintenance, where each update touches only the cone of a
/// single query's bind node. This tracker keeps the per-node reach sets and
/// materialization probabilities alive between updates and repairs exactly
/// the nodes a change can affect:
///
/// * a **rebind** of query `q` from node `a` to node `b` changes reach only
///   on the symmetric difference of the two cones (`cone(a) Δ cone(b)`),
///   found by merge-diffing the sorted cone node lists,
/// * a **rate change** for `q` changes probabilities only inside
///   `cone(bind[q])`,
/// * newly merged nodes are absorbed by [`IncrementalCost::extend`] with
///   empty reach (they feed nothing until some query is rebound through
///   them).
///
/// Invariant: `reach[idx]` contains `q` iff `idx ∈ cone(bind[q])` — the
/// same relation [`PlanDag::reach_sets`] computes from scratch. Reach sets
/// are adaptive-sparse ([`VarSet`]), so the tracker's footprint follows the
/// actual sharing density instead of `nodes × queries / 8` bytes. Node
/// probabilities are recomputed as fresh products over the repaired reach
/// set (never divided out), and the total is re-summed over the stored
/// probability vector, so repeated updates cannot accumulate
/// floating-point drift relative to a full rescan.
#[derive(Debug, Clone)]
pub struct IncrementalCost {
    rates: Vec<f64>,
    reach: Vec<VarSet>,
    prob: Vec<f64>,
    var_count: usize,
    total: f64,
}

impl IncrementalCost {
    /// Builds the tracker with one full rescan of `plan`.
    ///
    /// # Panics
    /// Panics if `search_rates.len()` differs from the plan's query count.
    pub fn new(plan: &PlanDag, search_rates: &[f64]) -> Self {
        assert_eq!(
            search_rates.len(),
            plan.query_count(),
            "one search rate per bound query"
        );
        let m = search_rates.len();
        let reach_csr = plan.reach_sets();
        let reach: Vec<VarSet> = (0..plan.node_count())
            .map(|idx| VarSet::from_sorted(m, reach_csr.queries_of(idx).to_vec()))
            .collect();
        let mut tracker = IncrementalCost {
            rates: search_rates.to_vec(),
            prob: vec![0.0; reach.len()],
            reach,
            var_count: plan.var_count(),
            total: 0.0,
        };
        for idx in tracker.var_count..tracker.prob.len() {
            tracker.prob[idx] = tracker.node_prob(idx);
        }
        tracker.resum();
        tracker
    }

    /// The expected cost of the tracked plan.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Heap footprint of the tracker's state (reach sets, probabilities,
    /// rates).
    pub fn heap_bytes(&self) -> usize {
        let sets: usize = self
            .reach
            .iter()
            .map(|s| s.heap_bytes() + std::mem::size_of::<VarSet>())
            .sum();
        sets + self.prob.capacity() * std::mem::size_of::<f64>()
            + self.rates.capacity() * std::mem::size_of::<f64>()
    }

    /// Absorbs nodes appended to `plan` since the tracker last saw it. New
    /// nodes start with empty reach (probability zero): they cost nothing
    /// until a rebind routes a query through them.
    pub fn extend(&mut self, plan: &PlanDag) {
        assert!(
            plan.node_count() >= self.reach.len(),
            "plan shrank under the tracker"
        );
        let m = self.rates.len();
        for _ in self.reach.len()..plan.node_count() {
            self.reach.push(VarSet::new(m));
            self.prob.push(0.0);
        }
    }

    /// Repairs the tracker after query `q` was rebound from `old_node` to
    /// its current bind node. Only nodes in the symmetric difference of the
    /// two cones are touched. Call [`IncrementalCost::extend`] first if the
    /// rebind also created nodes.
    ///
    /// # Panics
    /// Panics if the tracker has not absorbed all of `plan`'s nodes.
    pub fn rebind(&mut self, plan: &PlanDag, q: usize, old_node: usize) {
        assert_eq!(
            plan.node_count(),
            self.reach.len(),
            "extend the tracker before rebinding"
        );
        let new_node = plan.query_nodes()[q];
        if new_node == old_node {
            return;
        }
        // Merge-diff the sorted cone node lists: nodes only in the old
        // cone lose `q`, nodes only in the new cone gain it; the shared
        // intersection is untouched.
        let old_cone = plan.cone_nodes(old_node);
        let new_cone = plan.cone_nodes(new_node);
        let (mut i, mut j) = (0, 0);
        let touch = |tracker: &mut Self, idx: usize, inserted: bool| {
            if inserted {
                tracker.reach[idx].insert(q);
            } else {
                tracker.reach[idx].remove(q);
            }
            if idx >= tracker.var_count {
                tracker.prob[idx] = tracker.node_prob(idx);
            }
        };
        while i < old_cone.len() && j < new_cone.len() {
            match old_cone[i].cmp(&new_cone[j]) {
                std::cmp::Ordering::Less => {
                    touch(self, old_cone[i] as usize, false);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    touch(self, new_cone[j] as usize, true);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        for &idx in &old_cone[i..] {
            touch(self, idx as usize, false);
        }
        for &idx in &new_cone[j..] {
            touch(self, idx as usize, true);
        }
        self.resum();
    }

    /// Updates query `q`'s search rate, repairing probabilities only inside
    /// the cone of its bind node.
    pub fn set_rate(&mut self, plan: &PlanDag, q: usize, rate: f64) {
        assert_eq!(
            plan.node_count(),
            self.reach.len(),
            "extend the tracker before updating rates"
        );
        self.rates[q] = rate;
        for &idx in &plan.cone_nodes(plan.query_nodes()[q]) {
            if idx as usize >= self.var_count {
                self.prob[idx as usize] = self.node_prob(idx as usize);
            }
        }
        self.resum();
    }

    fn node_prob(&self, idx: usize) -> f64 {
        let mut none_occur = 1.0;
        for q in self.reach[idx].iter() {
            none_occur *= 1.0 - self.rates[q];
        }
        1.0 - none_occur
    }

    fn resum(&mut self) {
        self.total = self.prob[self.var_count..].iter().sum();
    }
}

/// The number of internal nodes actually materialized for one concrete
/// round (the per-round realization of [`expected_cost`]).
pub fn materialized_cost(plan: &PlanDag, occurring: &[bool]) -> usize {
    assert_eq!(occurring.len(), plan.query_count());
    let reach = plan.reach_sets();
    (plan.var_count()..plan.node_count())
        .filter(|&idx| reach.queries_of(idx).iter().any(|&q| occurring[q as usize]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ssa_setcover::BitSet;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    /// Shared plan over queries {0,1,2} and {0,1,3} sharing node {0,1}.
    fn shared_plan() -> PlanDag {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.bind_query(&plan.vars_owned(abc));
        plan.bind_query(&plan.vars_owned(abd));
        plan
    }

    #[test]
    fn deterministic_rates_count_all_nodes() {
        let plan = shared_plan();
        assert_eq!(expected_cost(&plan, &[1.0, 1.0]), 3.0);
        assert_eq!(expected_cost(&plan, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn hand_computed_expectation() {
        let plan = shared_plan();
        // sr = (0.5, 0.5): shared node {0,1} materializes with
        // 1 − 0.25 = 0.75; each query node with 0.5. Total 1.75.
        let got = expected_cost(&plan, &[0.5, 0.5]);
        assert!((got - 1.75).abs() < 1e-12, "{got}");
    }

    #[test]
    fn unshared_baseline() {
        let problem = super::super::PlanProblem::new(
            4,
            vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])],
            Some(vec![0.5, 0.5]),
        );
        // Each query scans 3 advertisers → 2 ops; expectation 0.5·2 + 0.5·2.
        assert!((unshared_expected_cost(&problem) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_plan_beats_unshared_at_high_rates() {
        let plan = shared_plan();
        let problem = super::super::PlanProblem::new(
            4,
            vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])],
            Some(vec![0.9, 0.9]),
        );
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            shared < unshared,
            "shared {shared} should beat unshared {unshared}"
        );
    }

    #[test]
    fn materialized_cost_per_round() {
        let plan = shared_plan();
        assert_eq!(materialized_cost(&plan, &[true, true]), 3);
        assert_eq!(materialized_cost(&plan, &[true, false]), 2);
        assert_eq!(materialized_cost(&plan, &[false, false]), 0);
    }

    #[test]
    fn monte_carlo_matches_expectation() {
        let plan = shared_plan();
        let rates = [0.3, 0.7];
        let expected = expected_cost(&plan, &rates);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 100_000;
        let mut total = 0usize;
        for _ in 0..trials {
            let occurring: Vec<bool> = rates.iter().map(|&r| rng.random::<f64>() < r).collect();
            total += materialized_cost(&plan, &occurring);
        }
        let mc = total as f64 / trials as f64;
        assert!(
            (mc - expected).abs() < 0.02,
            "MC {mc} vs expected {expected}"
        );
    }

    #[test]
    fn incremental_tracker_matches_rescan() {
        let mut plan = shared_plan();
        let mut rates = vec![0.3, 0.7];
        let mut tracker = IncrementalCost::new(&plan, &rates);
        assert!((tracker.total() - expected_cost(&plan, &rates)).abs() < 1e-12);
        assert!(tracker.heap_bytes() > 0);

        // Rate change repairs only the rebound query's cone.
        tracker.set_rate(&plan, 0, 0.9);
        rates[0] = 0.9;
        assert!((tracker.total() - expected_cost(&plan, &rates)).abs() < 1e-12);

        // Rebind query 1 from {0,1,3} to a fresh node {0,1,2,3}.
        let abc = plan.query_nodes()[0];
        let old = plan.query_nodes()[1];
        let abcd = plan.merge(abc, old);
        tracker.extend(&plan);
        plan.rebind_query(1, abcd);
        tracker.rebind(&plan, 1, old);
        assert!((tracker.total() - expected_cost(&plan, &rates)).abs() < 1e-12);

        // Rebinding back drains the abandoned node's reach to empty.
        plan.rebind_query(1, old);
        tracker.rebind(&plan, 1, abcd);
        assert!((tracker.total() - expected_cost(&plan, &rates)).abs() < 1e-12);
    }

    proptest! {
        /// A tracker driven through a random churn sequence of rate
        /// updates and rebinds stays in lockstep with the full rescan.
        #[test]
        fn incremental_tracker_survives_churn(
            seed in any::<u64>(),
            steps in 1usize..25,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut plan = shared_plan();
            let mut rates = vec![0.3, 0.7];
            let mut tracker = IncrementalCost::new(&plan, &rates);
            for _ in 0..steps {
                let q = rng.random_range(0..rates.len());
                if rng.random::<bool>() {
                    let r = rng.random::<f64>();
                    rates[q] = r;
                    tracker.set_rate(&plan, q, r);
                } else {
                    // Rebind q to a random existing internal node or a
                    // fresh merge of two random nodes.
                    let old = plan.query_nodes()[q];
                    let node = if rng.random::<bool>() {
                        let n = plan.node_count();
                        let a = rng.random_range(0..n);
                        let b = rng.random_range(0..n);
                        let merged = plan.merge(a, b);
                        tracker.extend(&plan);
                        merged
                    } else {
                        rng.random_range(plan.var_count()..plan.node_count())
                    };
                    plan.rebind_query(q, node);
                    tracker.rebind(&plan, q, old);
                }
                let fresh = expected_cost(&plan, &rates);
                prop_assert!(
                    (tracker.total() - fresh).abs() < 1e-9,
                    "tracker {} vs rescan {}", tracker.total(), fresh
                );
            }
        }

        /// Expected cost is monotone in every search rate and bounded by
        /// the total node count.
        #[test]
        fn expectation_bounds_and_monotonicity(
            r1 in 0.0f64..=1.0,
            r2 in 0.0f64..=1.0,
            bump in 0.0f64..=0.5,
        ) {
            let plan = shared_plan();
            let base = expected_cost(&plan, &[r1, r2]);
            prop_assert!(base >= 0.0 && base <= plan.total_cost() as f64 + 1e-12);
            let bumped = expected_cost(&plan, &[(r1 + bump).min(1.0), r2]);
            prop_assert!(bumped + 1e-12 >= base);
        }
    }
}
