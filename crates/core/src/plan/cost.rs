//! The probabilistic cost model.
//!
//! "A node is materialized in a given round if it is used to compute the
//! result for a bid phrase that occurs in that round. … the probability of
//! node v being materialized is `1 − Π_{q: v⇝q} (1 − sr_q)`. Thus, by
//! linearity of expectation, the total expected cost of a plan is
//! `Σ_v (1 − Π_{q: v⇝q} (1 − sr_q))`."

use super::{PlanDag, PlanProblem};

/// The expected number of internal nodes materialized per round, under
/// independent Bernoulli query occurrence with the given search rates.
///
/// # Panics
/// Panics if `search_rates.len()` differs from the plan's query count.
pub fn expected_cost(plan: &PlanDag, search_rates: &[f64]) -> f64 {
    assert_eq!(
        search_rates.len(),
        plan.query_count(),
        "one search rate per bound query"
    );
    let reach = plan.reach_sets();
    let mut total = 0.0;
    for node_reach in &reach[plan.var_count()..] {
        let mut none_occur = 1.0;
        for q in node_reach.iter() {
            none_occur *= 1.0 - search_rates[q];
        }
        total += 1.0 - none_occur;
    }
    total
}

/// The expected cost of resolving every query independently (no sharing):
/// each occurring query `q` pays `|X_q| − 1` pairwise aggregations, so the
/// expectation is `Σ_q sr_q (|X_q| − 1)`.
pub fn unshared_expected_cost(problem: &PlanProblem) -> f64 {
    problem
        .queries
        .iter()
        .zip(&problem.search_rates)
        .map(|(set, &sr)| sr * (set.len().saturating_sub(1)) as f64)
        .sum()
}

/// The number of internal nodes actually materialized for one concrete
/// round (the per-round realization of [`expected_cost`]).
pub fn materialized_cost(plan: &PlanDag, occurring: &[bool]) -> usize {
    assert_eq!(occurring.len(), plan.query_count());
    let reach = plan.reach_sets();
    (plan.var_count()..plan.nodes().len())
        .filter(|&idx| reach[idx].iter().any(|q| occurring[q]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ssa_setcover::BitSet;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    /// Shared plan over queries {0,1,2} and {0,1,3} sharing node {0,1}.
    fn shared_plan() -> PlanDag {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.bind_query(&plan.nodes()[abc].vars.clone());
        plan.bind_query(&plan.nodes()[abd].vars.clone());
        plan
    }

    #[test]
    fn deterministic_rates_count_all_nodes() {
        let plan = shared_plan();
        assert_eq!(expected_cost(&plan, &[1.0, 1.0]), 3.0);
        assert_eq!(expected_cost(&plan, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn hand_computed_expectation() {
        let plan = shared_plan();
        // sr = (0.5, 0.5): shared node {0,1} materializes with
        // 1 − 0.25 = 0.75; each query node with 0.5. Total 1.75.
        let got = expected_cost(&plan, &[0.5, 0.5]);
        assert!((got - 1.75).abs() < 1e-12, "{got}");
    }

    #[test]
    fn unshared_baseline() {
        let problem = super::super::PlanProblem::new(
            4,
            vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])],
            Some(vec![0.5, 0.5]),
        );
        // Each query scans 3 advertisers → 2 ops; expectation 0.5·2 + 0.5·2.
        assert!((unshared_expected_cost(&problem) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_plan_beats_unshared_at_high_rates() {
        let plan = shared_plan();
        let problem = super::super::PlanProblem::new(
            4,
            vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])],
            Some(vec![0.9, 0.9]),
        );
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            shared < unshared,
            "shared {shared} should beat unshared {unshared}"
        );
    }

    #[test]
    fn materialized_cost_per_round() {
        let plan = shared_plan();
        assert_eq!(materialized_cost(&plan, &[true, true]), 3);
        assert_eq!(materialized_cost(&plan, &[true, false]), 2);
        assert_eq!(materialized_cost(&plan, &[false, false]), 0);
    }

    #[test]
    fn monte_carlo_matches_expectation() {
        let plan = shared_plan();
        let rates = [0.3, 0.7];
        let expected = expected_cost(&plan, &rates);
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 100_000;
        let mut total = 0usize;
        for _ in 0..trials {
            let occurring: Vec<bool> = rates.iter().map(|&r| rng.random::<f64>() < r).collect();
            total += materialized_cost(&plan, &occurring);
        }
        let mc = total as f64 / trials as f64;
        assert!(
            (mc - expected).abs() < 0.02,
            "MC {mc} vs expected {expected}"
        );
    }

    proptest! {
        /// Expected cost is monotone in every search rate and bounded by
        /// the total node count.
        #[test]
        fn expectation_bounds_and_monotonicity(
            r1 in 0.0f64..=1.0,
            r2 in 0.0f64..=1.0,
            bump in 0.0f64..=0.5,
        ) {
            let plan = shared_plan();
            let base = expected_cost(&plan, &[r1, r2]);
            prop_assert!(base >= 0.0 && base <= plan.total_cost() as f64 + 1e-12);
            let bumped = expected_cost(&plan, &[(r1 + bump).min(1.0), r2]);
            prop_assert!(bumped + 1e-12 >= base);
        }
    }
}
