//! Stage 2 of the heuristic: greedy plan completion.
//!
//! "At every step, we find two nodes that would aggregate together to form
//! a new node that would lead to the greatest decrease in `Σ_q |C_q|` per
//! unit extra cost … If there are multiple pairs of nodes that would cover
//! some previously uncovered query, then we pick the pair with the highest
//! coverage gain." Because minimum set cover is itself inapproximable, the
//! cover `C_q` used throughout is the one "prescribed by the greedy
//! covering algorithm", and in the probabilistic setting gains are
//! weighted by search rates (*expected greedy coverage gain*), so "the
//! algorithm favors the covering and sharing of the queries that are more
//! probable over rare queries".

use ssa_setcover::greedy::greedy_cover_size;
use ssa_setcover::BitSet;

use super::fragments::build_fragment_plan;
use super::{PlanDag, PlanProblem};

/// How much work the planner puts into sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// The full Section II-D algorithm: fragments, then pairwise greedy
    /// completion driven by expected greedy coverage gain. Cost grows
    /// quickly with plan size; intended for up to a few hundred nodes.
    #[default]
    Full,
    /// Fragments only, then each query completed by chaining its greedy
    /// cover (most-probable queries first). Much faster; the ablation
    /// baseline ("fragments-only") of the experiments.
    FragmentsOnly,
}

/// The Section II-D shared-aggregation planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedPlanner {
    /// Completion strategy.
    pub mode: PlannerMode,
}

impl SharedPlanner {
    /// A planner running the full heuristic.
    pub fn full() -> Self {
        SharedPlanner {
            mode: PlannerMode::Full,
        }
    }

    /// A planner running stage 1 plus simple per-query completion.
    pub fn fragments_only() -> Self {
        SharedPlanner {
            mode: PlannerMode::FragmentsOnly,
        }
    }

    /// Builds a shared plan computing every query in `problem`. The
    /// returned plan is validated and has all queries bound in input
    /// order.
    pub fn plan(&self, problem: &PlanProblem) -> PlanDag {
        let (mut plan, _fragments, _per_query) = build_fragment_plan(problem);
        match self.mode {
            PlannerMode::Full => complete_greedy(&mut plan, problem),
            PlannerMode::FragmentsOnly => complete_by_cover_chains(&mut plan, problem),
        }
        for q in &problem.queries {
            plan.bind_query(q);
        }
        debug_assert_eq!(plan.validate(), Ok(()));
        plan
    }
}

/// Current node variable sets (cover candidates).
fn node_sets(plan: &PlanDag) -> Vec<BitSet> {
    plan.nodes().iter().map(|n| n.vars.clone()).collect()
}

/// Indices of queries whose node does not exist yet.
fn uncovered_queries(plan: &PlanDag, problem: &PlanProblem) -> Vec<usize> {
    (0..problem.query_count())
        .filter(|&q| plan.node_for(&problem.queries[q]).is_none())
        .collect()
}

/// Fast completion: for each query in descending search-rate order, chain
/// together its greedy cover. Intermediate chain nodes enter the plan and
/// are reusable by later queries.
fn complete_by_cover_chains(plan: &mut PlanDag, problem: &PlanProblem) {
    let mut order: Vec<usize> = (0..problem.query_count()).collect();
    order.sort_by(|&a, &b| {
        problem.search_rates[b]
            .total_cmp(&problem.search_rates[a])
            .then(a.cmp(&b))
    });
    for q in order {
        let target = &problem.queries[q];
        if plan.node_for(target).is_some() {
            continue;
        }
        let sets = node_sets(plan);
        let cover =
            ssa_setcover::greedy_cover(target, &sets).expect("leaves always cover the target");
        plan.merge_chain(&cover.chosen);
    }
}

/// The full greedy completion loop.
fn complete_greedy(plan: &mut PlanDag, problem: &PlanProblem) {
    let m = problem.query_count();
    // Iteration guard: the paper bounds the run at Σ_q |X_q| steps; we add
    // slack and a guaranteed-progress fallback so the loop always ends.
    let max_steps = problem.total_query_size() + m + 4;
    for _ in 0..max_steps {
        let uncovered = uncovered_queries(plan, problem);
        if uncovered.is_empty() {
            return;
        }
        let sets = node_sets(plan);
        // Baseline greedy cover sizes for uncovered queries.
        let baseline: Vec<(usize, usize)> = uncovered
            .iter()
            .map(|&q| {
                let size =
                    greedy_cover_size(&problem.queries[q], &sets).expect("leaves always cover");
                (q, size)
            })
            .collect();

        // Enumerate candidate union sets w = u ∪ v over node pairs. The
        // gain of a pair depends only on w, so deduplicate by w and keep
        // one generating pair each.
        let mut candidates: Vec<(BitSet, (usize, usize))> = Vec::new();
        let mut seen: std::collections::HashSet<BitSet> = std::collections::HashSet::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let w = sets[i].union(&sets[j]);
                if plan.node_for(&w).is_some() || seen.contains(&w) {
                    continue;
                }
                // Useless unless w fits inside some uncovered query.
                if !uncovered.iter().any(|&q| w.is_subset(&problem.queries[q])) {
                    continue;
                }
                seen.insert(w.clone());
                candidates.push((w, (i, j)));
            }
        }

        // Score each candidate: expected greedy coverage gain.
        let mut best_query_forming: Option<(f64, usize)> = None; // (gain, cand idx)
        let mut best_other: Option<(f64, usize)> = None;
        for (ci, (w, _)) in candidates.iter().enumerate() {
            let mut with_w = sets.clone();
            with_w.push(w.clone());
            let mut gain = 0.0;
            for &(q, base_size) in &baseline {
                if !w.is_subset(&problem.queries[q]) {
                    continue;
                }
                let new_size =
                    greedy_cover_size(&problem.queries[q], &with_w).expect("still coverable");
                gain += problem.search_rates[q] * (base_size as f64 - new_size as f64);
            }
            let forms_query = uncovered.iter().any(|&q| *w == problem.queries[q]);
            let slot = if forms_query {
                &mut best_query_forming
            } else {
                &mut best_other
            };
            if slot.is_none_or(|(g, _)| gain > g) {
                *slot = Some((gain, ci));
            }
        }

        // Paper's rule: prefer pairs that complete a missing query node
        // (their extra cost is 0); otherwise take the best-gain pair; if
        // nothing has positive gain, force progress by materializing the
        // most probable uncovered query's entire greedy cover.
        let pick = match (best_query_forming, best_other) {
            (Some((_, ci)), _) => Some(ci),
            (None, Some((gain, ci))) if gain > 0.0 => Some(ci),
            _ => None,
        };
        match pick {
            Some(ci) => {
                let (i, j) = candidates[ci].1;
                plan.merge(i, j);
            }
            None => {
                // Fallback: complete the most probable uncovered query.
                let &q = uncovered
                    .iter()
                    .max_by(|&&a, &&b| {
                        problem.search_rates[a]
                            .total_cmp(&problem.search_rates[b])
                            .then(b.cmp(&a))
                    })
                    .expect("nonempty");
                let cover = ssa_setcover::greedy_cover(&problem.queries[q], &sets)
                    .expect("leaves always cover");
                plan.merge_chain(&cover.chosen);
            }
        }
    }
    // Safety net: if the step budget ran out, finish deterministically.
    complete_by_cover_chains(plan, problem);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::cost::{expected_cost, unshared_expected_cost};
    use proptest::prelude::*;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    fn assert_complete(plan: &PlanDag, problem: &PlanProblem) {
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(plan.query_count(), problem.query_count());
        for (q, &idx) in plan.query_nodes().iter().enumerate() {
            assert_eq!(
                plan.nodes()[idx].vars,
                problem.queries[q],
                "query {q} bound to wrong node"
            );
        }
    }

    #[test]
    fn plans_the_hiking_boots_example() {
        // 0..3 general stores (both), 4..5 sports (q0), 6..7 fashion (q1).
        let q0 = bs(8, &[0, 1, 2, 3, 4, 5]);
        let q1 = bs(8, &[0, 1, 2, 3, 6, 7]);
        let problem = PlanProblem::new(8, vec![q0, q1], None);
        for planner in [SharedPlanner::full(), SharedPlanner::fragments_only()] {
            let plan = planner.plan(&problem);
            assert_complete(&plan, &problem);
            // Shared: general chain (3) + sports chain (1) + fashion chain
            // (1) + 2 combine nodes per query = 3+1+1+2+2 = 9.
            // Unshared: 5 + 5 = 10. Sharing must not be worse.
            assert!(
                plan.total_cost() <= 10,
                "cost {} exceeds unshared",
                plan.total_cost()
            );
            // The shared {0,1,2,3} fragment node must exist.
            assert!(plan.node_for(&bs(8, &[0, 1, 2, 3])).is_some());
        }
    }

    #[test]
    fn single_query_is_a_chain() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2, 3])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 3, "n-1 merges for one query");
        assert_eq!(plan.extra_cost(), 2);
    }

    #[test]
    fn variable_query_costs_nothing() {
        let problem = PlanProblem::new(3, vec![bs(3, &[1])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 0);
        assert_eq!(plan.extra_cost(), 0);
    }

    #[test]
    fn nested_queries_share_prefixes() {
        // q0 ⊂ q1 ⊂ q2: the plan should build q0, extend to q1, extend to
        // q2 — total cost |q2| - 1, extra cost |q2| - 1 - 3.
        let problem = PlanProblem::new(
            6,
            vec![
                bs(6, &[0, 1]),
                bs(6, &[0, 1, 2, 3]),
                bs(6, &[0, 1, 2, 3, 4, 5]),
            ],
            None,
        );
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 5, "chain through the nest");
        assert_eq!(plan.extra_cost(), 2);
    }

    #[test]
    fn both_modes_beat_unshared_and_stay_close() {
        // The full heuristic optimizes a greedy-coverage proxy rather than
        // expected cost directly, so it is not guaranteed to dominate the
        // fragments-only baseline on every instance — but both must beat
        // the unshared baseline, and they should land close together.
        let problem = PlanProblem::new(
            10,
            vec![
                bs(10, &[0, 1, 2, 3, 4]),
                bs(10, &[0, 1, 2, 5, 6]),
                bs(10, &[0, 1, 2, 3, 4, 5, 6]),
                bs(10, &[7, 8, 9]),
            ],
            Some(vec![0.9, 0.8, 0.5, 0.3]),
        );
        let full = SharedPlanner::full().plan(&problem);
        let frag = SharedPlanner::fragments_only().plan(&problem);
        assert_complete(&full, &problem);
        assert_complete(&frag, &problem);
        let full_cost = expected_cost(&full, &problem.search_rates);
        let frag_cost = expected_cost(&frag, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            full_cost < unshared,
            "full {full_cost} vs unshared {unshared}"
        );
        assert!(
            frag_cost < unshared,
            "frag {frag_cost} vs unshared {unshared}"
        );
        assert!(
            (full_cost - frag_cost).abs() / frag_cost < 0.25,
            "modes should land close: full {full_cost} vs frag {frag_cost}"
        );
    }

    #[test]
    fn shared_plan_beats_unshared_on_overlapping_queries() {
        let problem = PlanProblem::new(
            12,
            vec![
                bs(12, &[0, 1, 2, 3, 4, 5, 6, 7]),
                bs(12, &[0, 1, 2, 3, 4, 5, 8, 9]),
                bs(12, &[0, 1, 2, 3, 4, 5, 10, 11]),
            ],
            Some(vec![0.9, 0.9, 0.9]),
        );
        let plan = SharedPlanner::full().plan(&problem);
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            shared < unshared,
            "shared {shared} must beat unshared {unshared}"
        );
    }

    #[test]
    fn duplicate_queries_share_one_node() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 2])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 2, "computed once");
        assert_eq!(
            plan.query_nodes()[0],
            plan.query_nodes()[1],
            "both queries bound to the same node"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Both planner modes always produce a valid, complete plan whose
        /// cost never exceeds the unshared baseline at sr = 1.
        #[test]
        fn planner_soundness(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..9, 1..7), 1..6),
            rates in proptest::collection::vec(0.05f64..=1.0, 6),
        ) {
            let queries: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(9, s.iter().copied()))
                .collect();
            let m = queries.len();
            let problem = PlanProblem::new(9, queries, Some(rates[..m].to_vec()));
            for planner in [SharedPlanner::full(), SharedPlanner::fragments_only()] {
                let plan = planner.plan(&problem);
                assert_complete(&plan, &problem);
                // Total cost never exceeds building every query separately.
                let naive: usize = problem
                    .queries
                    .iter()
                    .map(|s| s.len().saturating_sub(1))
                    .sum();
                prop_assert!(
                    plan.total_cost() <= naive,
                    "cost {} vs naive {naive}", plan.total_cost()
                );
            }
        }
    }
}
