//! Stage 2 of the heuristic: greedy plan completion.
//!
//! "At every step, we find two nodes that would aggregate together to form
//! a new node that would lead to the greatest decrease in `Σ_q |C_q|` per
//! unit extra cost … If there are multiple pairs of nodes that would cover
//! some previously uncovered query, then we pick the pair with the highest
//! coverage gain." Because minimum set cover is itself inapproximable, the
//! cover `C_q` used throughout is the one "prescribed by the greedy
//! covering algorithm", and in the probabilistic setting gains are
//! weighted by search rates (*expected greedy coverage gain*), so "the
//! algorithm favors the covering and sharing of the queries that are more
//! probable over rare queries".
//!
//! # Lazy-greedy completion
//!
//! The literal transcription of the rule — re-enumerate every node pair
//! and re-run every greedy cover at every step — is quadratic per step
//! and hangs past a few hundred advertisers. The default completion is a
//! lazy/incremental rewrite of the same selection rule:
//!
//! * candidate merge pairs live in a max-heap keyed by their cached
//!   expected coverage gain, with version-stamped entries so stale scores
//!   are skipped on pop instead of eagerly deleted;
//! * materializing a node `w*` can only change the baseline `|C_q|` or a
//!   candidate's contribution for queries `q ⊇ w*`, so each step
//!   re-evaluates only the candidates of those *affected* queries (gains
//!   here are **not** monotone under new candidates — a new node can
//!   *increase* another pair's gain — so pop-time revalidation alone
//!   would be unsound; dirty-tracking by affected query is what keeps the
//!   cached heap exact);
//! * per-node query-signature sets (with a Bloom pre-check) prune pairs
//!   that share no uncovered query before any union set or greedy cover
//!   is computed.
//!
//! At [`EXACT_COMPLETION_VAR_LIMIT`] or fewer variables the lazy loop
//! keeps the exact candidate universe and replicates the reference loop
//! *step for step* — identical merges in an identical order, hence
//! bit-identical plans (see [`reference_plan`]). Above the limit the
//! candidate universe is capped per node by overlap-signature buckets and
//! gains switch to a cover-membership estimate, trading the paper's exact
//! gain for tractability at thousands of advertisers.
//!
//! # Candidate pools at population scale
//!
//! All completion paths now keep *per-query candidate pools* instead of
//! rescanning every plan node: a query's pool is its stage-1 fragment
//! nodes plus the completion-created nodes inside `X_q`, absorbed in
//! ascending index order. For the cover-chain completion this is provably
//! the same selection sequence as the old full scan — every greedy pick
//! is fragment-aligned by induction (fragments are equivalence classes,
//! so each is entirely inside or entirely outside any candidate the loop
//! creates), and the full scan's extra candidates (leaves and chain
//! prefixes of multi-variable fragments) are strictly gain-dominated by
//! their fragment node while it has uncovered variables and contribute
//! zero gain afterwards, so the reference scan never picked them either.
//! What the pools buy is scale: membership tests go through each node's
//! minimum variable's fragment signature (exact, not heuristic — `w ⊆
//! X_q` forces `q` into that signature), so absorbing a node costs its
//! signature size, not `O(m)` dense set probes.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use ssa_setcover::greedy::greedy_cover_views;
use ssa_setcover::{AsVarSetRef, BitSet, VarSet, VarSetRef};

use crate::bloom::{mix1, mix2, BloomFilter};

use super::fragments::{build_fragment_plan, Fragments};
use super::{PlanDag, PlanProblem};

/// Largest variable count at which the lazy completion keeps the exact
/// candidate universe (every node pair sharing an uncovered query) and is
/// a step-for-step replica of [`reference_plan`]. Above it, candidates
/// are capped by overlap-signature buckets.
pub const EXACT_COMPLETION_VAR_LIMIT: usize = 128;

/// Capped mode: cover members per query used as pair sources each round
/// (the greedy cover lists its biggest sets first, so these are the most
/// shareable).
const PAIR_SOURCE_CAP: usize = 12;

/// Capped mode: hard step budget (beyond it the cover-chain safety net
/// finishes the plan deterministically).
fn capped_step_limit(query_count: usize) -> usize {
    8 * query_count + 64
}

/// Geometry of the per-node query-signature Bloom filters in exact mode:
/// one word, two probes — enough to reject most disjoint signature pairs
/// with a single AND.
const SIG_BLOOM_BITS: usize = 64;
const SIG_BLOOM_HASHES: u32 = 2;

/// Capped mode packs the same two-probe signature Bloom into one bare
/// `u64` (no allocation per node — there can be millions).
#[inline]
fn sig_bloom_word(q: usize) -> u64 {
    (1u64 << (mix1(q as u64) & 63)) | (1u64 << (mix2(q as u64) & 63))
}

/// How much work the planner puts into sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// The full Section II-D algorithm: fragments, then pairwise greedy
    /// completion driven by expected greedy coverage gain. Cost grows
    /// quickly with plan size; intended for up to a few hundred nodes.
    #[default]
    Full,
    /// Fragments only, then each query completed by chaining its greedy
    /// cover (most-probable queries first). Much faster; the ablation
    /// baseline ("fragments-only") of the experiments.
    FragmentsOnly,
}

/// The Section II-D shared-aggregation planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedPlanner {
    /// Completion strategy.
    pub mode: PlannerMode,
}

impl SharedPlanner {
    /// A planner running the full heuristic.
    pub fn full() -> Self {
        SharedPlanner {
            mode: PlannerMode::Full,
        }
    }

    /// A planner running stage 1 plus simple per-query completion.
    pub fn fragments_only() -> Self {
        SharedPlanner {
            mode: PlannerMode::FragmentsOnly,
        }
    }

    /// Builds a shared plan computing every query in `problem`. The
    /// returned plan is validated and has all queries bound in input
    /// order.
    pub fn plan(&self, problem: &PlanProblem) -> PlanDag {
        let (mut plan, fragments, per_query) = build_fragment_plan(problem);
        let frag_stage_end = plan.node_count();
        match self.mode {
            PlannerMode::Full => {
                complete_greedy(&mut plan, problem, &fragments, &per_query, frag_stage_end)
            }
            PlannerMode::FragmentsOnly => {
                complete_by_cover_chains(&mut plan, problem, &fragments, &per_query, frag_stage_end)
            }
        }
        for q in &problem.queries {
            plan.bind_query(q);
        }
        debug_assert_eq!(plan.validate(), Ok(()));
        plan
    }
}

/// Plans with the *reference* completion loop — the literal
/// recompute-all-pairs-per-step transcription of Section II-D. The
/// exact-mode lazy completion replicates its selections step for step, so
/// this entry point exists for differential tests and benchmarks to
/// cross-check and time the two against each other. Quadratic per step:
/// intractable beyond a few hundred variables.
pub fn reference_plan(problem: &PlanProblem) -> PlanDag {
    let (mut plan, fragments, per_query) = build_fragment_plan(problem);
    let frag_stage_end = plan.node_count();
    complete_greedy_reference(&mut plan, problem, &fragments, &per_query, frag_stage_end);
    for q in &problem.queries {
        plan.bind_query(q);
    }
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

/// Current node variable sets (owned — reference-loop use only; the
/// incremental paths read [`PlanDag::vars`] views instead).
fn node_sets(plan: &PlanDag) -> Vec<VarSet> {
    (0..plan.node_count()).map(|i| plan.vars_owned(i)).collect()
}

/// Greedy cover size over owned sets (reference loop).
fn cover_size_owned(target: &VarSet, sets: &[VarSet]) -> Option<usize> {
    let views: Vec<VarSetRef<'_>> = sets.iter().map(|s| s.as_set_ref()).collect();
    greedy_cover_views(target.as_set_ref(), &views).map(|c| c.size())
}

/// Indices of queries whose node does not exist yet.
fn uncovered_queries(plan: &PlanDag, problem: &PlanProblem) -> Vec<usize> {
    (0..problem.query_count())
        .filter(|&q| plan.node_for(&problem.queries[q]).is_none())
        .collect()
}

/// Fast completion: for each query in descending search-rate order, chain
/// together its greedy cover. Intermediate chain nodes enter the plan and
/// are reusable by later queries.
///
/// Covers are computed over per-query pools (the query's fragment nodes
/// plus completion nodes inside it, ascending) rather than a scan of all
/// nodes — identical selections, see the module docs for the dominance
/// argument.
fn complete_by_cover_chains(
    plan: &mut PlanDag,
    problem: &PlanProblem,
    fragments: &Fragments,
    fragment_nodes: &[Vec<usize>],
    frag_stage_end: usize,
) {
    let m = problem.query_count();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        problem.search_rates[b]
            .total_cmp(&problem.search_rates[a])
            .then(a.cmp(&b))
    });
    let mut remaining: Vec<bool> = (0..m)
        .map(|q| plan.node_for(&problem.queries[q]).is_none())
        .collect();
    let mut pools: Vec<Vec<usize>> = fragment_nodes
        .iter()
        .map(|f| {
            let mut p = f.clone();
            p.sort_unstable();
            p.dedup();
            p
        })
        .collect();
    // Absorbs nodes `from..` into the pools of still-uncovered queries, in
    // ascending index order. Membership is filtered through the node's
    // minimum variable's fragment signature — exact: `w ⊆ X_q` requires
    // `q` to contain every variable of `w`, in particular its minimum —
    // then verified by a sparse subset test.
    let mut absorbed = frag_stage_end;
    macro_rules! absorb_new_nodes {
        () => {
            for idx in absorbed..plan.node_count() {
                let v = plan.vars(idx).first().expect("plan nodes are non-empty");
                let f = fragments.frag_of[v];
                if f == u32::MAX {
                    continue;
                }
                for q in fragments.fragments[f as usize].signature.iter() {
                    if remaining[q] && plan.vars(idx).is_subset(problem.queries[q].as_set_ref()) {
                        pools[q].push(idx);
                    }
                }
            }
            absorbed = plan.node_count();
        };
    }
    // Safety-net entry: completion nodes may already exist.
    absorb_new_nodes!();
    for q in order {
        if !remaining[q] {
            continue;
        }
        if plan.node_for(&problem.queries[q]).is_some() {
            remaining[q] = false;
            continue;
        }
        let chain: Vec<usize> = {
            let views: Vec<VarSetRef<'_>> = pools[q].iter().map(|&i| plan.vars(i)).collect();
            let cover = greedy_cover_views(problem.queries[q].as_set_ref(), &views)
                .expect("fragment nodes partition their query");
            cover.chosen.iter().map(|&pos| pools[q][pos]).collect()
        };
        plan.merge_chain(&chain);
        remaining[q] = false;
        absorb_new_nodes!();
    }
}

/// The full greedy completion: lazy-greedy, exact below
/// [`EXACT_COMPLETION_VAR_LIMIT`] variables and signature-capped above.
/// `fragment_nodes` holds each query's stage-1 fragment node indices (in
/// capped mode they anchor the cover pools: fragments partition their
/// query, so feasibility is never capped away).
fn complete_greedy(
    plan: &mut PlanDag,
    problem: &PlanProblem,
    fragments: &Fragments,
    fragment_nodes: &[Vec<usize>],
    frag_stage_end: usize,
) {
    if problem.var_count <= EXACT_COMPLETION_VAR_LIMIT {
        ExactLazy::run(plan, problem, fragments, fragment_nodes, frag_stage_end);
    } else {
        CappedLazy::run(plan, problem, fragments, fragment_nodes, frag_stage_end);
    }
}

/// A max-heap entry. Ordering mirrors the reference selection rule:
/// query-forming candidates first, then highest cached gain, ties to the
/// lexicographically smallest generating pair (the reference loop's
/// enumeration order keeps the first of equals).
#[derive(Debug)]
struct HeapEntry {
    forms_query: bool,
    gain: f64,
    pair: (usize, usize),
    id: u32,
    version: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.forms_query
            .cmp(&other.forms_query)
            .then(self.gain.total_cmp(&other.gain))
            .then(other.pair.cmp(&self.pair))
            .then(self.id.cmp(&other.id))
            .then(self.version.cmp(&other.version))
    }
}

/// One candidate union `w = vars(i) ∪ vars(j)` awaiting materialization
/// (exact mode).
struct Candidate {
    /// The union set.
    w: VarSet,
    /// Lexicographically smallest generating pair seen so far.
    pair: (usize, usize),
    /// Per-query gain contributions `sr_q · (|C_q| − |C_q with w|)`,
    /// ascending by query so the cached total re-sums in the reference
    /// loop's floating-point order. Zero contributions are kept: the term
    /// sequence must match a fresh rescan exactly.
    contribs: Vec<(usize, f64)>,
    /// Cached total gain (sum of `contribs`).
    gain: f64,
    /// Whether `w` equals some uncovered query (picked with priority —
    /// the paper treats its extra cost as zero).
    forms_query: bool,
    /// Bumped whenever the cached score changes; older heap entries are
    /// stale and skipped on pop.
    version: u32,
    alive: bool,
    /// Queued for re-scoring in this step's flush.
    dirty: bool,
}

/// Exact lazy completion state. Invariants tying it to the reference
/// loop:
///
/// * `sets[q]` lists every current node whose variable set is inside
///   `X_q`, ascending — restricted to subsets of `X_q`, the reference
///   loop's cover-candidate filter keeps exactly these, in this order,
///   so covers computed over `sets[q]` make identical greedy choices.
/// * a pair `(i, j)` is a useful candidate iff its union fits inside an
///   uncovered query, which forces both `i, j ⊆ X_q`; every such node
///   carries `q` in its signature (queries only leave signatures by
///   becoming covered, and covered queries never return), so enumerating
///   pairs of signature-overlapping participants reproduces the
///   reference candidate universe exactly.
/// * a new node `w*` changes `|C_q|`-based quantities only for queries
///   `q ⊇ w*`; everything else keeps its cached score, which a fresh
///   rescan would reproduce bit for bit.
struct ExactLazy<'a> {
    problem: &'a PlanProblem,
    /// Mirror of the plan's node variable sets.
    node_vars: Vec<VarSet>,
    /// Per node: the queries (uncovered at the node's creation) whose
    /// interest set contains it. A stale superset — members are filtered
    /// against `covered` at every use.
    node_sig: Vec<BitSet>,
    /// Bloom filter over the same signature (cheap first-stage overlap
    /// test before the exact intersection).
    node_bloom: Vec<BloomFilter>,
    covered: Vec<bool>,
    uncovered_left: usize,
    /// Per query: current subset nodes, ascending (cover candidates and
    /// pair sources).
    sets: Vec<Vec<usize>>,
    /// Per query: cached greedy cover size `|C_q|` (the gain baseline).
    base: Vec<usize>,
    /// Per query: candidates whose union fits inside it.
    bucket: Vec<Vec<u32>>,
    /// Nodes with a non-empty signature, ascending (global pair pool).
    participants: Vec<usize>,
    cands: Vec<Candidate>,
    /// Exact dedup: one candidate per distinct union set.
    by_union: HashMap<VarSet, u32>,
    heap: BinaryHeap<HeapEntry>,
    /// Worklist of candidates to re-score and re-push this step.
    dirty: Vec<u32>,
}

impl<'a> ExactLazy<'a> {
    fn run(
        plan: &mut PlanDag,
        problem: &'a PlanProblem,
        fragments: &Fragments,
        fragment_nodes: &[Vec<usize>],
        frag_stage_end: usize,
    ) {
        let m = problem.query_count();
        // Iteration guard mirroring the reference loop: Σ_q |X_q| steps
        // plus slack, then a guaranteed-progress safety net.
        let max_steps = problem.total_query_size() + m + 4;
        let mut state = ExactLazy {
            problem,
            node_vars: Vec::new(),
            node_sig: Vec::new(),
            node_bloom: Vec::new(),
            covered: vec![false; m],
            uncovered_left: m,
            sets: vec![Vec::new(); m],
            base: vec![0; m],
            bucket: vec![Vec::new(); m],
            participants: Vec::new(),
            cands: Vec::new(),
            by_union: HashMap::new(),
            heap: BinaryHeap::new(),
            dirty: Vec::new(),
        };
        state.absorb(plan, 0);
        for _ in 0..max_steps {
            if state.uncovered_left == 0 {
                return;
            }
            let before = plan.node_count();
            match state.pop_best() {
                Some(id) => {
                    let (i, j) = state.cands[id as usize].pair;
                    plan.merge(i, j);
                }
                None => {
                    let q = state.most_probable_uncovered();
                    let chain = state.fallback_chain(q);
                    plan.merge_chain(&chain);
                }
            }
            state.absorb(plan, before);
        }
        // Safety net: if the step budget ran out, finish deterministically.
        complete_by_cover_chains(plan, problem, fragments, fragment_nodes, frag_stage_end);
    }

    /// Borrowed cover-candidate views for `q`: its subset nodes in
    /// ascending order, plus `extra` appended last — the same feasible
    /// sequence (and therefore the same greedy choices and tie-breaks)
    /// as the reference loop's scan over all node sets.
    fn cover_views<'b>(&'b self, q: usize, extra: Option<&'b VarSet>) -> Vec<VarSetRef<'b>> {
        let mut views: Vec<VarSetRef<'b>> = Vec::with_capacity(self.sets[q].len() + 1);
        for &i in &self.sets[q] {
            views.push(self.node_vars[i].as_set_ref());
        }
        if let Some(w) = extra {
            views.push(w.as_set_ref());
        }
        views
    }

    fn cover_size(&self, q: usize, extra: Option<&VarSet>) -> usize {
        greedy_cover_views(
            self.problem.queries[q].as_set_ref(),
            &self.cover_views(q, extra),
        )
        .expect("a query's own leaves always cover it")
        .size()
    }

    /// The greedy cover of `q` as node indices, for the fallback chain.
    fn fallback_chain(&self, q: usize) -> Vec<usize> {
        let cover = greedy_cover_views(
            self.problem.queries[q].as_set_ref(),
            &self.cover_views(q, None),
        )
        .expect("a query's own leaves always cover it");
        cover.chosen.iter().map(|&pos| self.sets[q][pos]).collect()
    }

    fn most_probable_uncovered(&self) -> usize {
        (0..self.problem.query_count())
            .filter(|&q| !self.covered[q])
            .max_by(|&a, &b| {
                self.problem.search_rates[a]
                    .total_cmp(&self.problem.search_rates[b])
                    .then(b.cmp(&a))
            })
            .expect("called with uncovered queries remaining")
    }

    fn mark_dirty(&mut self, id: u32) {
        if !self.cands[id as usize].dirty {
            self.cands[id as usize].dirty = true;
            self.dirty.push(id);
        }
    }

    /// Registers the pair `(i, j)` — either refreshing the generating
    /// pair of an existing candidate or scoring a fresh one. Pruning
    /// ladder: Bloom signature AND, exact signature intersection, exact
    /// union probes, and only then greedy covers.
    fn consider_pair(&mut self, plan: &PlanDag, i: usize, j: usize) {
        if !self.node_bloom[i].intersects(&self.node_bloom[j]) {
            return; // definitely no shared query
        }
        let sig = self.node_sig[i].intersection(&self.node_sig[j]);
        let mut w: Option<VarSet> = None;
        let mut qs: Vec<usize> = Vec::new();
        for q in sig.iter() {
            if self.covered[q] {
                continue;
            }
            let wref = w.get_or_insert_with(|| self.node_vars[i].union(&self.node_vars[j]));
            if wref.is_subset(&self.problem.queries[q]) {
                qs.push(q);
            }
        }
        let Some(w) = w else { return };
        if qs.is_empty() || plan.node_for(&w).is_some() {
            return;
        }
        if let Some(&id) = self.by_union.get(&w) {
            // Known union: keep the lexicographically smallest generator.
            if self.cands[id as usize].alive && (i, j) < self.cands[id as usize].pair {
                self.cands[id as usize].pair = (i, j);
                self.mark_dirty(id);
            }
            return;
        }
        let mut contribs = Vec::with_capacity(qs.len());
        let mut forms_query = false;
        for &q in &qs {
            let size = self.cover_size(q, Some(&w));
            let gain = self.problem.search_rates[q] * (self.base[q] as f64 - size as f64);
            contribs.push((q, gain));
            forms_query |= w == self.problem.queries[q];
        }
        let id = self.cands.len() as u32;
        self.by_union.insert(w.clone(), id);
        for &q in &qs {
            self.bucket[q].push(id);
        }
        self.cands.push(Candidate {
            w,
            pair: (i, j),
            contribs,
            gain: 0.0,
            forms_query,
            version: 0,
            alive: true,
            dirty: true,
        });
        self.dirty.push(id);
    }

    /// Folds the plan nodes `from..` into the incremental state: mirrors
    /// them, retires covered queries and materialized candidates,
    /// re-scores only the affected queries' candidates, pairs the new
    /// nodes against the pool, and publishes refreshed gains.
    fn absorb(&mut self, plan: &PlanDag, from: usize) {
        let m = self.problem.query_count();
        let mut affected = BitSet::new(m);
        for idx in from..plan.node_count() {
            let vars = plan.vars_owned(idx);
            let mut sig = BitSet::new(m);
            let mut bloom = BloomFilter::new(SIG_BLOOM_BITS, SIG_BLOOM_HASHES);
            for (q, query) in self.problem.queries.iter().enumerate() {
                if !self.covered[q] && vars.is_subset(query) {
                    sig.insert(q);
                    bloom.insert(q as u64);
                    self.sets[q].push(idx);
                    affected.insert(q);
                }
            }
            if !sig.is_empty() {
                self.participants.push(idx);
            }
            self.node_vars.push(vars);
            self.node_sig.push(sig);
            self.node_bloom.push(bloom);
        }
        // Retire queries the new nodes completed, and drop their
        // contributions (a candidate equal to the covered query must be
        // the covering node itself, so `forms_query` flags stay valid).
        for q in affected.iter() {
            if self.covered[q] || plan.node_for(&self.problem.queries[q]).is_none() {
                continue;
            }
            self.covered[q] = true;
            self.uncovered_left -= 1;
            let bucket = std::mem::take(&mut self.bucket[q]);
            for id in bucket {
                if !self.cands[id as usize].alive {
                    continue;
                }
                self.cands[id as usize].contribs.retain(|&(cq, _)| cq != q);
                if self.cands[id as usize].contribs.is_empty() {
                    self.kill(id);
                } else {
                    self.mark_dirty(id);
                }
            }
        }
        // Candidates whose union just materialized are no longer pairs.
        for idx in from..self.node_vars.len() {
            if let Some(&id) = self.by_union.get(&self.node_vars[idx]) {
                self.kill(id);
            }
        }
        // Re-baseline the affected queries and re-score their candidates
        // (only these can have changed: covers see new sets only for
        // queries that contain a new node).
        for q in affected.iter() {
            if self.covered[q] {
                continue;
            }
            self.base[q] = self.cover_size(q, None);
            for bi in 0..self.bucket[q].len() {
                let id = self.bucket[q][bi];
                if !self.cands[id as usize].alive {
                    continue;
                }
                let w = self.cands[id as usize].w.clone();
                let size = self.cover_size(q, Some(&w));
                let gain = self.problem.search_rates[q] * (self.base[q] as f64 - size as f64);
                let c = &mut self.cands[id as usize];
                let slot = c
                    .contribs
                    .iter_mut()
                    .find(|e| e.0 == q)
                    .expect("bucket membership implies a contribution");
                slot.1 = gain;
                self.mark_dirty(id);
            }
        }
        // Pair each new node against every earlier pool member (new-new
        // pairs included: the earlier new node is already in the pool).
        for idx in from..self.node_vars.len() {
            if self.node_sig[idx].is_empty() {
                continue;
            }
            for pi in 0..self.participants.len() {
                let p = self.participants[pi];
                if p >= idx {
                    break;
                }
                self.consider_pair(plan, p, idx);
            }
        }
        self.flush_dirty();
    }

    fn kill(&mut self, id: u32) {
        if self.cands[id as usize].alive {
            self.cands[id as usize].alive = false;
            let w = self.cands[id as usize].w.clone();
            self.by_union.remove(&w);
        }
    }

    /// Re-sums dirty candidates' gains and pushes fresh heap entries.
    /// Gains are recomputed from scratch over the ascending-query
    /// contribution list — the same floating-point op sequence as the
    /// reference loop's rescan, so cached and fresh scores are
    /// bit-identical.
    fn flush_dirty(&mut self) {
        let list = std::mem::take(&mut self.dirty);
        for id in list {
            let c = &mut self.cands[id as usize];
            c.dirty = false;
            if !c.alive {
                continue;
            }
            let mut gain = 0.0;
            for &(_, g) in &c.contribs {
                gain += g;
            }
            c.gain = gain;
            c.version += 1;
            self.heap.push(HeapEntry {
                forms_query: c.forms_query,
                gain,
                pair: c.pair,
                id,
                version: c.version,
            });
        }
    }

    /// Pops the best live candidate if the reference rule would take it:
    /// any query-forming pair, else the top gain when positive. Stale
    /// entries (dead or re-scored since push) are discarded lazily. A
    /// rejected top is re-pushed so the pool survives the fallback step.
    fn pop_best(&mut self) -> Option<u32> {
        while let Some(top) = self.heap.pop() {
            let c = &self.cands[top.id as usize];
            if !c.alive || c.version != top.version {
                continue;
            }
            if c.forms_query || c.gain > 0.0 {
                return Some(top.id);
            }
            self.heap.push(top);
            return None;
        }
        None
    }
}

/// A candidate pair in capped mode. Gains are the cover-membership
/// estimate (see [`CappedLazy`]), so no per-query contribution list is
/// kept.
struct CappedCandidate {
    w: VarSet,
    pair: (usize, usize),
    gain: f64,
    forms_query: bool,
    version: u32,
    alive: bool,
    dirty: bool,
}

/// Signature-capped lazy completion for large instances (variable count
/// above [`EXACT_COMPLETION_VAR_LIMIT`]).
///
/// Exact per-candidate greedy covers are what make the reference rule
/// expensive, so capped mode replaces them with the dominant term of the
/// true gain: merging two *current cover members* of query `q` shrinks
/// `|C_q|` by one, so a pair is scored `Σ rate_q` over the queries whose
/// greedy covers use both endpoints (tracked per node as a cover-
/// signature set with a one-word Bloom pre-check). The candidate universe
/// is capped per query to pairs of its [`PAIR_SOURCE_CAP`] first cover
/// members — the greedy cover lists its biggest, most shareable sets
/// first — instead of all O(n²) node pairs. Cover pools are anchored on
/// the stage-1 fragment nodes (which partition each query, so capping
/// never loses feasibility) plus every node merged during completion.
///
/// Per-node state is *slot-compacted*: only pool members get a dense
/// slot, so the transient planner state scales with the participant
/// count, not with `var_count + internal nodes` (which would be millions
/// of empty signature sets at population scale).
struct CappedLazy<'a> {
    problem: &'a PlanProblem,
    fragments: &'a Fragments,
    covered: Vec<bool>,
    uncovered_left: usize,
    /// Per query: cover-candidate pool (fragment nodes + completion
    /// nodes inside the query), ascending.
    sets: Vec<Vec<usize>>,
    /// Per query: its current greedy cover, in selection order.
    cover: Vec<Vec<usize>>,
    /// Node index → dense participant slot (`u32::MAX` = no slot yet).
    slot_of: Vec<u32>,
    /// Per slot: the uncovered queries whose current cover uses the node
    /// (sparse over the query universe).
    csig: Vec<VarSet>,
    /// One-word Bloom mirror of `csig` (rebuilt on change).
    csig_bloom: Vec<u64>,
    /// Per slot: candidates generated from the node, for dirty
    /// propagation.
    node_cands: Vec<Vec<u32>>,
    cands: Vec<CappedCandidate>,
    by_union: HashMap<VarSet, u32>,
    heap: BinaryHeap<HeapEntry>,
    dirty: Vec<u32>,
}

impl<'a> CappedLazy<'a> {
    fn run(
        plan: &mut PlanDag,
        problem: &'a PlanProblem,
        fragments: &'a Fragments,
        fragment_nodes: &[Vec<usize>],
        frag_stage_end: usize,
    ) {
        let m = problem.query_count();
        let max_steps = (problem.total_query_size() + m + 4).min(capped_step_limit(m));
        let mut state = CappedLazy {
            problem,
            fragments,
            covered: vec![false; m],
            uncovered_left: m,
            sets: vec![Vec::new(); m],
            cover: vec![Vec::new(); m],
            slot_of: vec![u32::MAX; plan.node_count()],
            csig: Vec::new(),
            csig_bloom: Vec::new(),
            node_cands: Vec::new(),
            cands: Vec::new(),
            by_union: HashMap::new(),
            heap: BinaryHeap::new(),
            dirty: Vec::new(),
        };
        for (q, frag_pool) in fragment_nodes.iter().enumerate().take(m) {
            if plan.node_for(&problem.queries[q]).is_some() {
                state.covered[q] = true;
                state.uncovered_left -= 1;
                continue;
            }
            let mut pool = frag_pool.clone();
            pool.sort_unstable();
            pool.dedup();
            state.sets[q] = pool;
            state.recompute_cover(plan, q);
        }
        for q in 0..m {
            if !state.covered[q] {
                state.generate_pairs(plan, q);
            }
        }
        state.flush_dirty();
        for _ in 0..max_steps {
            if state.uncovered_left == 0 {
                return;
            }
            let before = plan.node_count();
            match state.pop_best() {
                Some(id) => {
                    let (i, j) = state.cands[id as usize].pair;
                    plan.merge(i, j);
                }
                None => {
                    let q = state.most_probable_uncovered();
                    let chain = state.cover[q].clone();
                    plan.merge_chain(&chain);
                }
            }
            state.absorb(plan, before);
        }
        complete_by_cover_chains(plan, problem, fragments, fragment_nodes, frag_stage_end);
    }

    /// The dense slot for node `idx`, allocating on first use.
    fn ensure_slot(&mut self, idx: usize) -> usize {
        let cur = self.slot_of[idx];
        if cur != u32::MAX {
            return cur as usize;
        }
        let slot = self.csig.len();
        self.slot_of[idx] = slot as u32;
        self.csig.push(VarSet::new(self.problem.query_count()));
        self.csig_bloom.push(0);
        self.node_cands.push(Vec::new());
        slot
    }

    /// Recomputes `q`'s greedy cover over its pool and maintains the
    /// cover-signature sets of nodes entering or leaving it. Touched
    /// nodes' candidates are queued for re-scoring.
    fn recompute_cover(&mut self, plan: &PlanDag, q: usize) {
        let old = std::mem::take(&mut self.cover[q]);
        for &i in &old {
            let slot = self.slot_of[i] as usize;
            self.csig[slot].remove(q);
        }
        let chosen = {
            let views: Vec<VarSetRef<'_>> = self.sets[q].iter().map(|&i| plan.vars(i)).collect();
            let cover = greedy_cover_views(self.problem.queries[q].as_set_ref(), &views)
                .expect("fragment nodes partition their query");
            cover
                .chosen
                .iter()
                .map(|&pos| self.sets[q][pos])
                .collect::<Vec<usize>>()
        };
        for &i in &chosen {
            let slot = self.ensure_slot(i);
            self.csig[slot].insert(q);
        }
        for &i in old.iter().chain(&chosen) {
            let slot = self.slot_of[i] as usize;
            self.rebuild_bloom(slot);
            for ci in 0..self.node_cands[slot].len() {
                let id = self.node_cands[slot][ci];
                self.mark_dirty(id);
            }
        }
        self.cover[q] = chosen;
    }

    fn rebuild_bloom(&mut self, slot: usize) {
        let mut word = 0u64;
        for q in self.csig[slot].iter() {
            word |= sig_bloom_word(q);
        }
        self.csig_bloom[slot] = word;
    }

    /// Candidate pairs from `q`'s current cover: all pairs among its
    /// first [`PAIR_SOURCE_CAP`] members (the signature bucket cap).
    fn generate_pairs(&mut self, plan: &PlanDag, q: usize) {
        let sources: Vec<usize> = self.cover[q]
            .iter()
            .take(PAIR_SOURCE_CAP)
            .copied()
            .collect();
        for a in 0..sources.len() {
            for b in (a + 1)..sources.len() {
                let (i, j) = if sources[a] < sources[b] {
                    (sources[a], sources[b])
                } else {
                    (sources[b], sources[a])
                };
                self.consider_pair(plan, i, j);
            }
        }
    }

    /// Scores `(i, j)` by cover membership: the rate-weighted count of
    /// uncovered queries whose greedy covers use both endpoints.
    fn score(&self, i: usize, j: usize, w: &VarSet) -> (f64, bool) {
        let si = self.slot_of[i] as usize;
        let sj = self.slot_of[j] as usize;
        let shared = self.csig[si].intersection(&self.csig[sj]);
        let mut gain = 0.0;
        let mut forms_query = false;
        for q in shared.iter() {
            if self.covered[q] {
                continue;
            }
            gain += self.problem.search_rates[q];
            forms_query |= *w == self.problem.queries[q];
        }
        (gain, forms_query)
    }

    fn consider_pair(&mut self, plan: &PlanDag, i: usize, j: usize) {
        let si = self.slot_of[i] as usize;
        let sj = self.slot_of[j] as usize;
        if self.csig_bloom[si] & self.csig_bloom[sj] == 0 {
            return; // covers definitely share no query
        }
        if self.csig[si].is_disjoint(&self.csig[sj]) {
            return;
        }
        let w = plan.vars_owned(i).union(&plan.vars(j));
        if plan.node_for(&w).is_some() {
            return;
        }
        if let Some(&id) = self.by_union.get(&w) {
            if self.cands[id as usize].alive && (i, j) < self.cands[id as usize].pair {
                self.cands[id as usize].pair = (i, j);
                self.mark_dirty(id);
            }
            return;
        }
        let (gain, forms_query) = self.score(i, j, &w);
        if gain <= 0.0 && !forms_query {
            return;
        }
        let id = self.cands.len() as u32;
        self.by_union.insert(w.clone(), id);
        self.node_cands[si].push(id);
        self.node_cands[sj].push(id);
        self.cands.push(CappedCandidate {
            w,
            pair: (i, j),
            gain,
            forms_query,
            version: 0,
            alive: true,
            dirty: true,
        });
        self.dirty.push(id);
    }

    fn most_probable_uncovered(&self) -> usize {
        (0..self.problem.query_count())
            .filter(|&q| !self.covered[q])
            .max_by(|&a, &b| {
                self.problem.search_rates[a]
                    .total_cmp(&self.problem.search_rates[b])
                    .then(b.cmp(&a))
            })
            .expect("called with uncovered queries remaining")
    }

    fn mark_dirty(&mut self, id: u32) {
        if !self.cands[id as usize].dirty {
            self.cands[id as usize].dirty = true;
            self.dirty.push(id);
        }
    }

    fn kill(&mut self, id: u32) {
        if self.cands[id as usize].alive {
            self.cands[id as usize].alive = false;
            let w = self.cands[id as usize].w.clone();
            self.by_union.remove(&w);
        }
    }

    /// Folds the plan nodes `from..` in: extends the pools of the
    /// queries containing them, retires completed queries, recomputes
    /// only the affected covers, and regenerates their candidate pairs.
    ///
    /// Pool membership goes through the new node's minimum variable's
    /// fragment signature — an exact filter (`w ⊆ X_q` forces `q` into
    /// that signature), so absorbing costs the signature size instead of
    /// a subset probe against every query.
    fn absorb(&mut self, plan: &PlanDag, from: usize) {
        let m = self.problem.query_count();
        let mut affected = BitSet::new(m);
        self.slot_of.resize(plan.node_count(), u32::MAX);
        for idx in from..plan.node_count() {
            let v = plan.vars(idx).first().expect("plan nodes are non-empty");
            let f = self.fragments.frag_of[v];
            if f == u32::MAX {
                continue;
            }
            for q in self.fragments.fragments[f as usize].signature.iter() {
                if !self.covered[q]
                    && plan
                        .vars(idx)
                        .is_subset(self.problem.queries[q].as_set_ref())
                {
                    self.sets[q].push(idx);
                    affected.insert(q);
                }
            }
        }
        for q in affected.iter() {
            if !self.covered[q] && plan.node_for(&self.problem.queries[q]).is_some() {
                self.covered[q] = true;
                self.uncovered_left -= 1;
                // Free the retired cover's signature bits so stale
                // membership never scores again.
                let old = std::mem::take(&mut self.cover[q]);
                for &i in &old {
                    let slot = self.slot_of[i] as usize;
                    self.csig[slot].remove(q);
                    self.rebuild_bloom(slot);
                    for ci in 0..self.node_cands[slot].len() {
                        let id = self.node_cands[slot][ci];
                        self.mark_dirty(id);
                    }
                }
            }
        }
        for idx in from..plan.node_count() {
            if let Some(&id) = self.by_union.get(&plan.vars_owned(idx)) {
                self.kill(id);
            }
        }
        for q in affected.iter() {
            if self.covered[q] {
                continue;
            }
            self.recompute_cover(plan, q);
            self.generate_pairs(plan, q);
        }
        self.flush_dirty();
    }

    /// Re-scores dirty candidates against current cover signatures and
    /// publishes fresh heap entries.
    fn flush_dirty(&mut self) {
        let list = std::mem::take(&mut self.dirty);
        for id in list {
            self.cands[id as usize].dirty = false;
            if !self.cands[id as usize].alive {
                continue;
            }
            let (i, j) = self.cands[id as usize].pair;
            let w = self.cands[id as usize].w.clone();
            let (gain, forms_query) = self.score(i, j, &w);
            let c = &mut self.cands[id as usize];
            c.gain = gain;
            c.forms_query = forms_query;
            c.version += 1;
            self.heap.push(HeapEntry {
                forms_query,
                gain,
                pair: c.pair,
                id,
                version: c.version,
            });
        }
    }

    fn pop_best(&mut self) -> Option<u32> {
        while let Some(top) = self.heap.pop() {
            let c = &self.cands[top.id as usize];
            if !c.alive || c.version != top.version {
                continue;
            }
            if c.forms_query || c.gain > 0.0 {
                return Some(top.id);
            }
            self.heap.push(top);
            return None;
        }
        None
    }
}

/// The reference greedy completion loop (recompute everything, every
/// step). Kept verbatim as the differential-testing and benchmarking
/// baseline for the lazy completion above.
fn complete_greedy_reference(
    plan: &mut PlanDag,
    problem: &PlanProblem,
    fragments: &Fragments,
    fragment_nodes: &[Vec<usize>],
    frag_stage_end: usize,
) {
    let m = problem.query_count();
    // Iteration guard: the paper bounds the run at Σ_q |X_q| steps; we add
    // slack and a guaranteed-progress fallback so the loop always ends.
    let max_steps = problem.total_query_size() + m + 4;
    for _ in 0..max_steps {
        let uncovered = uncovered_queries(plan, problem);
        if uncovered.is_empty() {
            return;
        }
        let sets = node_sets(plan);
        // Baseline greedy cover sizes for uncovered queries.
        let baseline: Vec<(usize, usize)> = uncovered
            .iter()
            .map(|&q| {
                let size =
                    cover_size_owned(&problem.queries[q], &sets).expect("leaves always cover");
                (q, size)
            })
            .collect();

        // Enumerate candidate union sets w = u ∪ v over node pairs. The
        // gain of a pair depends only on w, so deduplicate by w and keep
        // one generating pair each.
        let mut candidates: Vec<(VarSet, (usize, usize))> = Vec::new();
        let mut seen: std::collections::HashSet<VarSet> = std::collections::HashSet::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let w = sets[i].union(&sets[j]);
                if plan.node_for(&w).is_some() || seen.contains(&w) {
                    continue;
                }
                // Useless unless w fits inside some uncovered query.
                if !uncovered.iter().any(|&q| w.is_subset(&problem.queries[q])) {
                    continue;
                }
                seen.insert(w.clone());
                candidates.push((w, (i, j)));
            }
        }

        // Score each candidate: expected greedy coverage gain.
        let mut best_query_forming: Option<(f64, usize)> = None; // (gain, cand idx)
        let mut best_other: Option<(f64, usize)> = None;
        for (ci, (w, _)) in candidates.iter().enumerate() {
            let mut with_w = sets.clone();
            with_w.push(w.clone());
            let mut gain = 0.0;
            for &(q, base_size) in &baseline {
                if !w.is_subset(&problem.queries[q]) {
                    continue;
                }
                let new_size =
                    cover_size_owned(&problem.queries[q], &with_w).expect("still coverable");
                gain += problem.search_rates[q] * (base_size as f64 - new_size as f64);
            }
            let forms_query = uncovered.iter().any(|&q| *w == problem.queries[q]);
            let slot = if forms_query {
                &mut best_query_forming
            } else {
                &mut best_other
            };
            if slot.is_none_or(|(g, _)| gain > g) {
                *slot = Some((gain, ci));
            }
        }

        // Paper's rule: prefer pairs that complete a missing query node
        // (their extra cost is 0); otherwise take the best-gain pair; if
        // nothing has positive gain, force progress by materializing the
        // most probable uncovered query's entire greedy cover.
        let pick = match (best_query_forming, best_other) {
            (Some((_, ci)), _) => Some(ci),
            (None, Some((gain, ci))) if gain > 0.0 => Some(ci),
            _ => None,
        };
        match pick {
            Some(ci) => {
                let (i, j) = candidates[ci].1;
                plan.merge(i, j);
            }
            None => {
                // Fallback: complete the most probable uncovered query.
                let &q = uncovered
                    .iter()
                    .max_by(|&&a, &&b| {
                        problem.search_rates[a]
                            .total_cmp(&problem.search_rates[b])
                            .then(b.cmp(&a))
                    })
                    .expect("nonempty");
                let views: Vec<VarSetRef<'_>> = sets.iter().map(|s| s.as_set_ref()).collect();
                let cover = greedy_cover_views(problem.queries[q].as_set_ref(), &views)
                    .expect("leaves always cover");
                plan.merge_chain(&cover.chosen);
            }
        }
    }
    // Safety net: if the step budget ran out, finish deterministically.
    complete_by_cover_chains(plan, problem, fragments, fragment_nodes, frag_stage_end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::cost::{expected_cost, unshared_expected_cost};
    use proptest::prelude::*;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    fn assert_complete(plan: &PlanDag, problem: &PlanProblem) {
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(plan.query_count(), problem.query_count());
        for (q, &idx) in plan.query_nodes().iter().enumerate() {
            assert_eq!(
                plan.vars(idx),
                problem.queries[q],
                "query {q} bound to wrong node"
            );
        }
    }

    #[test]
    fn plans_the_hiking_boots_example() {
        // 0..3 general stores (both), 4..5 sports (q0), 6..7 fashion (q1).
        let q0 = bs(8, &[0, 1, 2, 3, 4, 5]);
        let q1 = bs(8, &[0, 1, 2, 3, 6, 7]);
        let problem = PlanProblem::new(8, vec![q0, q1], None);
        for planner in [SharedPlanner::full(), SharedPlanner::fragments_only()] {
            let plan = planner.plan(&problem);
            assert_complete(&plan, &problem);
            // Shared: general chain (3) + sports chain (1) + fashion chain
            // (1) + 2 combine nodes per query = 3+1+1+2+2 = 9.
            // Unshared: 5 + 5 = 10. Sharing must not be worse.
            assert!(
                plan.total_cost() <= 10,
                "cost {} exceeds unshared",
                plan.total_cost()
            );
            // The shared {0,1,2,3} fragment node must exist.
            assert!(plan.node_for(&bs(8, &[0, 1, 2, 3])).is_some());
        }
    }

    #[test]
    fn single_query_is_a_chain() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2, 3])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 3, "n-1 merges for one query");
        assert_eq!(plan.extra_cost(), 2);
    }

    #[test]
    fn variable_query_costs_nothing() {
        let problem = PlanProblem::new(3, vec![bs(3, &[1])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 0);
        assert_eq!(plan.extra_cost(), 0);
    }

    #[test]
    fn nested_queries_share_prefixes() {
        // q0 ⊂ q1 ⊂ q2: the plan should build q0, extend to q1, extend to
        // q2 — total cost |q2| - 1, extra cost |q2| - 1 - 3.
        let problem = PlanProblem::new(
            6,
            vec![
                bs(6, &[0, 1]),
                bs(6, &[0, 1, 2, 3]),
                bs(6, &[0, 1, 2, 3, 4, 5]),
            ],
            None,
        );
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 5, "chain through the nest");
        assert_eq!(plan.extra_cost(), 2);
    }

    #[test]
    fn both_modes_beat_unshared_and_stay_close() {
        // The full heuristic optimizes a greedy-coverage proxy rather than
        // expected cost directly, so it is not guaranteed to dominate the
        // fragments-only baseline on every instance — but both must beat
        // the unshared baseline, and they should land close together.
        let problem = PlanProblem::new(
            10,
            vec![
                bs(10, &[0, 1, 2, 3, 4]),
                bs(10, &[0, 1, 2, 5, 6]),
                bs(10, &[0, 1, 2, 3, 4, 5, 6]),
                bs(10, &[7, 8, 9]),
            ],
            Some(vec![0.9, 0.8, 0.5, 0.3]),
        );
        let full = SharedPlanner::full().plan(&problem);
        let frag = SharedPlanner::fragments_only().plan(&problem);
        assert_complete(&full, &problem);
        assert_complete(&frag, &problem);
        let full_cost = expected_cost(&full, &problem.search_rates);
        let frag_cost = expected_cost(&frag, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            full_cost < unshared,
            "full {full_cost} vs unshared {unshared}"
        );
        assert!(
            frag_cost < unshared,
            "frag {frag_cost} vs unshared {unshared}"
        );
        assert!(
            (full_cost - frag_cost).abs() / frag_cost < 0.25,
            "modes should land close: full {full_cost} vs frag {frag_cost}"
        );
    }

    #[test]
    fn shared_plan_beats_unshared_on_overlapping_queries() {
        let problem = PlanProblem::new(
            12,
            vec![
                bs(12, &[0, 1, 2, 3, 4, 5, 6, 7]),
                bs(12, &[0, 1, 2, 3, 4, 5, 8, 9]),
                bs(12, &[0, 1, 2, 3, 4, 5, 10, 11]),
            ],
            Some(vec![0.9, 0.9, 0.9]),
        );
        let plan = SharedPlanner::full().plan(&problem);
        let shared = expected_cost(&plan, &problem.search_rates);
        let unshared = unshared_expected_cost(&problem);
        assert!(
            shared < unshared,
            "shared {shared} must beat unshared {unshared}"
        );
    }

    #[test]
    fn duplicate_queries_share_one_node() {
        let problem = PlanProblem::new(4, vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 2])], None);
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        assert_eq!(plan.total_cost(), 2, "computed once");
        assert_eq!(
            plan.query_nodes()[0],
            plan.query_nodes()[1],
            "both queries bound to the same node"
        );
    }

    #[test]
    fn capped_mode_engages_past_the_var_limit() {
        // Three overlapping queries over a universe wider than the exact
        // limit: completion must go through the signature-capped path and
        // still produce a valid, bound, cost-sound plan.
        let n = EXACT_COMPLETION_VAR_LIMIT + 22;
        let shared: Vec<usize> = (0..60).collect();
        let mut q0: Vec<usize> = shared.clone();
        q0.extend(60..90);
        let mut q1: Vec<usize> = shared.clone();
        q1.extend(90..120);
        let mut q2: Vec<usize> = shared;
        q2.extend(120..n);
        let problem = PlanProblem::new(
            n,
            vec![bs(n, &q0), bs(n, &q1), bs(n, &q2)],
            Some(vec![0.9, 0.8, 0.7]),
        );
        let plan = SharedPlanner::full().plan(&problem);
        assert_complete(&plan, &problem);
        let naive: usize = problem.queries.iter().map(|s| s.len() - 1).sum();
        assert!(
            plan.total_cost() < naive,
            "capped completion must still share: {} vs naive {naive}",
            plan.total_cost()
        );
        // The 60-advertiser shared fragment is the whole point.
        assert!(plan
            .node_for(&bs(n, &(0..60).collect::<Vec<_>>()))
            .is_some());
    }

    #[test]
    fn capped_mode_is_deterministic() {
        let n = EXACT_COMPLETION_VAR_LIMIT + 10;
        let queries: Vec<BitSet> = (0..6)
            .map(|k| {
                let members: Vec<usize> = (0..n).filter(|v| (v + k) % 3 != 0).collect();
                bs(n, &members)
            })
            .collect();
        let rates = vec![0.9, 0.7, 0.6, 0.5, 0.4, 0.3];
        let problem = PlanProblem::new(n, queries, Some(rates));
        let a = SharedPlanner::full().plan(&problem);
        let b = SharedPlanner::full().plan(&problem);
        assert_eq!(a.node_count(), b.node_count());
        for idx in 0..a.node_count() {
            assert_eq!(a.vars(idx), b.vars(idx));
            assert_eq!(a.children(idx), b.children(idx));
        }
        assert_eq!(a.query_nodes(), b.query_nodes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The lazy completion replicates the reference loop step for
        /// step below the exact-mode limit: same nodes in the same
        /// order, same query bindings — bit-identical plans.
        #[test]
        fn lazy_matches_reference_exactly(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..14, 1..9), 1..7),
            rates in proptest::collection::vec(0.05f64..=1.0, 7),
        ) {
            let queries: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(14, s.iter().copied()))
                .collect();
            let m = queries.len();
            let problem = PlanProblem::new(14, queries, Some(rates[..m].to_vec()));
            let lazy = SharedPlanner::full().plan(&problem);
            let reference = reference_plan(&problem);
            prop_assert_eq!(lazy.node_count(), reference.node_count());
            for idx in 0..lazy.node_count() {
                prop_assert_eq!(
                    lazy.vars(idx), reference.vars(idx),
                    "node {} diverges from the reference", idx
                );
                prop_assert_eq!(lazy.children(idx), reference.children(idx));
            }
            prop_assert_eq!(lazy.query_nodes(), reference.query_nodes());
        }

        /// Both planner modes always produce a valid, complete plan whose
        /// cost never exceeds the unshared baseline at sr = 1.
        #[test]
        fn planner_soundness(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..9, 1..7), 1..6),
            rates in proptest::collection::vec(0.05f64..=1.0, 6),
        ) {
            let queries: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(9, s.iter().copied()))
                .collect();
            let m = queries.len();
            let problem = PlanProblem::new(9, queries, Some(rates[..m].to_vec()));
            for planner in [SharedPlanner::full(), SharedPlanner::fragments_only()] {
                let plan = planner.plan(&problem);
                assert_complete(&plan, &problem);
                // Total cost never exceeds building every query separately.
                let naive: usize = problem
                    .queries
                    .iter()
                    .map(|s| s.len().saturating_sub(1))
                    .sum();
                prop_assert!(
                    plan.total_cost() <= naive,
                    "cost {} vs naive {naive}", plan.total_cost()
                );
            }
        }
    }
}
