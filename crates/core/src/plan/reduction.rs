//! Executable reductions between set cover and shared planning.
//!
//! **Theorem 2** (NP-hardness): from a set-cover instance `(U, S)` build
//! the plan problem with one query per set in `S` plus one query for `U`;
//! a minimum-cost plan yields a minimum set cover.
//!
//! **Theorem 3** (inapproximability): same construction, but the query
//! set is first *closed under subexpressions* (every prefix of every
//! `e_S` becomes a query), so the base cost is fixed and all extra cost
//! goes to computing `e_U` — i.e. to finding a cover.
//!
//! These constructions are executable here, and the tests verify the
//! quantitative correspondence on small instances: the optimal plan's
//! cost on a closed instance equals `|E| + (c* − 2)`, where `c*` is the
//! minimum cover of `U` from the closure's node sets plus singletons
//! (aggregating `c*` nodes takes `c* − 1` merges, one of which is the
//! query node `e_U` itself and therefore base cost).

use ssa_setcover::{exact_min_cover, BitSet, SetCoverInstance, VarSet};

use super::{PlanDag, PlanProblem};

/// The Theorem 2 construction: queries = the sets of `S` plus the
/// universal set, duplicates removed, singleton sets removed (the paper
/// assumes no query is equivalent to a bare variable).
pub fn plan_problem_from_set_cover(instance: &SetCoverInstance) -> PlanProblem {
    let n = instance.universe_size();
    let mut queries: Vec<BitSet> = Vec::new();
    for s in instance.sets() {
        if s.len() >= 2 && !queries.contains(s) {
            queries.push(s.clone());
        }
    }
    let universe = instance.universe();
    if !queries.contains(&universe) {
        queries.push(universe);
    }
    PlanProblem::new(n, queries, None)
}

/// The Theorem 3 construction: close each `e_S` under subexpressions
/// (all prefixes in the canonical variable order) before adding the
/// universal query, "ensuring the only extra nodes we add are for
/// computing the universal set query".
pub fn closed_plan_problem_from_set_cover(instance: &SetCoverInstance) -> PlanProblem {
    let n = instance.universe_size();
    let mut queries: Vec<BitSet> = Vec::new();
    for s in instance.sets() {
        let elements: Vec<usize> = s.iter().collect(); // canonical <_X order
        for prefix_len in 2..=elements.len() {
            let prefix = BitSet::from_elements(n, elements[..prefix_len].iter().copied());
            if !queries.contains(&prefix) {
                queries.push(prefix);
            }
        }
    }
    let universe = instance.universe();
    if !queries.contains(&universe) {
        queries.push(universe);
    }
    PlanProblem::new(n, queries, None)
}

/// Extracts a cover of the universal query from a plan (the Theorem 2
/// argument's cut `Z`): walk down from the universe's node; stop at any
/// node whose variable set is one of the other queries (or a leaf), and
/// collect those sets. The result always unions to the universe.
pub fn extract_cover(plan: &PlanDag, problem: &PlanProblem) -> Vec<BitSet> {
    let universe = problem
        .queries
        .iter()
        .max_by_key(|q| q.len())
        .expect("nonempty problem");
    let root = plan
        .node_for(universe)
        .expect("plan computes the universal query");
    let query_sets: Vec<&VarSet> = problem.queries.iter().filter(|q| *q != universe).collect();
    let mut cover: Vec<BitSet> = Vec::new();
    let mut stack = vec![root];
    while let Some(idx) = stack.pop() {
        let vars = plan.vars(idx);
        let children = plan.children(idx);
        let is_query = query_sets.iter().any(|q| vars == **q);
        if idx != root && (is_query || children.is_none()) {
            let set = vars.to_bitset();
            if !cover.contains(&set) {
                cover.push(set);
            }
            continue;
        }
        match children {
            Some((a, b)) => {
                stack.push(a);
                stack.push(b);
            }
            None => {
                // Root is itself a leaf: the universe is a variable.
                cover.push(vars.to_bitset());
            }
        }
    }
    cover
}

/// The minimum "plan-relevant" cover: the universe covered from the
/// problem's non-universal query sets plus all singletons (a plan may
/// always aggregate raw variables). `None` only if the problem is
/// degenerate.
pub fn min_plan_cover(problem: &PlanProblem) -> Option<usize> {
    let universe = problem.queries.iter().max_by_key(|q| q.len())?;
    let mut candidates: Vec<BitSet> = problem
        .queries
        .iter()
        .filter(|q| *q != universe)
        .map(|q| q.to_bitset())
        .collect();
    for v in 0..problem.var_count {
        candidates.push(BitSet::singleton(problem.var_count, v));
    }
    exact_min_cover(&universe.to_bitset(), &candidates).map(|c| c.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::greedy::SharedPlanner;
    use crate::plan::optimal::{optimal_plan, replay};
    use proptest::prelude::*;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    #[test]
    fn construction_shapes() {
        let inst = SetCoverInstance::new(4, vec![bs(4, &[0, 1]), bs(4, &[2, 3]), bs(4, &[1, 2])]);
        let p = plan_problem_from_set_cover(&inst);
        assert_eq!(p.query_count(), 4); // 3 sets + universe
        let closed = closed_plan_problem_from_set_cover(&inst);
        // Prefixes of size >= 2 of each set are just the sets themselves
        // here (all size 2), plus the universe.
        assert_eq!(closed.query_count(), 4);
    }

    #[test]
    fn closure_adds_prefixes() {
        let inst = SetCoverInstance::new(4, vec![bs(4, &[0, 1, 2, 3])]);
        let closed = closed_plan_problem_from_set_cover(&inst);
        // Prefixes {0,1}, {0,1,2}, {0,1,2,3}; universe == the set itself.
        assert_eq!(closed.query_count(), 3);
    }

    /// The quantitative Theorem 3 correspondence: on closed instances,
    /// optimal plan cost = |E| + (c* − 2).
    #[test]
    fn optimal_extra_cost_equals_cover_size_minus_two() {
        let instances = vec![
            SetCoverInstance::new(
                5,
                vec![
                    bs(5, &[0, 1]),
                    bs(5, &[2, 3]),
                    bs(5, &[3, 4]),
                    bs(5, &[1, 2]),
                ],
            ),
            SetCoverInstance::new(
                6,
                vec![bs(6, &[0, 1, 2]), bs(6, &[3, 4, 5]), bs(6, &[2, 3])],
            ),
            SetCoverInstance::new(4, vec![bs(4, &[0, 1]), bs(4, &[2, 3])]),
        ];
        for inst in instances {
            let problem = closed_plan_problem_from_set_cover(&inst);
            let opt = optimal_plan(&problem).expect("small instance");
            let c_star = min_plan_cover(&problem).expect("coverable");
            let base = problem.query_count();
            assert_eq!(
                opt.total_cost,
                base + c_star - 2,
                "instance with {} queries: cost {} vs base {base} + ({c_star} − 2)",
                problem.query_count(),
                opt.total_cost,
            );
        }
    }

    /// Theorem 2 direction: the cover extracted from an optimal plan is a
    /// genuine cover of the universe.
    #[test]
    fn extracted_cover_is_valid() {
        let inst = SetCoverInstance::new(
            5,
            vec![
                bs(5, &[0, 1]),
                bs(5, &[2, 3]),
                bs(5, &[3, 4]),
                bs(5, &[1, 2]),
            ],
        );
        let problem = plan_problem_from_set_cover(&inst);
        let opt = optimal_plan(&problem).expect("small instance");
        let plan = replay(&problem, &opt);
        let cover = extract_cover(&plan, &problem);
        let mut union = BitSet::new(5);
        for s in &cover {
            union.union_with(s);
        }
        assert_eq!(union, inst.universe(), "cover must union to U");
    }

    /// Heuristic plans also yield valid covers, and the heuristic's extra
    /// cost on reduction instances is within the greedy set-cover factor.
    #[test]
    fn heuristic_on_reduction_instances() {
        let inst = SetCoverInstance::greedy_adversarial(3);
        let problem = closed_plan_problem_from_set_cover(&inst);
        let plan = SharedPlanner::full().plan(&problem);
        assert_eq!(plan.validate(), Ok(()));
        let cover = extract_cover(&plan, &problem);
        let mut union = BitSet::new(inst.universe_size());
        for s in &cover {
            union.union_with(s);
        }
        assert_eq!(union, inst.universe());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The Theorem 3 equality on random small closed instances.
        #[test]
        fn cover_plan_correspondence(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..6, 2..5), 1..4),
        ) {
            let mut universe = BitSet::new(6);
            let candidates: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(6, s.iter().copied()))
                .collect();
            for c in &candidates {
                universe.union_with(c);
            }
            // Re-map the instance onto a compact universe so the plan
            // problem's variables are exactly the covered elements.
            let elems: Vec<usize> = universe.iter().collect();
            let n = elems.len();
            let remap = |s: &BitSet| {
                BitSet::from_elements(
                    n,
                    s.iter().map(|e| elems.binary_search(&e).unwrap()),
                )
            };
            let inst = SetCoverInstance::new(n, candidates.iter().map(remap).collect());
            let problem = closed_plan_problem_from_set_cover(&inst);
            if problem.query_count() > 6 {
                // Keep the exact search tractable.
                return Ok(());
            }
            let opt = optimal_plan(&problem).expect("small instance");
            let c_star = min_plan_cover(&problem).expect("coverable");
            let base = problem.query_count();
            prop_assert_eq!(opt.total_cost, base + c_star.max(2) - 2);
        }
    }
}
