//! The non-associative baseline: common-subexpression sharing.
//!
//! "Without using information about the algebraic properties of ⊕, we can
//! only share work between queries in a rather limited manner by reusing
//! the results of sub-expressions used to compute the queries." For the
//! Figure 5 rows with A1 = N, this *is* the optimal strategy (no
//! reassociation is available, so a plan can only materialize the given
//! parse trees), and it runs in polynomial time via hash-consing — Cocke's
//! classic global common subexpression elimination, which the paper cites.
//!
//! Canonicalization under the remaining axioms (A4 sorts children, A3
//! collapses equal children) happens before hashing, so e.g. `x ⊕ y` and
//! `y ⊕ x` share under a commutative operator.

use std::collections::HashMap;

use crate::algebra::expr::{CanonTree, Expr};
use crate::algebra::AxiomSet;

/// A CSE plan: the distinct canonical subexpressions, topologically
/// ordered, plus which node computes each input expression.
#[derive(Debug, Clone)]
pub struct CsePlan {
    /// Distinct internal (operator) nodes in creation order; values are
    /// `(left, right)` indices into a combined node space where indices
    /// `0..var_count` would be variables — here nodes are keyed by
    /// canonical trees instead, so children are `NodeRef`s.
    pub nodes: Vec<(NodeRef, NodeRef)>,
    /// The node computing each input expression.
    pub roots: Vec<NodeRef>,
}

/// Reference to a variable or an internal CSE node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// Variable leaf.
    Var(usize),
    /// Internal node index into [`CsePlan::nodes`].
    Node(usize),
}

impl CsePlan {
    /// Total cost (number of ⊕ nodes) — the quantity Figure 5's PTIME
    /// rows minimize.
    pub fn total_cost(&self) -> usize {
        self.nodes.len()
    }
}

/// Builds the optimal syntactic-sharing plan for the expressions under
/// the axiom set. Polynomial: one hash-cons pass over every
/// subexpression.
///
/// For degenerate axiom sets (Figure 5's O(1) rows) every expression is
/// equivalent to every other; the plan has at most one node per input
/// expression *shape* but the cost reported is 0 — nothing needs
/// computing beyond a constant.
pub fn cse_plan(exprs: &[Expr], axioms: AxiomSet) -> CsePlan {
    if axioms.is_degenerate() {
        return CsePlan {
            nodes: Vec::new(),
            roots: exprs.iter().map(|_| NodeRef::Var(0)).collect(),
        };
    }
    let mut interned: HashMap<CanonTree, NodeRef> = HashMap::new();
    let mut nodes: Vec<(NodeRef, NodeRef)> = Vec::new();
    let roots = exprs
        .iter()
        .map(|e| intern(e, axioms, &mut interned, &mut nodes))
        .collect();
    CsePlan { nodes, roots }
}

fn intern(
    expr: &Expr,
    axioms: AxiomSet,
    interned: &mut HashMap<CanonTree, NodeRef>,
    nodes: &mut Vec<(NodeRef, NodeRef)>,
) -> NodeRef {
    match expr {
        Expr::Var(v) => NodeRef::Var(*v),
        Expr::Op(a, b) => {
            let ra = intern(a, axioms, interned, nodes);
            let rb = intern(b, axioms, interned, nodes);
            // Canonical key of this subexpression under the axioms.
            let key = canon_of(expr, axioms);
            if let CanonTree::Var(v) = key {
                // Idempotence collapsed the node to a variable.
                return NodeRef::Var(v);
            }
            if let Some(&r) = interned.get(&key) {
                return r;
            }
            // A3 collapse below the root may make ra == rb with the key
            // still an Op (e.g. (x⊕y)⊕(y⊕x) under A3+A4 canonicalizes to
            // x⊕y): reuse the child instead of emitting a no-op node.
            if axioms.idempotent() && ra == rb {
                interned.insert(key, ra);
                return ra;
            }
            let idx = nodes.len();
            nodes.push((ra, rb));
            let r = NodeRef::Node(idx);
            interned.insert(key, r);
            r
        }
    }
}

fn canon_of(expr: &Expr, axioms: AxiomSet) -> CanonTree {
    match expr.canon_key(axioms) {
        crate::algebra::expr::CanonKey::Tree(t) => t,
        // Associative axiom sets never reach here (cse is the
        // non-associative planner), but handle them by re-canonicalizing
        // structurally so the function is total.
        _ => structural(expr, axioms),
    }
}

fn structural(expr: &Expr, axioms: AxiomSet) -> CanonTree {
    match expr {
        Expr::Var(v) => CanonTree::Var(*v),
        Expr::Op(a, b) => {
            let ca = structural(a, axioms);
            let cb = structural(b, axioms);
            if axioms.idempotent() && ca == cb {
                return ca;
            }
            let (l, r) = if axioms.commutative() && cb < ca {
                (cb, ca)
            } else {
                (ca, cb)
            };
            CanonTree::Op(Box::new(l), Box::new(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(v: usize) -> Expr {
        Expr::Var(v)
    }

    #[test]
    fn identical_subtrees_shared() {
        // (x0 ⊕ x1) and (x0 ⊕ x1) ⊕ x2 share the inner node.
        let e1 = Expr::op(x(0), x(1));
        let e2 = Expr::op(Expr::op(x(0), x(1)), x(2));
        let plan = cse_plan(&[e1, e2], AxiomSet::NONE);
        assert_eq!(plan.total_cost(), 2);
        assert_eq!(plan.roots[0], NodeRef::Node(0));
        assert_eq!(plan.roots[1], NodeRef::Node(1));
    }

    #[test]
    fn no_sharing_without_axioms_for_reordered() {
        let e1 = Expr::op(x(0), x(1));
        let e2 = Expr::op(x(1), x(0));
        let plan = cse_plan(&[e1.clone(), e2.clone()], AxiomSet::NONE);
        assert_eq!(plan.total_cost(), 2, "x⊕y and y⊕x differ syntactically");
        // With commutativity they share.
        let plan = cse_plan(&[e1, e2], AxiomSet::A4);
        assert_eq!(plan.total_cost(), 1);
        assert_eq!(plan.roots[0], plan.roots[1]);
    }

    #[test]
    fn idempotence_collapses_self_merge() {
        let e = Expr::op(x(0), x(0));
        let plan = cse_plan(&[e], AxiomSet::A3);
        assert_eq!(plan.total_cost(), 0, "x⊕x = x needs no node");
        assert_eq!(plan.roots[0], NodeRef::Var(0));
    }

    #[test]
    fn idempotent_commutative_deep_collapse() {
        // (x⊕y) ⊕ (y⊕x) under A3+A4 = x⊕y: one node.
        let e = Expr::op(Expr::op(x(0), x(1)), Expr::op(x(1), x(0)));
        let plan = cse_plan(&[e], AxiomSet::A3.with(AxiomSet::A4));
        assert_eq!(plan.total_cost(), 1);
    }

    #[test]
    fn degenerate_algebra_costs_nothing() {
        let e = Expr::op(Expr::op(x(0), x(1)), x(2));
        let ax = AxiomSet::A2.with(AxiomSet::A3).with(AxiomSet::A5);
        let plan = cse_plan(&[e], ax);
        assert_eq!(plan.total_cost(), 0);
    }

    #[test]
    fn shared_middle_subtrees() {
        // Three queries share a middle subtree (x1 ⊕ x2).
        let mid = Expr::op(x(1), x(2));
        let e1 = Expr::op(x(0), mid.clone());
        let e2 = Expr::op(mid.clone(), x(3));
        let e3 = mid.clone();
        let plan = cse_plan(&[e1, e2, e3], AxiomSet::NONE);
        // Nodes: mid, e1, e2 — e3 is mid itself.
        assert_eq!(plan.total_cost(), 3);
        assert_eq!(plan.roots[2], NodeRef::Node(0));
    }

    #[test]
    fn cost_is_number_of_distinct_subexpressions() {
        // A balanced tree over 4 variables evaluated twice costs 3, not 6.
        let t = Expr::op(Expr::op(x(0), x(1)), Expr::op(x(2), x(3)));
        let plan = cse_plan(&[t.clone(), t], AxiomSet::NONE);
        assert_eq!(plan.total_cost(), 3);
    }
}
