//! Shared plans for non-idempotent aggregates (Section VII).
//!
//! The paper's ongoing-work section extends shared aggregation beyond
//! top-k to the aggregates bidding programs want — "sum, average, and
//! count aggregates over bid phrases". Those operators are commutative
//! monoids but *not* idempotent, so a plan node may feed a query only if
//! the node sets used for that query **partition** its variable set:
//! overlapping unions would double-count inputs.
//!
//! [`DisjointPlanner`] mirrors the Section II-D two-stage heuristic under
//! that constraint: stage 1 (fragments) is unchanged — fragments are
//! equivalence classes and therefore already disjoint — while stage 2
//! completes each query with a greedy *disjoint* cover (a partition), in
//! descending search-rate order so probable queries get first pick of the
//! shared blocks. The resulting [`PlanDag`] contains no overlapping
//! merges, which is exactly the property
//! [`PlanDag::evaluate`](super::PlanDag::evaluate) demands of
//! non-idempotent operators.

use ssa_setcover::greedy::greedy_disjoint_cover_views;
use ssa_setcover::{AsVarSetRef, VarSetRef};

use super::fragments::build_fragment_plan;
use super::{PlanDag, PlanProblem};

/// The Section VII planner for sum/count/product-style aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct DisjointPlanner;

impl DisjointPlanner {
    /// Builds a disjoint-merge plan computing every query. The plan
    /// validates and `has_overlapping_merges()` is false, so evaluation
    /// with any commutative monoid is exact.
    pub fn plan(&self, problem: &PlanProblem) -> PlanDag {
        let (mut plan, _fragments, _per_query) = build_fragment_plan(problem);
        // Most-probable queries first, as in the idempotent planner.
        let mut order: Vec<usize> = (0..problem.query_count()).collect();
        order.sort_by(|&a, &b| {
            problem.search_rates[b]
                .total_cmp(&problem.search_rates[a])
                .then(a.cmp(&b))
        });
        for q in order {
            let target = &problem.queries[q];
            if plan.node_for(target).is_some() {
                continue;
            }
            let chosen: Vec<usize> = {
                let views: Vec<VarSetRef<'_>> =
                    (0..plan.node_count()).map(|i| plan.vars(i)).collect();
                greedy_disjoint_cover_views(target.as_set_ref(), &views)
                    .expect("singleton leaves always allow a partition")
                    .chosen
            };
            plan.merge_chain(&chosen);
        }
        for q in &problem.queries {
            plan.bind_query(q);
        }
        debug_assert_eq!(plan.validate(), Ok(()));
        debug_assert!(!plan.has_overlapping_merges());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::ops::{CountOp, SumOp};
    use crate::plan::cost::{expected_cost, unshared_expected_cost};
    use crate::plan::SharedPlanner;
    use proptest::prelude::*;
    use ssa_setcover::BitSet;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    #[test]
    fn produces_disjoint_valid_plans() {
        let problem = PlanProblem::new(
            8,
            vec![
                bs(8, &[0, 1, 2, 3, 4, 5]),
                bs(8, &[0, 1, 2, 3, 6, 7]),
                bs(8, &[0, 1, 2, 3]),
            ],
            Some(vec![0.9, 0.7, 0.5]),
        );
        let plan = DisjointPlanner.plan(&problem);
        assert_eq!(plan.validate(), Ok(()));
        assert!(!plan.has_overlapping_merges());
        assert_eq!(plan.query_count(), 3);
    }

    #[test]
    fn sum_evaluation_matches_naive() {
        let problem = PlanProblem::new(
            6,
            vec![bs(6, &[0, 1, 2, 3]), bs(6, &[0, 1, 4, 5]), bs(6, &[2, 3])],
            None,
        );
        let plan = DisjointPlanner.plan(&problem);
        let leaves: Vec<i64> = vec![1, 2, 4, 8, 16, 32];
        let (results, ops) = plan.evaluate(&SumOp, &leaves, &[true, true, true]);
        assert_eq!(results[0], Some(1 + 2 + 4 + 8));
        assert_eq!(results[1], Some(1 + 2 + 16 + 32));
        assert_eq!(results[2], Some(4 + 8));
        // Sharing happened: the {0,1} and {2,3} fragments are computed
        // once. Naive would need 3 + 3 + 1 = 7 ops.
        assert!(ops < 7, "ops {ops} should beat naive 7");
    }

    #[test]
    fn count_queries_for_bidding_programs() {
        // Section VII's motivating use: "the total number of users who
        // have searched for one of a set of bid phrases" — counts over
        // phrase sets. Model phrases as variables with per-phrase counts.
        let problem = PlanProblem::new(
            5,
            vec![bs(5, &[0, 1, 2]), bs(5, &[1, 2, 3, 4]), bs(5, &[1, 2])],
            None,
        );
        let plan = DisjointPlanner.plan(&problem);
        let counts: Vec<u64> = vec![10, 20, 30, 40, 50];
        let (results, _) = plan.evaluate(&CountOp, &counts, &[true, true, true]);
        assert_eq!(results[0], Some(60));
        assert_eq!(results[1], Some(140));
        assert_eq!(results[2], Some(50));
    }

    #[test]
    fn disjoint_shares_less_than_idempotent_but_beats_unshared() {
        // Overlapping-but-not-nested queries: the idempotent planner can
        // reuse overlapping unions, the disjoint one cannot — but
        // fragments still buy it real sharing.
        let problem = PlanProblem::new(
            12,
            vec![
                bs(12, &[0, 1, 2, 3, 4, 5, 6, 7]),
                bs(12, &[0, 1, 2, 3, 8, 9]),
                bs(12, &[0, 1, 2, 3, 10, 11]),
            ],
            Some(vec![0.9, 0.9, 0.9]),
        );
        let disjoint = DisjointPlanner.plan(&problem);
        let idempotent = SharedPlanner::full().plan(&problem);
        let unshared = unshared_expected_cost(&problem);
        let d_cost = expected_cost(&disjoint, &problem.search_rates);
        let i_cost = expected_cost(&idempotent, &problem.search_rates);
        assert!(
            d_cost < unshared,
            "disjoint {d_cost} vs unshared {unshared}"
        );
        assert!(
            i_cost <= d_cost + 1e-9,
            "idempotent sharing {i_cost} should be at least as good as disjoint {d_cost}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The disjoint planner always yields overlap-free valid plans
        /// whose sum evaluation matches a naive scan.
        #[test]
        fn disjoint_plans_are_always_exact_for_sums(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..9, 1..7), 1..6),
            values in proptest::collection::vec(-50i64..50, 9),
        ) {
            let queries: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(9, s.iter().copied()))
                .collect();
            let problem = PlanProblem::new(9, queries.clone(), None);
            let plan = DisjointPlanner.plan(&problem);
            prop_assert_eq!(plan.validate(), Ok(()));
            prop_assert!(!plan.has_overlapping_merges());
            let occurring = vec![true; queries.len()];
            let (results, _) = plan.evaluate(&SumOp, &values, &occurring);
            for (q, set) in queries.iter().enumerate() {
                let naive: i64 = set.iter().map(|v| values[v]).sum();
                prop_assert_eq!(results[q], Some(naive), "query {}", q);
            }
        }
    }
}
