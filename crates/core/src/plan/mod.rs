//! Shared aggregation plans (Section II).
//!
//! An *A-plan* for a set of aggregate queries is a DAG in which each leaf
//! is a variable (an advertiser's current bid/score), each internal node
//! has in-degree 2 and aggregates its two children, and every query is
//! A-equivalent to some node's label. Under the semilattice axioms of the
//! top-k operator, Lemma 1 lets us identify every node with its *variable
//! set*, which is how [`PlanDag`] stores labels.
//!
//! Submodules:
//!
//! * [`cost`] — total/extra cost and the probabilistic expected
//!   materialization cost `Σ_v (1 − Π_{q: v⇝q} (1 − sr_q))`;
//! * [`fragments`] — stage 1 of the paper's heuristic (group variables by
//!   query-membership signature);
//! * [`greedy`] — stage 2 (greedy completion by expected greedy coverage
//!   gain) and the [`SharedPlanner`] facade;
//! * [`cse`] — the non-associative baseline planner (syntactic sharing
//!   only), polynomial per Figure 5 row 1;
//! * [`optimal`] — exhaustive minimum-cost planner for small instances;
//! * [`reduction`] — the executable set-cover constructions behind
//!   Theorems 2 and 3.

pub mod cost;
pub mod cse;
pub mod disjoint;
pub mod fragments;
pub mod greedy;
pub mod maintenance;
pub mod optimal;
pub mod reduction;

pub use disjoint::DisjointPlanner;
pub use greedy::{reference_plan, PlannerMode, SharedPlanner};
pub use maintenance::PlanMaintainer;

use std::collections::HashMap;

use ssa_setcover::BitSet;

use crate::algebra::ops::AggregateOp;
use crate::exec;

/// A topological level schedule for a [`PlanDag`].
///
/// Level `d` holds the internal nodes whose longest leaf-to-node path has
/// length `d + 1` (leaves sit at depth 0 and need no materialization).
/// Both children of a level-`d` node live at strictly smaller depths, so
/// all nodes within one level can be materialized concurrently; levels
/// themselves run in ascending order. Within a level, nodes are kept in
/// ascending index order so parallel evaluation visits (and counts) the
/// same work as the sequential index-order sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    levels: Vec<Vec<usize>>,
}

impl LevelSchedule {
    /// The levels, shallowest first; each is sorted ascending by node
    /// index.
    #[inline]
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Depth of the plan: the number of sequential parallel steps one
    /// round needs (the critical path length).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// One node of a shared plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The set of variables this node aggregates (its label's canonical
    /// form, per Lemma 1).
    pub vars: BitSet,
    /// The two children, for internal nodes; `None` for variable leaves.
    pub children: Option<(usize, usize)>,
}

/// A shared aggregation plan over `var_count` variables.
///
/// Nodes `0..var_count` are the variable leaves. Internal nodes are
/// deduplicated by variable set: merging two nodes whose union already
/// exists returns the existing node (the semilattice identification).
#[derive(Debug, Clone)]
pub struct PlanDag {
    var_count: usize,
    nodes: Vec<PlanNode>,
    /// Packed child pairs, one per node (`[NO_KIDS; 2]` for leaves),
    /// mirroring `nodes[idx].children`. The per-round walkers (needed
    /// set, materialization, cone masks) traverse this flat `u32` arena —
    /// 8 bytes per node streamed contiguously — instead of pulling each
    /// `PlanNode`'s label `BitSet` through cache alongside the topology.
    children_packed: Vec<[u32; 2]>,
    by_set: HashMap<BitSet, usize>,
    /// `queries[q]` = index of the node computing query `q`.
    queries: Vec<usize>,
}

/// Sentinel child index marking a leaf in `PlanDag::children_packed`.
const NO_KIDS: u32 = u32::MAX;

impl PlanDag {
    /// An empty plan: just the variable leaves.
    pub fn new(var_count: usize) -> Self {
        let mut nodes = Vec::with_capacity(var_count);
        let mut by_set = HashMap::with_capacity(var_count);
        for v in 0..var_count {
            let set = BitSet::singleton(var_count, v);
            by_set.insert(set.clone(), v);
            nodes.push(PlanNode {
                vars: set,
                children: None,
            });
        }
        PlanDag {
            var_count,
            nodes,
            children_packed: vec![[NO_KIDS; 2]; var_count],
            by_set,
            queries: Vec::new(),
        }
    }

    /// Heap footprint of the plan in bytes: node labels, the packed child
    /// arena, and the dedup map's keys. For the memory-scaling gate.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.capacity() * size_of::<PlanNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.vars.heap_bytes())
                .sum::<usize>()
            + self.children_packed.capacity() * size_of::<[u32; 2]>()
            + self.queries.capacity() * size_of::<usize>()
            + self
                .by_set
                .keys()
                .map(|k| k.heap_bytes() + size_of::<usize>())
                .sum::<usize>()
    }

    /// Number of variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// All nodes; indices `0..var_count` are leaves.
    #[inline]
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The node computing each bound query.
    #[inline]
    pub fn query_nodes(&self) -> &[usize] {
        &self.queries
    }

    /// Number of bound queries.
    #[inline]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Looks up a node by its variable set.
    pub fn node_for(&self, vars: &BitSet) -> Option<usize> {
        self.by_set.get(vars).copied()
    }

    /// Merges two existing nodes, returning the node whose variable set is
    /// the union. Deduplicates: if a node with that set exists, it is
    /// returned unchanged (no new cost).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "bad node id");
        let union = self.nodes[a].vars.union(&self.nodes[b].vars);
        if let Some(&idx) = self.by_set.get(&union) {
            return idx;
        }
        let idx = self.nodes.len();
        self.by_set.insert(union.clone(), idx);
        self.nodes.push(PlanNode {
            vars: union,
            children: Some((a, b)),
        });
        self.children_packed.push([a as u32, b as u32]);
        idx
    }

    /// Aggregates a list of existing nodes left-to-right (a chain),
    /// returning the final node. Deduplication applies at every step.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn merge_chain(&mut self, nodes: &[usize]) -> usize {
        assert!(!nodes.is_empty(), "cannot chain zero nodes");
        let mut acc = nodes[0];
        for &n in &nodes[1..] {
            acc = self.merge(acc, n);
        }
        acc
    }

    /// Rebinds an already-bound query to a different node (plan
    /// maintenance after an interest-set change).
    ///
    /// # Panics
    /// Panics on a bad query or node index.
    pub fn rebind_query(&mut self, q: usize, node: usize) {
        assert!(q < self.queries.len(), "query out of range");
        assert!(node < self.nodes.len(), "node out of range");
        self.queries[q] = node;
    }

    /// Binds the next query (appending) to the node computing `vars`.
    ///
    /// # Panics
    /// Panics if no node has this variable set — the plan is incomplete.
    pub fn bind_query(&mut self, vars: &BitSet) -> usize {
        let idx = self
            .node_for(vars)
            .expect("query bound before its node exists");
        self.queries.push(idx);
        idx
    }

    /// Total cost: the number of internal (in-degree 2) nodes — "the
    /// number of nodes with non-zero in-degree", i.e. top-k aggregation
    /// operations materializable per round.
    pub fn total_cost(&self) -> usize {
        self.nodes.len() - self.var_count
    }

    /// Extra cost: total cost minus the base cost `|E|` (queries that are
    /// not bare variables).
    pub fn extra_cost(&self) -> usize {
        let base = self
            .queries
            .iter()
            .filter(|&&idx| idx >= self.var_count)
            .count();
        self.total_cost().saturating_sub(base)
    }

    /// Validates the A-plan invariants: every internal node's variable set
    /// is the union of its children's; children precede parents; every
    /// bound query points at a node with exactly its variable set.
    pub fn validate(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            match node.children {
                None => {
                    if idx >= self.var_count {
                        return Err(format!("internal node {idx} has no children"));
                    }
                    if node.vars.len() != 1 {
                        return Err(format!("leaf {idx} is not a singleton"));
                    }
                }
                Some((a, b)) => {
                    if idx < self.var_count {
                        return Err(format!("leaf {idx} has children"));
                    }
                    if a >= idx || b >= idx {
                        return Err(format!("node {idx} references later node"));
                    }
                    let union = self.nodes[a].vars.union(&self.nodes[b].vars);
                    if union != node.vars {
                        return Err(format!("node {idx} label is not its children's union"));
                    }
                }
            }
        }
        for (q, &idx) in self.queries.iter().enumerate() {
            if idx >= self.nodes.len() {
                return Err(format!("query {q} bound to missing node"));
            }
        }
        Ok(())
    }

    /// True iff some internal node merges children with overlapping
    /// variable sets. Such plans are only correct for idempotent
    /// operators (duplicates collapse); non-idempotent evaluation rejects
    /// them.
    pub fn has_overlapping_merges(&self) -> bool {
        self.nodes.iter().any(|n| match n.children {
            Some((a, b)) => !self.nodes[a].vars.is_disjoint(&self.nodes[b].vars),
            None => false,
        })
    }

    /// For each node, the set of *bound queries* it feeds (`v ⇝ q`):
    /// query-node sets seeded, then propagated down to children. Returned
    /// as bit sets over query indices.
    pub fn reach_sets(&self) -> Vec<BitSet> {
        let m = self.queries.len();
        let mut reach: Vec<BitSet> = (0..self.nodes.len()).map(|_| BitSet::new(m)).collect();
        for (q, &idx) in self.queries.iter().enumerate() {
            reach[idx].insert(q);
        }
        // Children inherit every query their parent feeds; process parents
        // before children (indices descend since children precede parents).
        for idx in (0..self.nodes.len()).rev() {
            if let Some((a, b)) = self.nodes[idx].children {
                let r = reach[idx].clone();
                reach[a].union_with(&r);
                reach[b].union_with(&r);
            }
        }
        reach
    }

    /// Marks the cone of `root`: the node itself plus every descendant
    /// reachable through `children` edges. The incremental cost tracker
    /// diffs two cone masks to find exactly the nodes whose reach sets a
    /// query rebind changes, instead of rescanning the whole plan.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn cone_mask(&self, root: usize) -> Vec<bool> {
        assert!(root < self.nodes.len(), "node out of range");
        let mut mask = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            if mask[idx] {
                continue;
            }
            mask[idx] = true;
            let [a, b] = self.children_packed[idx];
            if a != NO_KIDS {
                stack.push(a as usize);
                stack.push(b as usize);
            }
        }
        mask
    }

    /// Checks the `evaluate` preconditions shared by the sequential and
    /// parallel paths.
    fn check_evaluate_inputs<O: AggregateOp>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
    ) {
        assert_eq!(leaves.len(), self.var_count, "one value per variable");
        assert_eq!(occurring.len(), self.queries.len(), "one flag per query");
        if !op.axioms().idempotent() {
            assert!(
                !self.has_overlapping_merges(),
                "plan has overlapping merges; operator {} is not idempotent",
                op.name()
            );
        }
    }

    /// Marks the nodes needed this round: the descendants of every
    /// occurring query's node.
    fn needed_nodes(&self, occurring: &[bool]) -> Vec<bool> {
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self
            .queries
            .iter()
            .zip(occurring)
            .filter(|(_, &occ)| occ)
            .map(|(&idx, _)| idx)
            .collect();
        while let Some(idx) = stack.pop() {
            if needed[idx] {
                continue;
            }
            needed[idx] = true;
            let [a, b] = self.children_packed[idx];
            if a != NO_KIDS {
                stack.push(a as usize);
                stack.push(b as usize);
            }
        }
        needed
    }

    /// Evaluates the plan for one round.
    ///
    /// `leaves[v]` is variable `v`'s current value; `occurring[q]` says
    /// whether query `q`'s bid phrase occurs this round. Only nodes needed
    /// by occurring queries are materialized (the cost model's notion of
    /// materialization). Returns per-query results (`None` for phrases
    /// that did not occur) and the number of ⊕ applications performed.
    ///
    /// # Panics
    /// Panics if the operator is not idempotent but the plan contains
    /// overlapping merges, or if input lengths disagree.
    pub fn evaluate<O: AggregateOp>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
    ) -> (Vec<Option<O::Value>>, usize) {
        self.check_evaluate_inputs(op, leaves, occurring);
        let mut memo: Vec<Option<O::Value>> = vec![None; self.nodes.len()];
        for (v, value) in leaves.iter().enumerate() {
            memo[v] = Some(value.clone());
        }
        let mut ops = 0usize;
        let needed = self.needed_nodes(occurring);
        // Materialize in index order (children precede parents).
        for idx in self.var_count..self.nodes.len() {
            if !needed[idx] || memo[idx].is_some() {
                continue;
            }
            let [a, b] = self.children_packed[idx];
            let (a, b) = (a as usize, b as usize);
            let value = op.combine(
                memo[a].as_ref().expect("child computed"),
                memo[b].as_ref().expect("child computed"),
            );
            ops += 1;
            memo[idx] = Some(value);
        }
        let results = self
            .queries
            .iter()
            .zip(occurring)
            .map(|(&idx, &occ)| if occ { memo[idx].clone() } else { None })
            .collect();
        (results, ops)
    }

    /// Computes the level schedule: internal nodes grouped by longest-path
    /// depth from the leaves. Computed once at plan-build time and reused
    /// every round by [`PlanDag::evaluate_parallel`].
    pub fn level_schedule(&self) -> LevelSchedule {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0usize;
        for idx in self.var_count..self.nodes.len() {
            let [a, b] = self.children_packed[idx];
            depth[idx] = depth[a as usize].max(depth[b as usize]) + 1;
            max_depth = max_depth.max(depth[idx]);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth];
        // Ascending index order within each level falls out of the sweep.
        for idx in self.var_count..self.nodes.len() {
            levels[depth[idx] - 1].push(idx);
        }
        LevelSchedule { levels }
    }

    /// Level-parallel [`PlanDag::evaluate`]: materializes each schedule
    /// level's needed nodes concurrently on `threads` scoped workers.
    ///
    /// Within a level no node depends on another (children live at
    /// strictly smaller depths), so each worker reads already-materialized
    /// values and writes its own slot. Results, the ⊕ count, and the set
    /// of materialized nodes are identical to the sequential path for any
    /// thread count; `threads <= 1` short-circuits to [`PlanDag::evaluate`].
    ///
    /// # Panics
    /// Panics on the same conditions as [`PlanDag::evaluate`], or if
    /// `schedule` was not produced by this plan's
    /// [`PlanDag::level_schedule`].
    pub fn evaluate_parallel<O>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
        schedule: &LevelSchedule,
        threads: usize,
    ) -> (Vec<Option<O::Value>>, usize)
    where
        O: AggregateOp + Sync,
        O::Value: Send + Sync,
    {
        if threads <= 1 {
            return self.evaluate(op, leaves, occurring);
        }
        self.check_evaluate_inputs(op, leaves, occurring);
        let scheduled: usize = schedule.levels.iter().map(Vec::len).sum();
        assert_eq!(
            scheduled,
            self.nodes.len() - self.var_count,
            "schedule does not cover this plan's internal nodes"
        );
        let mut memo: Vec<Option<O::Value>> = vec![None; self.nodes.len()];
        for (v, value) in leaves.iter().enumerate() {
            memo[v] = Some(value.clone());
        }
        let mut ops = 0usize;
        let needed = self.needed_nodes(occurring);
        for level in &schedule.levels {
            let jobs: Vec<usize> = level.iter().copied().filter(|&idx| needed[idx]).collect();
            if jobs.is_empty() {
                continue;
            }
            // Workers only read children (materialized in earlier levels);
            // results come back in job order and are written back serially.
            let values = {
                let memo_ref = &memo;
                exec::parallel_map(jobs.len(), threads, |j| {
                    let idx = jobs[j];
                    let [a, b] = self.children_packed[idx];
                    op.combine(
                        memo_ref[a as usize].as_ref().expect("child computed"),
                        memo_ref[b as usize].as_ref().expect("child computed"),
                    )
                })
            };
            ops += jobs.len();
            for (idx, value) in jobs.into_iter().zip(values) {
                memo[idx] = Some(value);
            }
        }
        let results = self
            .queries
            .iter()
            .zip(occurring)
            .map(|(&idx, &occ)| if occ { memo[idx].clone() } else { None })
            .collect();
        (results, ops)
    }
}

/// A shared-aggregation problem instance: queries as variable sets (the
/// Lemma 1 canonical form) plus their search rates.
#[derive(Debug, Clone)]
pub struct PlanProblem {
    /// Universe size (number of variables / advertisers).
    pub var_count: usize,
    /// Query variable sets `X_q`.
    pub queries: Vec<BitSet>,
    /// Per-query search rates `sr_q` (probability the phrase occurs in a
    /// round).
    pub search_rates: Vec<f64>,
}

impl PlanProblem {
    /// Builds a problem; rates default to 1.0 (the deterministic case of
    /// Section II-C) when `search_rates` is `None`.
    ///
    /// # Panics
    /// Panics if inputs are inconsistent (wrong universe, rate counts,
    /// rates out of `[0,1]`, or an empty query).
    pub fn new(var_count: usize, queries: Vec<BitSet>, search_rates: Option<Vec<f64>>) -> Self {
        for (q, set) in queries.iter().enumerate() {
            assert_eq!(set.capacity(), var_count, "query {q} universe mismatch");
            assert!(!set.is_empty(), "query {q} is empty");
        }
        let search_rates = search_rates.unwrap_or_else(|| vec![1.0; queries.len()]);
        assert_eq!(search_rates.len(), queries.len(), "one rate per query");
        for (q, &r) in search_rates.iter().enumerate() {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "query {q} rate {r} out of range"
            );
        }
        PlanProblem {
            var_count,
            queries,
            search_rates,
        }
    }

    /// Number of queries `m`.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Total input size `Σ_q |X_q|` (the paper's running-time parameter).
    pub fn total_query_size(&self) -> usize {
        self.queries.iter().map(BitSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::ops::{MaxOp, SumOp, TopKOp};
    use crate::topk::KList;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    #[test]
    fn merge_dedups_by_var_set() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let ab2 = plan.merge(1, 0);
        assert_eq!(ab, ab2, "union {{0,1}} must be a single node");
        assert_eq!(plan.total_cost(), 1);
        let abc = plan.merge(ab, 2);
        assert_eq!(plan.total_cost(), 2);
        assert_eq!(plan.nodes()[abc].vars, bs(4, &[0, 1, 2]));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn merge_chain_reuses_prefixes() {
        let mut plan = PlanDag::new(4);
        plan.merge_chain(&[0, 1, 2]);
        let before = plan.total_cost();
        plan.merge_chain(&[0, 1, 2, 3]); // shares the {0,1} and {0,1,2} prefixes
        assert_eq!(plan.total_cost(), before + 1);
    }

    #[test]
    fn cost_accounting() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        plan.queries.push(abc);
        // total 2, base 1 (one non-variable query) → extra 1 (node ab).
        assert_eq!(plan.total_cost(), 2);
        assert_eq!(plan.extra_cost(), 1);
        // A query bound to a bare variable adds no base cost.
        plan.queries.push(0);
        assert_eq!(plan.extra_cost(), 1);
    }

    #[test]
    fn bind_query_finds_node() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let idx = plan.bind_query(&bs(3, &[0, 1]));
        assert_eq!(idx, ab);
    }

    #[test]
    #[should_panic(expected = "before its node exists")]
    fn bind_query_rejects_missing() {
        let mut plan = PlanDag::new(3);
        plan.bind_query(&bs(3, &[0, 1]));
    }

    #[test]
    fn reach_sets_propagate_to_descendants() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.queries = vec![abc, abd];
        let reach = plan.reach_sets();
        // ab feeds both queries; leaf 2 only query 0; leaf 3 only query 1.
        assert_eq!(reach[ab], bs(2, &[0, 1]));
        assert_eq!(reach[2], bs(2, &[0]));
        assert_eq!(reach[3], bs(2, &[1]));
        assert_eq!(reach[abc], bs(2, &[0]));
    }

    #[test]
    fn evaluate_topk_matches_direct() {
        let op = TopKOp { k: 2 };
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.queries = vec![abc, abd];
        let leaves: Vec<KList<i64>> = [10i64, 40, 20, 30]
            .iter()
            .map(|&v| KList::singleton(2, v))
            .collect();
        let (results, ops) = plan.evaluate(&op, &leaves, &[true, true]);
        assert_eq!(results[0].as_ref().unwrap().items(), &[40, 20]);
        assert_eq!(results[1].as_ref().unwrap().items(), &[40, 30]);
        assert_eq!(ops, 3, "ab shared once, plus two query merges");
    }

    #[test]
    fn evaluate_skips_non_occurring_queries() {
        let op = MaxOp;
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let cd = plan.merge(2, 3);
        let abcd = plan.merge(ab, cd);
        plan.queries = vec![ab, abcd];
        let leaves = vec![1i64, 2, 3, 4];
        let (results, ops) = plan.evaluate(&op, &leaves, &[true, false]);
        assert_eq!(results[0], Some(2));
        assert_eq!(results[1], None);
        assert_eq!(ops, 1, "only ab materialized");
    }

    #[test]
    fn evaluate_rejects_nonidempotent_on_overlap() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let bc = plan.merge(1, 2);
        let abc = plan.merge(ab, bc); // overlapping at variable 1
        plan.queries = vec![abc];
        assert!(plan.has_overlapping_merges());
        let plan2 = plan.clone();
        let result = std::panic::catch_unwind(move || {
            plan2.evaluate(&SumOp, &[1i64, 2, 3], &[true]);
        });
        assert!(result.is_err(), "sum over overlapping plan must panic");
        // Max (idempotent) is fine and correct.
        let (results, _) = plan.evaluate(&MaxOp, &[1i64, 2, 3], &[true]);
        assert_eq!(results[0], Some(3));
    }

    #[test]
    fn level_schedule_orders_children_before_parents() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let cd = plan.merge(2, 3);
        let abc = plan.merge(ab, 2);
        let abcd = plan.merge(ab, cd);
        let sched = plan.level_schedule();
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.levels()[0], vec![ab, cd]);
        assert_eq!(sched.levels()[1], vec![abc, abcd]);
    }

    #[test]
    fn evaluate_parallel_matches_sequential() {
        let op = TopKOp { k: 3 };
        let mut plan = PlanDag::new(8);
        // A few layers of shared structure with one unused branch.
        let chains: Vec<usize> = (0..4).map(|i| plan.merge(2 * i, 2 * i + 1)).collect();
        let left = plan.merge(chains[0], chains[1]);
        let right = plan.merge(chains[2], chains[3]);
        let all = plan.merge(left, right);
        plan.queries = vec![left, right, all, chains[3]];
        let sched = plan.level_schedule();
        let leaves: Vec<KList<i64>> = (0..8).map(|v| KList::singleton(3, v * 7 % 13)).collect();
        for occurring in [
            [true, true, true, true],
            [true, false, false, true],
            [false, false, true, false],
            [false, false, false, false],
        ] {
            let (seq, seq_ops) = plan.evaluate(&op, &leaves, &occurring);
            for threads in [2, 4] {
                let (par, par_ops) =
                    plan.evaluate_parallel(&op, &leaves, &occurring, &sched, threads);
                assert_eq!(seq, par, "results must be bit-identical");
                assert_eq!(seq_ops, par_ops, "op counts must agree");
            }
        }
    }

    #[test]
    fn evaluate_parallel_single_thread_short_circuits() {
        let op = MaxOp;
        let mut plan = PlanDag::new(2);
        let ab = plan.merge(0, 1);
        plan.queries = vec![ab];
        let sched = plan.level_schedule();
        let (res, ops) = plan.evaluate_parallel(&op, &[3i64, 5], &[true], &sched, 1);
        assert_eq!(res[0], Some(5));
        assert_eq!(ops, 1);
    }

    #[test]
    fn plan_problem_validation() {
        let q = vec![bs(3, &[0, 1]), bs(3, &[2])];
        let p = PlanProblem::new(3, q, Some(vec![0.5, 1.0]));
        assert_eq!(p.query_count(), 2);
        assert_eq!(p.total_query_size(), 3);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn plan_problem_rejects_bad_rate() {
        PlanProblem::new(2, vec![bs(2, &[0])], Some(vec![1.5]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn plan_problem_rejects_empty_query() {
        PlanProblem::new(2, vec![BitSet::new(2)], None);
    }
}
