//! Shared aggregation plans (Section II).
//!
//! An *A-plan* for a set of aggregate queries is a DAG in which each leaf
//! is a variable (an advertiser's current bid/score), each internal node
//! has in-degree 2 and aggregates its two children, and every query is
//! A-equivalent to some node's label. Under the semilattice axioms of the
//! top-k operator, Lemma 1 lets us identify every node with its *variable
//! set*, which is how [`PlanDag`] stores labels.
//!
//! # Node-set storage at scale
//!
//! Variable sets are stored *adaptively sparse* ([`VarSet`]/[`VarSetRef`]
//! from `ssa-setcover`), not as dense n-bit sets — at a million
//! advertisers a dense label costs ~125 kB per node regardless of
//! content, which was the documented reason plan-bearing strategies used
//! to stop at ~100k. Internal-node sets live in one CSR pool
//! (`pool_elems` + per-node spans, the `LeafCones` pattern), with two
//! structural tricks that keep fragment chains linear instead of
//! quadratic:
//!
//! * **Implicit leaves** — nodes `0..var_count` are singletons by
//!   construction, so no storage, hash, or interning entry exists for
//!   them; `vars(v)` serves a one-element slice of a shared identity
//!   array and `PlanDag::new` is O(n), not O(n²/8).
//! * **Prefix extension** — merging the pool's *tail* node with a set
//!   strictly above its maximum appends only the new elements and spans
//!   the union over the shared prefix, so a k-leaf fragment chain stores
//!   O(k) elements total (not O(k²)) and each step extends the cached
//!   FNV content hash incrementally instead of rehashing the prefix.
//!
//! Interning (`node_for`, merge dedup) keys on the 64-bit content hash
//! with exact element comparison on hit plus a linear overflow list for
//! genuine hash collisions — deterministic, and no owned key copies.
//!
//! Submodules:
//!
//! * [`cost`] — total/extra cost and the probabilistic expected
//!   materialization cost `Σ_v (1 − Π_{q: v⇝q} (1 − sr_q))`;
//! * [`fragments`] — stage 1 of the paper's heuristic (group variables by
//!   query-membership signature);
//! * [`greedy`] — stage 2 (greedy completion by expected greedy coverage
//!   gain) and the [`SharedPlanner`] facade;
//! * [`cse`] — the non-associative baseline planner (syntactic sharing
//!   only), polynomial per Figure 5 row 1;
//! * [`optimal`] — exhaustive minimum-cost planner for small instances;
//! * [`reduction`] — the executable set-cover constructions behind
//!   Theorems 2 and 3.

pub mod cost;
pub mod cse;
pub mod disjoint;
pub mod fragments;
pub mod greedy;
pub mod maintenance;
pub mod optimal;
pub mod reduction;

pub use disjoint::DisjointPlanner;
pub use greedy::{reference_plan, PlannerMode, SharedPlanner};
pub use maintenance::PlanMaintainer;

use std::collections::HashMap;

use ssa_setcover::varset::{fnv1a_extend, sparse_limit, FNV_SEED};
use ssa_setcover::{AsVarSetRef, BitSet, VarSet, VarSetRef};

use crate::algebra::ops::AggregateOp;
use crate::exec;

/// A topological level schedule for a [`PlanDag`].
///
/// Level `d` holds the internal nodes whose longest leaf-to-node path has
/// length `d + 1` (leaves sit at depth 0 and need no materialization).
/// Both children of a level-`d` node live at strictly smaller depths, so
/// all nodes within one level can be materialized concurrently; levels
/// themselves run in ascending order. Within a level, nodes are kept in
/// ascending index order so parallel evaluation visits (and counts) the
/// same work as the sequential index-order sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    levels: Vec<Vec<usize>>,
}

impl LevelSchedule {
    /// The levels, shallowest first; each is sorted ascending by node
    /// index.
    #[inline]
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Depth of the plan: the number of sequential parallel steps one
    /// round needs (the critical path length).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Span sentinel: this internal node's set is dense, stored at
/// `dense[len]` instead of in the CSR element pool.
const DENSE_SPAN: u32 = u32::MAX;

/// A shared aggregation plan over `var_count` variables.
///
/// Nodes `0..var_count` are the (implicit) variable leaves. Internal
/// nodes are deduplicated by variable set: merging two nodes whose union
/// already exists returns the existing node (the semilattice
/// identification). Node sets are read through [`PlanDag::vars`] as
/// borrowed [`VarSetRef`] views into the pooled storage.
#[derive(Debug, Clone)]
pub struct PlanDag {
    var_count: usize,
    /// Identity array `0..var_count`; `vars(v)` for a leaf borrows the
    /// one-element slice `&leaf_ids[v..=v]`.
    leaf_ids: Vec<u32>,
    /// CSR element storage for sparse internal-node sets. Chain-built
    /// nodes share prefixes: a prefix-extended union's span covers its
    /// left child's elements plus the appended tail.
    pool_elems: Vec<u32>,
    /// Per internal node `(start, len)` into `pool_elems`, or
    /// `(DENSE_SPAN, dense_index)` for promoted sets.
    spans: Vec<(u32, u32)>,
    /// Dense block storage for internal nodes past the sparse limit.
    dense: Vec<Box<[u64]>>,
    /// Cached FNV-1a content hash per internal node — extended
    /// incrementally on the prefix-extension path so chain steps cost
    /// O(tail), not O(prefix + tail).
    hashes: Vec<u64>,
    /// Packed child pairs, one per *internal* node (index `idx -
    /// var_count`). The per-round walkers (needed set, materialization,
    /// cone masks) traverse this flat `u32` arena — 8 bytes per node
    /// streamed contiguously.
    children_packed: Vec<[u32; 2]>,
    /// Content-hash interning: hash → first internal node with that set.
    /// Distinct sets colliding on the hash go to `by_set_overflow`
    /// (scanned linearly; every lookup verifies elements exactly).
    by_set: HashMap<u64, u32>,
    by_set_overflow: Vec<(u64, u32)>,
    /// `queries[q]` = index of the node computing query `q`.
    queries: Vec<usize>,
}

impl PlanDag {
    /// An empty plan: just the (implicit) variable leaves. O(var_count).
    pub fn new(var_count: usize) -> Self {
        PlanDag {
            var_count,
            leaf_ids: (0..var_count as u32).collect(),
            pool_elems: Vec::new(),
            spans: Vec::new(),
            dense: Vec::new(),
            hashes: Vec::new(),
            children_packed: Vec::new(),
            by_set: HashMap::new(),
            by_set_overflow: Vec::new(),
            queries: Vec::new(),
        }
    }

    /// Heap footprint of the plan in bytes: the pooled node labels, the
    /// packed child arena, cached hashes, and the interning tables. For
    /// the memory-scaling gate.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.leaf_ids.capacity() * size_of::<u32>()
            + self.pool_elems.capacity() * size_of::<u32>()
            + self.spans.capacity() * size_of::<(u32, u32)>()
            + self.dense.capacity() * size_of::<Box<[u64]>>()
            + self
                .dense
                .iter()
                .map(|b| b.len() * size_of::<u64>())
                .sum::<usize>()
            + self.hashes.capacity() * size_of::<u64>()
            + self.children_packed.capacity() * size_of::<[u32; 2]>()
            + self.by_set.capacity() * (size_of::<u64>() + size_of::<u32>())
            + self.by_set_overflow.capacity() * size_of::<(u64, u32)>()
            + self.queries.capacity() * size_of::<usize>()
    }

    /// Number of variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Total node count; indices `0..var_count` are leaves.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.var_count + self.spans.len()
    }

    /// The variable set of node `idx`, as a borrowed view into pooled
    /// storage.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn vars(&self, idx: usize) -> VarSetRef<'_> {
        if idx < self.var_count {
            VarSetRef::Sparse {
                elems: &self.leaf_ids[idx..=idx],
                capacity: self.var_count,
            }
        } else {
            let (start, len) = self.spans[idx - self.var_count];
            if start == DENSE_SPAN {
                VarSetRef::Dense {
                    blocks: &self.dense[len as usize],
                    capacity: self.var_count,
                }
            } else {
                VarSetRef::Sparse {
                    elems: &self.pool_elems[start as usize..(start + len) as usize],
                    capacity: self.var_count,
                }
            }
        }
    }

    /// An owned copy of node `idx`'s variable set.
    #[inline]
    pub fn vars_owned(&self, idx: usize) -> VarSet {
        self.vars(idx).to_var_set()
    }

    /// The children of node `idx`: `Some((a, b))` for internal nodes,
    /// `None` for leaves.
    #[inline]
    pub fn children(&self, idx: usize) -> Option<(usize, usize)> {
        if idx < self.var_count {
            None
        } else {
            let [a, b] = self.children_packed[idx - self.var_count];
            Some((a as usize, b as usize))
        }
    }

    /// The node computing each bound query.
    #[inline]
    pub fn query_nodes(&self) -> &[usize] {
        &self.queries
    }

    /// Number of bound queries.
    #[inline]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Looks up an interned node by content hash, verifying elements
    /// exactly (hash collisions fall through to the overflow list).
    fn find_interned(&self, hash: u64, probe: VarSetRef<'_>) -> Option<usize> {
        if let Some(&idx) = self.by_set.get(&hash) {
            if self.vars(idx as usize).set_eq(probe) {
                return Some(idx as usize);
            }
            for &(h, idx) in &self.by_set_overflow {
                if h == hash && self.vars(idx as usize).set_eq(probe) {
                    return Some(idx as usize);
                }
            }
        }
        None
    }

    fn intern(&mut self, hash: u64, idx: u32) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.by_set.entry(hash) {
            slot.insert(idx);
        } else {
            // A *different* set with the same content hash (merge never
            // re-interns an existing set): keep both, resolved by exact
            // comparison at lookup.
            self.by_set_overflow.push((hash, idx));
        }
    }

    /// Looks up a node by its variable set. Accepts [`VarSet`],
    /// [`BitSet`], or a [`VarSetRef`] view.
    pub fn node_for<S: AsVarSetRef + ?Sized>(&self, vars: &S) -> Option<usize> {
        let probe = vars.as_set_ref();
        debug_assert_eq!(probe.capacity(), self.var_count, "universe mismatch");
        match probe.first() {
            None => None,
            Some(v) => {
                // Singletons are the implicit leaves — never interned.
                if probe.len() == 1 {
                    (v < self.var_count).then_some(v)
                } else {
                    self.find_interned(probe.hash64(), probe)
                }
            }
        }
    }

    /// Merges two existing nodes, returning the node whose variable set is
    /// the union. Deduplicates: if a node with that set exists, it is
    /// returned unchanged (no new cost).
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        assert!(
            a < self.node_count() && b < self.node_count(),
            "bad node id"
        );
        if a == b {
            return a;
        }
        // Prefix-extension fast path: `a` is the sparse tail of the pool
        // and `b`'s elements all lie strictly above `a`'s maximum. The
        // union is then `a`'s run extended in place — O(|b|) storage and
        // hashing, which is what keeps k-step fragment chains O(k) total.
        if a >= self.var_count {
            let (start, len) = self.spans[a - self.var_count];
            if start != DENSE_SPAN && (start + len) as usize == self.pool_elems.len() {
                if let VarSetRef::Sparse { elems: b_elems, .. } = self.vars(b) {
                    let a_max = self.pool_elems[(start + len) as usize - 1];
                    if !b_elems.is_empty() && b_elems[0] > a_max {
                        let hash =
                            fnv1a_extend(self.hashes[a - self.var_count], b_elems.iter().copied());
                        // Dedup before extending the pool: the union may
                        // already exist as an earlier node. The probe
                        // compares structurally (candidate == a's run
                        // followed by b's), so no union is materialized.
                        let b_len = b_elems.len() as u32;
                        if let Some(idx) = self.find_extended(hash, a, b, len + b_len) {
                            return idx;
                        }
                        // Copy b's elements (they may live earlier in the
                        // same pool, so take them by index range).
                        let (b_start, copy_len) = match b < self.var_count {
                            true => (b as u32, 0),
                            false => self.spans[b - self.var_count],
                        };
                        if b < self.var_count {
                            self.pool_elems.push(b_start);
                        } else {
                            let lo = b_start as usize;
                            let hi = lo + copy_len as usize;
                            self.pool_elems.extend_from_within(lo..hi);
                        }
                        let idx = self.node_count();
                        self.spans.push((start, len + b_len));
                        self.hashes.push(hash);
                        self.children_packed.push([a as u32, b as u32]);
                        self.intern(hash, idx as u32);
                        return idx;
                    }
                }
            }
        }
        // General path: materialize the union's element run.
        let union: Vec<u32> = {
            let ra = self.vars(a);
            let rb = self.vars(b);
            let mut out = Vec::with_capacity(ra.len() + rb.len());
            let mut ia = ra.iter().peekable();
            let mut ib = rb.iter().peekable();
            loop {
                match (ia.peek().copied(), ib.peek().copied()) {
                    (None, None) => break,
                    (Some(_), None) => {
                        out.push(ia.next().unwrap() as u32);
                    }
                    (None, Some(_)) => {
                        out.push(ib.next().unwrap() as u32);
                    }
                    (Some(x), Some(y)) => match x.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            out.push(ia.next().unwrap() as u32);
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(ib.next().unwrap() as u32);
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(ia.next().unwrap() as u32);
                            ib.next();
                        }
                    },
                }
            }
            out
        };
        if union.len() == 1 {
            // Both children were the same singleton; `a == b` is caught
            // above, so this cannot happen for distinct nodes — but keep
            // the leaf identification for safety.
            return union[0] as usize;
        }
        let hash = fnv1a_extend(FNV_SEED, union.iter().copied());
        let probe = VarSetRef::Sparse {
            elems: &union,
            capacity: self.var_count,
        };
        if let Some(idx) = self.find_interned(hash, probe) {
            return idx;
        }
        let idx = self.node_count();
        if union.len() > sparse_limit(self.var_count) {
            // Promote to dense blocks — only here, never on the
            // prefix-extension path (which must keep sharing the pool).
            let mut blocks = vec![0u64; self.var_count.div_ceil(64)].into_boxed_slice();
            for &e in &union {
                blocks[e as usize / 64] |= 1u64 << (e as usize % 64);
            }
            let dense_idx = self.dense.len() as u32;
            self.dense.push(blocks);
            self.spans.push((DENSE_SPAN, dense_idx));
        } else {
            let start = self.pool_elems.len() as u32;
            self.pool_elems.extend_from_slice(&union);
            self.spans.push((start, union.len() as u32));
        }
        self.hashes.push(hash);
        self.children_packed.push([a as u32, b as u32]);
        self.intern(hash, idx as u32);
        idx
    }

    /// Interning probe for the prefix-extension path: is there a node
    /// whose set is `vars(a) ++ vars(b)` (a dedup-free concatenation of
    /// length `total`)? Verified structurally against pooled storage.
    fn find_extended(&self, hash: u64, a: usize, b: usize, total: u32) -> Option<usize> {
        let check = |idx: usize| -> bool {
            let cand = self.vars(idx);
            if cand.len() != total as usize {
                return false;
            }
            let ra = self.vars(a);
            let rb = self.vars(b);
            cand.iter().eq(ra.iter().chain(rb.iter()))
        };
        if let Some(&idx) = self.by_set.get(&hash) {
            if check(idx as usize) {
                return Some(idx as usize);
            }
            for &(h, idx) in &self.by_set_overflow {
                if h == hash && check(idx as usize) {
                    return Some(idx as usize);
                }
            }
        }
        None
    }

    /// Aggregates a list of existing nodes left-to-right (a chain),
    /// returning the final node. Deduplication applies at every step.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn merge_chain(&mut self, nodes: &[usize]) -> usize {
        assert!(!nodes.is_empty(), "cannot chain zero nodes");
        let mut acc = nodes[0];
        for &n in &nodes[1..] {
            acc = self.merge(acc, n);
        }
        acc
    }

    /// Rebinds an already-bound query to a different node (plan
    /// maintenance after an interest-set change).
    ///
    /// # Panics
    /// Panics on a bad query or node index.
    pub fn rebind_query(&mut self, q: usize, node: usize) {
        assert!(q < self.queries.len(), "query out of range");
        assert!(node < self.node_count(), "node out of range");
        self.queries[q] = node;
    }

    /// Binds the next query (appending) to the node computing `vars`.
    ///
    /// # Panics
    /// Panics if no node has this variable set — the plan is incomplete.
    pub fn bind_query<S: AsVarSetRef + ?Sized>(&mut self, vars: &S) -> usize {
        let idx = self
            .node_for(vars)
            .expect("query bound before its node exists");
        self.queries.push(idx);
        idx
    }

    /// Total cost: the number of internal (in-degree 2) nodes — "the
    /// number of nodes with non-zero in-degree", i.e. top-k aggregation
    /// operations materializable per round.
    pub fn total_cost(&self) -> usize {
        self.spans.len()
    }

    /// Extra cost: total cost minus the base cost `|E|` (queries that are
    /// not bare variables).
    pub fn extra_cost(&self) -> usize {
        let base = self
            .queries
            .iter()
            .filter(|&&idx| idx >= self.var_count)
            .count();
        self.total_cost().saturating_sub(base)
    }

    /// Validates the A-plan invariants: every internal node's variable set
    /// is the union of its children's; children precede parents; every
    /// bound query points at a node with exactly its variable set.
    pub fn validate(&self) -> Result<(), String> {
        for idx in self.var_count..self.node_count() {
            let (a, b) = self.children(idx).expect("internal node has children");
            if a >= idx || b >= idx {
                return Err(format!("node {idx} references later node"));
            }
            let union = self.vars_owned(a).union(&self.vars(b));
            if union.as_set_ref() != self.vars(idx) {
                return Err(format!("node {idx} label is not its children's union"));
            }
        }
        for (q, &idx) in self.queries.iter().enumerate() {
            if idx >= self.node_count() {
                return Err(format!("query {q} bound to missing node"));
            }
        }
        Ok(())
    }

    /// True iff some internal node merges children with overlapping
    /// variable sets. Such plans are only correct for idempotent
    /// operators (duplicates collapse); non-idempotent evaluation rejects
    /// them.
    pub fn has_overlapping_merges(&self) -> bool {
        (self.var_count..self.node_count()).any(|idx| {
            let (a, b) = self.children(idx).expect("internal node");
            !self.vars(a).is_disjoint(self.vars(b))
        })
    }

    /// For each node, the set of *bound queries* it feeds (`v ⇝ q`):
    /// query-node cones walked per query, packed into one CSR pool.
    /// Each node's query list is ascending (queries are visited in
    /// index order), preserving the summation order the cost model's
    /// floating-point products depend on.
    pub fn reach_sets(&self) -> ReachSets {
        let n_nodes = self.node_count();
        let mut counts = vec![0u32; n_nodes];
        let mut epoch = vec![u32::MAX; n_nodes];
        let mut stack: Vec<usize> = Vec::new();
        for pass in 0..2 {
            let mut offsets = Vec::new();
            let mut fill: Vec<u32> = Vec::new();
            let mut qs: Vec<u32> = Vec::new();
            if pass == 1 {
                offsets = vec![0u32; n_nodes + 1];
                for i in 0..n_nodes {
                    offsets[i + 1] = offsets[i] + counts[i];
                }
                fill = offsets[..n_nodes].to_vec();
                qs = vec![0u32; offsets[n_nodes] as usize];
                for e in epoch.iter_mut() {
                    *e = u32::MAX;
                }
            }
            for (q, &root) in self.queries.iter().enumerate() {
                let stamp = q as u32;
                stack.push(root);
                while let Some(idx) = stack.pop() {
                    if epoch[idx] == stamp {
                        continue;
                    }
                    epoch[idx] = stamp;
                    if pass == 0 {
                        counts[idx] += 1;
                    } else {
                        qs[fill[idx] as usize] = stamp;
                        fill[idx] += 1;
                    }
                    if let Some((a, b)) = self.children(idx) {
                        stack.push(a);
                        stack.push(b);
                    }
                }
            }
            if pass == 1 {
                return ReachSets { offsets, qs };
            }
        }
        unreachable!()
    }

    /// Marks the cone of `root`: the node itself plus every descendant
    /// reachable through `children` edges. The incremental cost tracker
    /// diffs two cones to find exactly the nodes whose reach sets a query
    /// rebind changes, instead of rescanning the whole plan.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn cone_mask(&self, root: usize) -> Vec<bool> {
        assert!(root < self.node_count(), "node out of range");
        let mut mask = vec![false; self.node_count()];
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            if mask[idx] {
                continue;
            }
            mask[idx] = true;
            if let Some((a, b)) = self.children(idx) {
                stack.push(a);
                stack.push(b);
            }
        }
        mask
    }

    /// The cone of `root` as an ascending node-index list — the sparse
    /// counterpart of [`PlanDag::cone_mask`], sized by the cone rather
    /// than the plan, which is what lets the incremental cost tracker
    /// repair rebinds by merge-diffing two cones at 10⁶ nodes.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn cone_nodes(&self, root: usize) -> Vec<u32> {
        assert!(root < self.node_count(), "node out of range");
        let mut seen = vec![root as u32];
        let mut stack = vec![root];
        let mut mark = std::collections::HashSet::new();
        mark.insert(root);
        while let Some(idx) = stack.pop() {
            if let Some((a, b)) = self.children(idx) {
                for c in [a, b] {
                    if mark.insert(c) {
                        seen.push(c as u32);
                        stack.push(c);
                    }
                }
            }
        }
        seen.sort_unstable();
        seen
    }

    /// Checks the `evaluate` preconditions shared by the sequential and
    /// parallel paths.
    fn check_evaluate_inputs<O: AggregateOp>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
    ) {
        assert_eq!(leaves.len(), self.var_count, "one value per variable");
        assert_eq!(occurring.len(), self.queries.len(), "one flag per query");
        if !op.axioms().idempotent() {
            assert!(
                !self.has_overlapping_merges(),
                "plan has overlapping merges; operator {} is not idempotent",
                op.name()
            );
        }
    }

    /// Marks the nodes needed this round: the descendants of every
    /// occurring query's node.
    fn needed_nodes(&self, occurring: &[bool]) -> Vec<bool> {
        let mut needed = vec![false; self.node_count()];
        let mut stack: Vec<usize> = self
            .queries
            .iter()
            .zip(occurring)
            .filter(|(_, &occ)| occ)
            .map(|(&idx, _)| idx)
            .collect();
        while let Some(idx) = stack.pop() {
            if needed[idx] {
                continue;
            }
            needed[idx] = true;
            if let Some((a, b)) = self.children(idx) {
                stack.push(a);
                stack.push(b);
            }
        }
        needed
    }

    /// A node's materialized value: leaves read straight from the input
    /// slice (never copied into the memo), internal nodes from their
    /// memo slot.
    #[inline]
    fn value_at<'v, V>(&self, memo: &'v [Option<V>], leaves: &'v [V], idx: usize) -> &'v V {
        if idx < self.var_count {
            &leaves[idx]
        } else {
            memo[idx - self.var_count].as_ref().expect("child computed")
        }
    }

    /// Evaluates the plan for one round.
    ///
    /// `leaves[v]` is variable `v`'s current value; `occurring[q]` says
    /// whether query `q`'s bid phrase occurs this round. Only nodes needed
    /// by occurring queries are materialized (the cost model's notion of
    /// materialization). Returns per-query results (`None` for phrases
    /// that did not occur) and the number of ⊕ applications performed.
    ///
    /// # Panics
    /// Panics if the operator is not idempotent but the plan contains
    /// overlapping merges, or if input lengths disagree.
    pub fn evaluate<O: AggregateOp>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
    ) -> (Vec<Option<O::Value>>, usize) {
        self.check_evaluate_inputs(op, leaves, occurring);
        // Memo over internal nodes only: leaf values are read from the
        // input slice, so a round never clones the population.
        let mut memo: Vec<Option<O::Value>> = vec![None; self.spans.len()];
        let mut ops = 0usize;
        let needed = self.needed_nodes(occurring);
        // Materialize in index order (children precede parents).
        for idx in self.var_count..self.node_count() {
            if !needed[idx] || memo[idx - self.var_count].is_some() {
                continue;
            }
            let (a, b) = self.children(idx).expect("internal node");
            let value = op.combine(
                self.value_at(&memo, leaves, a),
                self.value_at(&memo, leaves, b),
            );
            ops += 1;
            memo[idx - self.var_count] = Some(value);
        }
        let results = self
            .queries
            .iter()
            .zip(occurring)
            .map(|(&idx, &occ)| {
                if occ {
                    Some(self.value_at(&memo, leaves, idx).clone())
                } else {
                    None
                }
            })
            .collect();
        (results, ops)
    }

    /// Computes the level schedule: internal nodes grouped by longest-path
    /// depth from the leaves. Computed once at plan-build time and reused
    /// every round by [`PlanDag::evaluate_parallel`].
    pub fn level_schedule(&self) -> LevelSchedule {
        let mut depth = vec![0usize; self.node_count()];
        let mut max_depth = 0usize;
        for idx in self.var_count..self.node_count() {
            let (a, b) = self.children(idx).expect("internal node");
            depth[idx] = depth[a].max(depth[b]) + 1;
            max_depth = max_depth.max(depth[idx]);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_depth];
        // Ascending index order within each level falls out of the sweep.
        for idx in self.var_count..self.node_count() {
            levels[depth[idx] - 1].push(idx);
        }
        LevelSchedule { levels }
    }

    /// Level-parallel [`PlanDag::evaluate`]: materializes each schedule
    /// level's needed nodes concurrently on `threads` scoped workers.
    ///
    /// Within a level no node depends on another (children live at
    /// strictly smaller depths), so each worker reads already-materialized
    /// values and writes its own slot. Results, the ⊕ count, and the set
    /// of materialized nodes are identical to the sequential path for any
    /// thread count; `threads <= 1` short-circuits to [`PlanDag::evaluate`].
    ///
    /// # Panics
    /// Panics on the same conditions as [`PlanDag::evaluate`], or if
    /// `schedule` was not produced by this plan's
    /// [`PlanDag::level_schedule`].
    pub fn evaluate_parallel<O>(
        &self,
        op: &O,
        leaves: &[O::Value],
        occurring: &[bool],
        schedule: &LevelSchedule,
        threads: usize,
    ) -> (Vec<Option<O::Value>>, usize)
    where
        O: AggregateOp + Sync,
        O::Value: Send + Sync,
    {
        if threads <= 1 {
            return self.evaluate(op, leaves, occurring);
        }
        self.check_evaluate_inputs(op, leaves, occurring);
        let scheduled: usize = schedule.levels.iter().map(Vec::len).sum();
        assert_eq!(
            scheduled,
            self.spans.len(),
            "schedule does not cover this plan's internal nodes"
        );
        let mut memo: Vec<Option<O::Value>> = vec![None; self.spans.len()];
        let mut ops = 0usize;
        let needed = self.needed_nodes(occurring);
        for level in &schedule.levels {
            let jobs: Vec<usize> = level.iter().copied().filter(|&idx| needed[idx]).collect();
            if jobs.is_empty() {
                continue;
            }
            // Workers only read children (materialized in earlier levels);
            // results come back in job order and are written back serially.
            let values = {
                let memo_ref = &memo;
                exec::parallel_map(jobs.len(), threads, |j| {
                    let idx = jobs[j];
                    let (a, b) = self.children(idx).expect("internal node");
                    op.combine(
                        self.value_at(memo_ref, leaves, a),
                        self.value_at(memo_ref, leaves, b),
                    )
                })
            };
            ops += jobs.len();
            for (idx, value) in jobs.into_iter().zip(values) {
                memo[idx - self.var_count] = Some(value);
            }
        }
        let results = self
            .queries
            .iter()
            .zip(occurring)
            .map(|(&idx, &occ)| {
                if occ {
                    Some(self.value_at(&memo, leaves, idx).clone())
                } else {
                    None
                }
            })
            .collect();
        (results, ops)
    }
}

/// Per-node reach sets (`node ⇝ query`) in one CSR pool — the sparse
/// replacement for the old `Vec<BitSet>` (which materialized O(nodes × m)
/// dense bits). `queries_of(idx)` is ascending, so cost-model products
/// iterate queries in exactly the order the dense representation did.
#[derive(Debug, Clone)]
pub struct ReachSets {
    offsets: Vec<u32>,
    qs: Vec<u32>,
}

impl ReachSets {
    /// The ascending query indices node `idx` feeds.
    #[inline]
    pub fn queries_of(&self, idx: usize) -> &[u32] {
        &self.qs[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Number of nodes covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u32>() + self.qs.capacity() * size_of::<u32>()
    }
}

/// A shared-aggregation problem instance: queries as variable sets (the
/// Lemma 1 canonical form) plus their search rates.
#[derive(Debug, Clone)]
pub struct PlanProblem {
    /// Universe size (number of variables / advertisers).
    pub var_count: usize,
    /// Query variable sets `X_q`, stored adaptively sparse.
    pub queries: Vec<VarSet>,
    /// Per-query search rates `sr_q` (probability the phrase occurs in a
    /// round).
    pub search_rates: Vec<f64>,
}

impl PlanProblem {
    /// Builds a problem from dense query sets; rates default to 1.0 (the
    /// deterministic case of Section II-C) when `search_rates` is `None`.
    ///
    /// # Panics
    /// Panics if inputs are inconsistent (wrong universe, rate counts,
    /// rates out of `[0,1]`, or an empty query).
    pub fn new(var_count: usize, queries: Vec<BitSet>, search_rates: Option<Vec<f64>>) -> Self {
        let queries: Vec<VarSet> = queries.iter().map(VarSet::from_bitset).collect();
        PlanProblem::from_varsets(var_count, queries, search_rates)
    }

    /// Builds a problem from adaptive sets directly — the allocation-lean
    /// path population-scale callers (the plan resolver) use.
    ///
    /// # Panics
    /// Same contract as [`PlanProblem::new`].
    pub fn from_varsets(
        var_count: usize,
        queries: Vec<VarSet>,
        search_rates: Option<Vec<f64>>,
    ) -> Self {
        for (q, set) in queries.iter().enumerate() {
            assert_eq!(set.capacity(), var_count, "query {q} universe mismatch");
            assert!(!set.is_empty(), "query {q} is empty");
        }
        let search_rates = search_rates.unwrap_or_else(|| vec![1.0; queries.len()]);
        assert_eq!(search_rates.len(), queries.len(), "one rate per query");
        for (q, &r) in search_rates.iter().enumerate() {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "query {q} rate {r} out of range"
            );
        }
        PlanProblem {
            var_count,
            queries,
            search_rates,
        }
    }

    /// Number of queries `m`.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Total input size `Σ_q |X_q|` (the paper's running-time parameter).
    pub fn total_query_size(&self) -> usize {
        self.queries.iter().map(VarSet::len).sum()
    }

    /// Heap footprint of the query sets and rates, in bytes — the
    /// resolver charges the retained problem against the hot-state
    /// budget.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.queries.capacity() * size_of::<VarSet>()
            + self.queries.iter().map(VarSet::heap_bytes).sum::<usize>()
            + self.search_rates.capacity() * size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::ops::{MaxOp, SumOp, TopKOp};
    use crate::topk::KList;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    #[test]
    fn merge_dedups_by_var_set() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let ab2 = plan.merge(1, 0);
        assert_eq!(ab, ab2, "union {{0,1}} must be a single node");
        assert_eq!(plan.total_cost(), 1);
        let abc = plan.merge(ab, 2);
        assert_eq!(plan.total_cost(), 2);
        assert_eq!(plan.vars(abc), bs(4, &[0, 1, 2]));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn merge_chain_reuses_prefixes() {
        let mut plan = PlanDag::new(4);
        plan.merge_chain(&[0, 1, 2]);
        let before = plan.total_cost();
        plan.merge_chain(&[0, 1, 2, 3]); // shares the {0,1} and {0,1,2} prefixes
        assert_eq!(plan.total_cost(), before + 1);
    }

    #[test]
    fn chain_storage_shares_prefixes() {
        // A k-leaf ascending chain must store O(k) pooled elements, not
        // O(k²): each step extends the previous node's run in place.
        let k = 64;
        let mut plan = PlanDag::new(k);
        let leaves: Vec<usize> = (0..k).collect();
        plan.merge_chain(&leaves);
        assert_eq!(plan.total_cost(), k - 1);
        assert_eq!(
            plan.pool_elems.len(),
            k,
            "chain prefixes must share one pooled run"
        );
        // Every prefix node is still individually addressable and correct.
        for idx in k..plan.node_count() {
            let want: Vec<usize> = (0..=(idx - k + 1)).collect();
            assert_eq!(plan.vars(idx).iter().collect::<Vec<_>>(), want);
        }
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn merge_promotes_large_unions_to_dense() {
        // Universe 4096 → sparse limit 128. A general-path (non-chain)
        // union past the limit must land in dense block storage.
        let n = 4096;
        let mut plan = PlanDag::new(n);
        let a = plan.merge_chain(&(0..100).collect::<Vec<_>>());
        let b = plan.merge_chain(&(200..300).collect::<Vec<_>>());
        // Merging b (whose min 200 > a's max 99) extends the pool only if
        // b is the tail; a is not the tail anymore, so this takes the
        // general path and promotes.
        let ab = plan.merge(a, b);
        assert!(matches!(plan.vars(ab), VarSetRef::Dense { .. }));
        assert_eq!(plan.vars(ab).len(), 200);
        assert!(plan.validate().is_ok());
        // Interning still finds it.
        let want: Vec<usize> = (0..100).chain(200..300).collect();
        assert_eq!(plan.node_for(&bs(n, &want)), Some(ab));
    }

    #[test]
    fn cost_accounting() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        plan.queries.push(abc);
        // total 2, base 1 (one non-variable query) → extra 1 (node ab).
        assert_eq!(plan.total_cost(), 2);
        assert_eq!(plan.extra_cost(), 1);
        // A query bound to a bare variable adds no base cost.
        plan.queries.push(0);
        assert_eq!(plan.extra_cost(), 1);
    }

    #[test]
    fn bind_query_finds_node() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let idx = plan.bind_query(&bs(3, &[0, 1]));
        assert_eq!(idx, ab);
        // Singleton queries bind straight to the implicit leaves.
        assert_eq!(plan.bind_query(&VarSet::singleton(3, 2)), 2);
    }

    #[test]
    #[should_panic(expected = "before its node exists")]
    fn bind_query_rejects_missing() {
        let mut plan = PlanDag::new(3);
        plan.bind_query(&bs(3, &[0, 1]));
    }

    #[test]
    fn reach_sets_propagate_to_descendants() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.queries = vec![abc, abd];
        let reach = plan.reach_sets();
        // ab feeds both queries; leaf 2 only query 0; leaf 3 only query 1.
        assert_eq!(reach.queries_of(ab), &[0, 1]);
        assert_eq!(reach.queries_of(2), &[0]);
        assert_eq!(reach.queries_of(3), &[1]);
        assert_eq!(reach.queries_of(abc), &[0]);
    }

    #[test]
    fn cone_nodes_matches_cone_mask() {
        let mut plan = PlanDag::new(5);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let de = plan.merge(3, 4);
        let _all = plan.merge(abc, de);
        for root in 0..plan.node_count() {
            let mask = plan.cone_mask(root);
            let from_mask: Vec<u32> = (0..plan.node_count())
                .filter(|&i| mask[i])
                .map(|i| i as u32)
                .collect();
            assert_eq!(plan.cone_nodes(root), from_mask);
        }
    }

    #[test]
    fn evaluate_topk_matches_direct() {
        let op = TopKOp { k: 2 };
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let abc = plan.merge(ab, 2);
        let abd = plan.merge(ab, 3);
        plan.queries = vec![abc, abd];
        let leaves: Vec<KList<i64>> = [10i64, 40, 20, 30]
            .iter()
            .map(|&v| KList::singleton(2, v))
            .collect();
        let (results, ops) = plan.evaluate(&op, &leaves, &[true, true]);
        assert_eq!(results[0].as_ref().unwrap().items(), &[40, 20]);
        assert_eq!(results[1].as_ref().unwrap().items(), &[40, 30]);
        assert_eq!(ops, 3, "ab shared once, plus two query merges");
    }

    #[test]
    fn evaluate_skips_non_occurring_queries() {
        let op = MaxOp;
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let cd = plan.merge(2, 3);
        let abcd = plan.merge(ab, cd);
        plan.queries = vec![ab, abcd];
        let leaves = vec![1i64, 2, 3, 4];
        let (results, ops) = plan.evaluate(&op, &leaves, &[true, false]);
        assert_eq!(results[0], Some(2));
        assert_eq!(results[1], None);
        assert_eq!(ops, 1, "only ab materialized");
    }

    #[test]
    fn evaluate_rejects_nonidempotent_on_overlap() {
        let mut plan = PlanDag::new(3);
        let ab = plan.merge(0, 1);
        let bc = plan.merge(1, 2);
        let abc = plan.merge(ab, bc); // overlapping at variable 1
        plan.queries = vec![abc];
        assert!(plan.has_overlapping_merges());
        let plan2 = plan.clone();
        let result = std::panic::catch_unwind(move || {
            plan2.evaluate(&SumOp, &[1i64, 2, 3], &[true]);
        });
        assert!(result.is_err(), "sum over overlapping plan must panic");
        // Max (idempotent) is fine and correct.
        let (results, _) = plan.evaluate(&MaxOp, &[1i64, 2, 3], &[true]);
        assert_eq!(results[0], Some(3));
    }

    #[test]
    fn level_schedule_orders_children_before_parents() {
        let mut plan = PlanDag::new(4);
        let ab = plan.merge(0, 1);
        let cd = plan.merge(2, 3);
        let abc = plan.merge(ab, 2);
        let abcd = plan.merge(ab, cd);
        let sched = plan.level_schedule();
        assert_eq!(sched.depth(), 2);
        assert_eq!(sched.levels()[0], vec![ab, cd]);
        assert_eq!(sched.levels()[1], vec![abc, abcd]);
    }

    #[test]
    fn evaluate_parallel_matches_sequential() {
        let op = TopKOp { k: 3 };
        let mut plan = PlanDag::new(8);
        // A few layers of shared structure with one unused branch.
        let chains: Vec<usize> = (0..4).map(|i| plan.merge(2 * i, 2 * i + 1)).collect();
        let left = plan.merge(chains[0], chains[1]);
        let right = plan.merge(chains[2], chains[3]);
        let all = plan.merge(left, right);
        plan.queries = vec![left, right, all, chains[3]];
        let sched = plan.level_schedule();
        let leaves: Vec<KList<i64>> = (0..8).map(|v| KList::singleton(3, v * 7 % 13)).collect();
        for occurring in [
            [true, true, true, true],
            [true, false, false, true],
            [false, false, true, false],
            [false, false, false, false],
        ] {
            let (seq, seq_ops) = plan.evaluate(&op, &leaves, &occurring);
            for threads in [2, 4] {
                let (par, par_ops) =
                    plan.evaluate_parallel(&op, &leaves, &occurring, &sched, threads);
                assert_eq!(seq, par, "results must be bit-identical");
                assert_eq!(seq_ops, par_ops, "op counts must agree");
            }
        }
    }

    #[test]
    fn evaluate_parallel_single_thread_short_circuits() {
        let op = MaxOp;
        let mut plan = PlanDag::new(2);
        let ab = plan.merge(0, 1);
        plan.queries = vec![ab];
        let sched = plan.level_schedule();
        let (res, ops) = plan.evaluate_parallel(&op, &[3i64, 5], &[true], &sched, 1);
        assert_eq!(res[0], Some(5));
        assert_eq!(ops, 1);
    }

    #[test]
    fn plan_problem_validation() {
        let q = vec![bs(3, &[0, 1]), bs(3, &[2])];
        let p = PlanProblem::new(3, q, Some(vec![0.5, 1.0]));
        assert_eq!(p.query_count(), 2);
        assert_eq!(p.total_query_size(), 3);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn plan_problem_rejects_bad_rate() {
        PlanProblem::new(2, vec![bs(2, &[0])], Some(vec![1.5]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn plan_problem_rejects_empty_query() {
        PlanProblem::new(2, vec![BitSet::new(2)], None);
    }
}
