//! Plan maintenance under churn.
//!
//! "Coming up with a new plan on the fly at every round is not practical
//! given the latency requirement of winner determination. Instead, we try
//! to find a single plan offline that works well 'on average'"
//! (Section II-B). But interest sets churn — advertisers add bid phrases,
//! exhaust budgets, join the market (44% of advertisers joined within two
//! years, per the paper's introduction) — so the offline plan degrades.
//!
//! [`PlanMaintainer`] implements the pragmatic middle ground:
//!
//! * **Patch**: when a query's interest set changes, extend the existing
//!   plan with a greedy cover of the new set and rebind the query — a
//!   few merges, no global replanning. Stale nodes stay in the DAG but
//!   cost nothing at runtime: a node no live query reaches has
//!   materialization probability 0 under the Section II-B cost model.
//! * **Replan**: when accumulated patches bloat the plan past a
//!   configurable factor of the last full plan's size, rebuild from
//!   scratch offline.

use ssa_setcover::greedy::greedy_cover_views;
use ssa_setcover::{AsVarSetRef, BitSet, VarSet, VarSetRef};

use super::cost::IncrementalCost;
use super::{PlanDag, PlanProblem, SharedPlanner};

/// What a maintenance operation did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaintenanceAction {
    /// The plan was patched in place (`new_nodes` merges added).
    Patched {
        /// Internal nodes added by the patch.
        new_nodes: usize,
    },
    /// The bloat threshold tripped and the plan was rebuilt.
    Replanned {
        /// Total cost before the rebuild (including stale nodes).
        before: usize,
        /// Total cost after.
        after: usize,
    },
}

/// Maintenance statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceStats {
    /// Interest-set patches applied since construction.
    pub patches: usize,
    /// Full replans performed.
    pub replans: usize,
}

/// Keeps a shared plan serviceable while its problem churns.
#[derive(Debug, Clone)]
pub struct PlanMaintainer {
    problem: PlanProblem,
    plan: PlanDag,
    planner: SharedPlanner,
    /// Replan when `total_cost > bloat_factor × cost at last replan`.
    bloat_factor: f64,
    cost_at_last_replan: usize,
    /// Expected-cost tracker repaired per patch instead of rescanned.
    cost: IncrementalCost,
    stats: MaintenanceStats,
}

impl PlanMaintainer {
    /// Builds the initial plan.
    ///
    /// # Panics
    /// Panics if `bloat_factor < 1.0`.
    pub fn new(problem: PlanProblem, planner: SharedPlanner, bloat_factor: f64) -> Self {
        assert!(bloat_factor >= 1.0, "bloat factor must be ≥ 1");
        let plan = planner.plan(&problem);
        let cost_at_last_replan = plan.total_cost().max(1);
        let cost = IncrementalCost::new(&plan, &problem.search_rates);
        PlanMaintainer {
            problem,
            plan,
            planner,
            bloat_factor,
            cost_at_last_replan,
            cost,
            stats: MaintenanceStats::default(),
        }
    }

    /// The current (always complete and valid) plan.
    pub fn plan(&self) -> &PlanDag {
        &self.plan
    }

    /// The current problem.
    pub fn problem(&self) -> &PlanProblem {
        &self.problem
    }

    /// Maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// The plan's expected per-round cost under the current search rates.
    /// Served from the incremental tracker — O(1), no plan rescan.
    pub fn expected_cost(&self) -> f64 {
        self.cost.total()
    }

    /// Heap footprint of the maintainer's hot state: the plan, the
    /// maintained problem, and the incremental cost tracker.
    pub fn heap_bytes(&self) -> usize {
        self.plan.heap_bytes() + self.problem.heap_bytes() + self.cost.heap_bytes()
    }

    /// Query `q`'s current search rate in the maintained problem.
    pub fn search_rate(&self, q: usize) -> f64 {
        self.problem.search_rates[q]
    }

    /// Updates a query's search rate (no structural change; the plan
    /// stays as is — rates only affect the cost model).
    ///
    /// # Panics
    /// Panics on a bad query index or rate.
    pub fn update_search_rate(&mut self, q: usize, rate: f64) {
        assert!(q < self.problem.query_count(), "query out of range");
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "rate out of range"
        );
        self.problem.search_rates[q] = rate;
        self.cost.set_rate(&self.plan, q, rate);
    }

    /// Replaces query `q`'s interest set, patching the plan: a greedy
    /// cover of the new set is merged in (reusing any existing nodes) and
    /// the query is rebound. Replans instead when the patched plan would
    /// exceed the bloat threshold.
    ///
    /// # Panics
    /// Panics on a bad query index, wrong universe, or an empty set.
    pub fn update_interest(&mut self, q: usize, new_set: BitSet) -> MaintenanceAction {
        assert!(q < self.problem.query_count(), "query out of range");
        assert_eq!(
            new_set.capacity(),
            self.problem.var_count,
            "universe mismatch"
        );
        assert!(!new_set.is_empty(), "interest set cannot be empty");
        self.problem.queries[q] = VarSet::from_bitset(&new_set);
        self.stats.patches += 1;

        // Patch: greedy-cover the new set from existing nodes and chain.
        // Candidates are borrowed views of the pooled node storage — the
        // full-scan (every node is a candidate) semantics are unchanged,
        // but nothing is cloned.
        let before = self.plan.total_cost();
        let chosen: Vec<usize> = {
            let views: Vec<VarSetRef<'_>> = (0..self.plan.node_count())
                .map(|i| self.plan.vars(i))
                .collect();
            greedy_cover_views(new_set.as_set_ref(), &views)
                .expect("leaves always cover the target")
                .chosen
        };
        let old_node = self.plan.query_nodes()[q];
        let node = self.plan.merge_chain(&chosen);
        self.plan.rebind_query(q, node);
        let new_nodes = self.plan.total_cost() - before;
        // Delta-repair the cost tracker: absorb the patch's new nodes,
        // then fix reach only on the two bind cones' symmetric difference.
        self.cost.extend(&self.plan);
        self.cost.rebind(&self.plan, q, old_node);

        // Bloat check.
        let limit = (self.cost_at_last_replan as f64 * self.bloat_factor).ceil() as usize;
        if self.plan.total_cost() > limit {
            let before_replan = self.plan.total_cost();
            self.plan = self.planner.plan(&self.problem);
            self.cost_at_last_replan = self.plan.total_cost().max(1);
            self.cost = IncrementalCost::new(&self.plan, &self.problem.search_rates);
            self.stats.replans += 1;
            MaintenanceAction::Replanned {
                before: before_replan,
                after: self.plan.total_cost(),
            }
        } else {
            MaintenanceAction::Patched { new_nodes }
        }
    }

    /// Forces a full rebuild now.
    pub fn force_replan(&mut self) {
        self.plan = self.planner.plan(&self.problem);
        self.cost_at_last_replan = self.plan.total_cost().max(1);
        self.cost = IncrementalCost::new(&self.plan, &self.problem.search_rates);
        self.stats.replans += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{KList, ScoredAd, ScoredTopKOp};
    use proptest::prelude::*;
    use ssa_auction::ids::AdvertiserId;
    use ssa_auction::score::Score;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    fn maintainer(bloat: f64) -> PlanMaintainer {
        let problem = PlanProblem::new(
            8,
            vec![bs(8, &[0, 1, 2, 3]), bs(8, &[0, 1, 4, 5]), bs(8, &[6, 7])],
            Some(vec![0.8, 0.6, 0.4]),
        );
        PlanMaintainer::new(problem, SharedPlanner::fragments_only(), bloat)
    }

    /// Evaluates the maintained plan and checks every query against a
    /// naive scan.
    fn assert_plan_correct(m: &PlanMaintainer) {
        let k = 3;
        let leaves: Vec<KList<ScoredAd>> = (0..m.problem().var_count)
            .map(|i| {
                KList::singleton(
                    k,
                    ScoredAd::new(AdvertiserId::from_index(i), Score::new((i + 1) as f64)),
                )
            })
            .collect();
        let occurring = vec![true; m.problem().query_count()];
        let (results, _) = m.plan().evaluate(&ScoredTopKOp { k }, &leaves, &occurring);
        for (q, set) in m.problem().queries.iter().enumerate() {
            let mut naive: KList<ScoredAd> = KList::empty(k);
            for v in set.iter() {
                naive.insert(ScoredAd::new(
                    AdvertiserId::from_index(v),
                    Score::new((v + 1) as f64),
                ));
            }
            assert_eq!(
                results[q].as_ref().unwrap().items(),
                naive.items(),
                "query {q}"
            );
        }
        assert_eq!(m.plan().validate(), Ok(()));
    }

    #[test]
    fn patches_keep_the_plan_correct() {
        let mut m = maintainer(100.0); // never replan
        assert_plan_correct(&m);
        // Advertiser 6 joins query 0; advertiser 1 leaves it.
        let act = m.update_interest(0, bs(8, &[0, 2, 3, 6]));
        assert!(matches!(act, MaintenanceAction::Patched { .. }));
        assert_plan_correct(&m);
        // Query 2 grows.
        m.update_interest(2, bs(8, &[4, 5, 6, 7]));
        assert_plan_correct(&m);
        assert_eq!(m.stats().patches, 2);
        assert_eq!(m.stats().replans, 0);
    }

    #[test]
    fn stale_nodes_cost_nothing() {
        let mut m = maintainer(100.0);
        let fresh_cost = m.expected_cost();
        // Shrink query 0 so parts of the old plan go stale.
        m.update_interest(0, bs(8, &[0, 1]));
        // The expected cost may only count live nodes, so it must not
        // exceed the old cost plus the (small) patch.
        let patched_cost = m.expected_cost();
        assert!(
            patched_cost <= fresh_cost + 1.0,
            "stale nodes should be free: {patched_cost} vs {fresh_cost}"
        );
        assert_plan_correct(&m);
    }

    #[test]
    fn bloat_triggers_replan() {
        let mut m = maintainer(1.2);
        let mut replanned = false;
        for round in 0..20 {
            // Rotate query 0's membership to force fresh nodes.
            let a = round % 6;
            let act = m.update_interest(0, bs(8, &[a, a + 1, a + 2]));
            if matches!(act, MaintenanceAction::Replanned { .. }) {
                replanned = true;
                break;
            }
        }
        assert!(replanned, "persistent churn must eventually replan");
        assert!(m.stats().replans >= 1);
        assert_plan_correct(&m);
    }

    #[test]
    fn replanned_plan_is_tighter_than_bloated_one() {
        let mut m = maintainer(1.5);
        let mut last_replan = None;
        for round in 0..30 {
            let a = round % 5;
            if let MaintenanceAction::Replanned { before, after } =
                m.update_interest(1, bs(8, &[a, a + 1, a + 3]))
            {
                last_replan = Some((before, after));
            }
        }
        let (before, after) = last_replan.expect("churn forces at least one replan");
        assert!(
            after < before,
            "replan must shed stale nodes: {after} vs {before}"
        );
    }

    #[test]
    fn rate_updates_do_not_touch_structure() {
        let mut m = maintainer(1.2);
        let nodes_before = m.plan().total_cost();
        let cost_before = m.expected_cost();
        m.update_search_rate(0, 0.1);
        assert_eq!(m.plan().total_cost(), nodes_before);
        assert!(m.expected_cost() < cost_before, "lower rate, lower cost");
    }

    #[test]
    fn force_replan_resets_baseline() {
        let mut m = maintainer(10.0);
        m.update_interest(0, bs(8, &[2, 3, 4]));
        m.force_replan();
        assert_eq!(m.stats().replans, 1);
        assert_plan_correct(&m);
    }

    #[test]
    #[should_panic(expected = "bloat factor")]
    fn rejects_sub_unit_bloat_factor() {
        maintainer(0.5);
    }

    #[test]
    fn incremental_cost_tracks_full_rescan() {
        let mut m = maintainer(100.0); // never replan: pure patch path
        let rescan = |m: &PlanMaintainer| {
            super::super::cost::expected_cost(m.plan(), &m.problem().search_rates)
        };
        assert!((m.expected_cost() - rescan(&m)).abs() < 1e-9);
        m.update_interest(0, bs(8, &[0, 2, 3, 6]));
        assert!((m.expected_cost() - rescan(&m)).abs() < 1e-9);
        m.update_search_rate(1, 0.05);
        assert!((m.expected_cost() - rescan(&m)).abs() < 1e-9);
        m.update_interest(2, bs(8, &[4, 5, 6, 7]));
        m.update_interest(0, bs(8, &[1, 2]));
        assert!((m.expected_cost() - rescan(&m)).abs() < 1e-9);
        m.force_replan();
        assert!((m.expected_cost() - rescan(&m)).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Arbitrary churn sequences keep the plan valid and correct, and
        /// the incremental cost tracker never drifts from a full rescan
        /// (including across bloat-triggered replans).
        #[test]
        fn random_churn_preserves_correctness(
            updates in proptest::collection::vec(
                (0usize..3, proptest::collection::btree_set(0usize..8, 1..6)), 1..12),
        ) {
            let mut m = maintainer(1.3);
            for (q, set) in updates {
                m.update_interest(q, BitSet::from_elements(8, set.iter().copied()));
                let fresh =
                    super::super::cost::expected_cost(m.plan(), &m.problem().search_rates);
                prop_assert!((m.expected_cost() - fresh).abs() < 1e-9);
            }
            assert_plan_correct(&m);
        }
    }
}
