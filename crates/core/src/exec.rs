//! Deterministic scoped-worker fan-out shared by the round executor.
//!
//! Every parallel stage of the engine (per-advertiser throttling,
//! per-phrase unshared scans, level-parallel plan evaluation) reduces to
//! the same shape: `jobs` independent computations whose results must
//! come back *in job order*, bit-identical to a sequential loop. This
//! module provides that primitive once, using the same work-stealing
//! pattern proven in `sort::concurrent::resolve_parallel`: an atomic
//! next-job counter, one mutex-guarded result slot per job, and the
//! vendored `crossbeam` scoped threads. Each job index is claimed by
//! exactly one worker and computed from the same inputs a sequential loop
//! would see, so thread count affects wall-clock only, never results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

/// Default minimum number of jobs a worker claims per dispatch. Tiny work
/// items (a throttled-bid lookup is tens of nanoseconds) must be batched,
/// or the atomic claim + per-slot lock dominate and parallelism *loses*
/// to sequential — the seed `BENCH_round_executor.json` measured 4
/// threads at 0.31× of 1 thread on exactly that failure mode.
pub const DEFAULT_MIN_BATCH: usize = 64;

/// Computes `f(0), …, f(jobs - 1)` and returns the results in job order,
/// batching [`DEFAULT_MIN_BATCH`] jobs per worker dispatch. See
/// [`parallel_map_batched`].
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_batched(jobs, threads, DEFAULT_MIN_BATCH, f)
}

/// Computes `f(0), …, f(jobs - 1)` and returns the results in job order,
/// with each worker claiming at least `min_batch` consecutive jobs per
/// atomic dispatch.
///
/// With `threads <= 1` (or too few jobs to give a second worker a full
/// batch) this is a plain sequential map; otherwise scoped workers drain
/// an atomic cursor in chunks of
/// `max(min_batch, jobs / (4 · threads))` — at least a batch, and at most
/// ~4 claims per worker so stragglers still balance. Results are
/// identical for every `threads`/`min_batch` combination — `f` must be a
/// pure function of its index (it is `Fn`, not `FnMut`, so the type
/// system already rules out cross-job mutation), and every result lands
/// in its own slot.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn parallel_map_batched<T, F>(jobs: usize, threads: usize, min_batch: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let min_batch = min_batch.max(1);
    if threads <= 1 || jobs <= min_batch {
        return (0..jobs).map(f).collect();
    }
    let chunk = min_batch.max(jobs / (4 * threads));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<T>>> = (0..jobs.div_ceil(chunk))
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(slots.len()) {
            scope.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= jobs {
                    break;
                }
                let end = (start + chunk).min(jobs);
                let values: Vec<T> = (start..end).map(&f).collect();
                *slots[start / chunk].lock() = values;
            });
        }
    })
    .expect("executor worker panicked");
    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        out.append(&mut slot.into_inner());
    }
    debug_assert_eq!(out.len(), jobs, "every chunk was claimed");
    out
}

/// Mutex-protected state of a bounded MPSC channel. The sender count and
/// receiver-liveness flag live *inside* the mutex, not in atomics beside
/// it: every closed-predicate change is then ordered with the waiter's
/// predicate check by the lock itself, which is what rules out the
/// classic lost wakeup (waiter checks the predicate, closer flips it and
/// notifies before the waiter parks, waiter parks forever).
struct ChanState<T> {
    q: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

/// A bounded MPSC channel: a capacity-capped queue plus the two condvars
/// that park producers (queue full) and the consumer (queue empty).
struct Chan<T> {
    state: StdMutex<ChanState<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Producer half of [`bounded`]. Cloning registers another producer;
/// dropping the last one wakes the receiver so it can observe closure.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consumer half of [`bounded`]. Dropping it wakes any producers parked
/// on a full queue so they can observe the disconnect.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a bounded in-memory channel with room for `cap` queued
/// messages. `send` blocks while the queue is full, `recv` blocks while
/// it is empty, and `recv` returns `None` once every sender is dropped
/// and the queue is drained. This is the backpressure seam of the
/// sharded round pipeline: workers finishing shard stages ahead of the
/// committing thread park instead of queueing unbounded results.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: StdMutex::new(ChanState {
            q: VecDeque::with_capacity(cap.max(1)),
            senders: 1,
            receiver_alive: true,
        }),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Last sender gone: wake a receiver blocked on an empty
            // queue so it can return `None`. Notifying while the lock is
            // held keeps the wakeup ordered with the receiver's
            // predicate check.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while the channel is at capacity.
    /// Returns `false` (discarding `value`) if the receiver has been
    /// dropped — producers must not park forever on a queue nobody will
    /// ever drain.
    pub fn send(&self, value: T) -> bool {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        while state.receiver_alive && state.q.len() >= self.chan.cap {
            state = self
                .chan
                .not_full
                .wait(state)
                .expect("channel lock poisoned");
        }
        if !state.receiver_alive {
            return false;
        }
        state.q.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        true
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    /// Returns `None` once all senders are dropped and the queue is
    /// drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.q.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock().expect("channel lock poisoned");
        state.receiver_alive = false;
        // Wake every producer parked on a full queue; their `send`
        // returns `false` instead of blocking forever.
        self.chan.not_full.notify_all();
    }
}

/// Runs `run(0), …, run(shards - 1)` on a pool of `workers` scoped
/// threads and feeds each result to `collect` on the calling thread as
/// it completes.
///
/// Unlike [`parallel_map`], results are delivered in *completion* order
/// (the shard index is passed alongside each result so the caller can
/// reassemble), and delivery is streamed over a bounded channel instead
/// of barriered: the calling thread can commit shard N's result while
/// the pool is still working on shard N+1 — the pipeline shape of the
/// sharded round executor. With `workers <= 1` or a single shard this
/// degenerates to a sequential in-order loop with no threads and no
/// channel (and no allocation), which the zero-alloc harness relies on.
///
/// `run` must be pure with respect to shard index (workers claim
/// indices from an atomic cursor, so assignment to threads is
/// nondeterministic); any order-sensitive effects belong in `collect`,
/// which runs only on the calling thread.
pub fn shard_pipeline<R, F, C>(shards: usize, workers: usize, run: F, mut collect: C)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut(usize, R),
{
    if workers <= 1 || shards <= 1 {
        for s in 0..shards {
            let r = run(s);
            collect(s, r);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    // Capacity 2·workers: enough slack that a burst of fast shards does
    // not serialize the pool on the committing thread, small enough to
    // bound memory held in flight.
    let (tx, rx) = bounded::<(usize, R)>(2 * workers);
    crossbeam::thread::scope(|scope| {
        // Capture `rx` by value (the rebinding below consumes it): if
        // `collect` panics, the Receiver then drops *during this
        // closure's unwind* — before crossbeam joins the workers —
        // waking any producer parked on a full queue instead of
        // deadlocking the join.
        let rx = rx;
        for _ in 0..workers.min(shards) {
            let tx = tx.clone();
            scope.spawn(|_| {
                let tx = tx;
                loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= shards {
                        break;
                    }
                    // A failed send means the receiver is gone (the
                    // collector panicked); stop claiming shards so the
                    // scope can join and propagate that panic.
                    if !tx.send((s, run(s))) {
                        break;
                    }
                }
            });
        }
        // Drop the scope's own sender so `recv` sees closure once the
        // workers finish, then drain on the calling thread.
        drop(tx);
        while let Some((s, r)) = rx.recv() {
            collect(s, r);
        }
    })
    .expect("shard pipeline worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..57).map(|i| i * 31 % 17).collect();
        let f = |i: usize| inputs[i].wrapping_mul(0x9e37_79b9).rotate_left(7);
        let seq = parallel_map(inputs.len(), 1, f);
        let par = parallel_map(inputs.len(), 4, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn batched_chunks_agree_with_sequential() {
        // Chunk boundaries must not reorder or drop results, for batch
        // sizes below, at, and above the job count.
        let want: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for min_batch in [1, 3, 64, 100, 1000] {
            for threads in [2, 4, 7] {
                let out = parallel_map_batched(257, threads, min_batch, |i| i * 3 + 1);
                assert_eq!(out, want, "min_batch {min_batch} threads {threads}");
            }
        }
    }

    #[test]
    fn borrows_from_enclosing_scope() {
        let data = [1u32, 2, 3, 4, 5];
        let doubled = parallel_map(data.len(), 3, |i| data[i] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn bounded_channel_delivers_everything_then_closes() {
        let (tx, rx) = bounded::<usize>(2);
        let tx2 = tx.clone();
        crossbeam::thread::scope(|scope| {
            scope.spawn(move |_| {
                let tx = tx;
                for i in 0..50 {
                    assert!(tx.send(i));
                }
            });
            scope.spawn(move |_| {
                let tx = tx2;
                for i in 50..100 {
                    assert!(tx.send(i));
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            assert_eq!(rx.recv(), None, "stays closed after drain");
        })
        .unwrap();
    }

    #[test]
    fn send_fails_once_receiver_is_dropped() {
        let (tx, rx) = bounded::<usize>(4);
        assert!(tx.send(1));
        drop(rx);
        assert!(!tx.send(2), "send must observe the dead receiver");
    }

    #[test]
    fn receiver_drop_wakes_senders_parked_on_full_queue() {
        let (tx, rx) = bounded::<usize>(1);
        assert!(tx.send(0)); // fill to capacity
        crossbeam::thread::scope(|scope| {
            // Parks on the full queue until the receiver drops, then
            // must return `false` instead of blocking forever.
            let parked = scope.spawn(|_| tx.send(1));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(!parked.join().unwrap());
        })
        .unwrap();
    }

    #[test]
    fn many_close_races_never_lose_the_wakeup() {
        // Regression for the lost-wakeup race: the last sender dropping
        // concurrently with a receiver checking the empty queue must
        // never leave the receiver parked forever. Tight loop to give
        // the race a real chance; a hang here fails via test timeout.
        for _ in 0..500 {
            let (tx, rx) = bounded::<usize>(2);
            crossbeam::thread::scope(|scope| {
                scope.spawn(move |_| {
                    let tx = tx;
                    assert!(tx.send(7));
                });
                assert_eq!(rx.recv(), Some(7));
                assert_eq!(rx.recv(), None);
            })
            .unwrap();
        }
    }

    #[test]
    fn shard_pipeline_propagates_collect_panic_without_hanging() {
        // Many shards + tiny channel: workers are parked on a full
        // queue when the collector dies. The panic must propagate
        // through the scope join, not deadlock it.
        let result = std::panic::catch_unwind(|| {
            shard_pipeline(64, 2, |s| s, |_, _| panic!("collector died"));
        });
        assert!(result.is_err(), "collect panic must propagate");
    }

    #[test]
    fn shard_pipeline_covers_every_shard_once() {
        for (shards, workers) in [(0, 4), (1, 4), (5, 1), (7, 2), (16, 4), (3, 8)] {
            let mut seen = vec![0u32; shards];
            shard_pipeline(
                shards,
                workers,
                |s| s * 10,
                |s, r| {
                    assert_eq!(r, s * 10);
                    seen[s] += 1;
                },
            );
            assert!(
                seen.iter().all(|&c| c == 1),
                "shards {shards} workers {workers}: {seen:?}"
            );
        }
    }

    #[test]
    fn shard_pipeline_sequential_path_preserves_order() {
        let mut order = Vec::new();
        shard_pipeline(6, 1, |s| s, |s, _| order.push(s));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }
}
