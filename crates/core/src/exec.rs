//! Deterministic scoped-worker fan-out shared by the round executor.
//!
//! Every parallel stage of the engine (per-advertiser throttling,
//! per-phrase unshared scans, level-parallel plan evaluation) reduces to
//! the same shape: `jobs` independent computations whose results must
//! come back *in job order*, bit-identical to a sequential loop. This
//! module provides that primitive once, using the same work-stealing
//! pattern proven in `sort::concurrent::resolve_parallel`: an atomic
//! next-job counter, one mutex-guarded result slot per job, and the
//! vendored `crossbeam` scoped threads. Each job index is claimed by
//! exactly one worker and computed from the same inputs a sequential loop
//! would see, so thread count affects wall-clock only, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Computes `f(0), …, f(jobs - 1)` and returns the results in job order.
///
/// With `threads <= 1` (or at most one job) this is a plain sequential
/// map; otherwise `min(threads, jobs)` scoped workers drain an atomic job
/// counter. Results are identical either way — `f` must be a pure
/// function of its index (it is `Fn`, not `FnMut`, so the type system
/// already rules out cross-job mutation).
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs {
                    break;
                }
                let value = f(j);
                *slots[j].lock() = Some(value);
            });
        }
    })
    .expect("executor worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..57).map(|i| i * 31 % 17).collect();
        let f = |i: usize| inputs[i].wrapping_mul(0x9e37_79b9).rotate_left(7);
        let seq = parallel_map(inputs.len(), 1, f);
        let par = parallel_map(inputs.len(), 4, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn borrows_from_enclosing_scope() {
        let data = [1u32, 2, 3, 4, 5];
        let doubled = parallel_map(data.len(), 3, |i| data[i] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }
}
