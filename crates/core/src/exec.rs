//! Deterministic scoped-worker fan-out shared by the round executor.
//!
//! Every parallel stage of the engine (per-advertiser throttling,
//! per-phrase unshared scans, level-parallel plan evaluation) reduces to
//! the same shape: `jobs` independent computations whose results must
//! come back *in job order*, bit-identical to a sequential loop. This
//! module provides that primitive once, using the same work-stealing
//! pattern proven in `sort::concurrent::resolve_parallel`: an atomic
//! next-job counter, one mutex-guarded result slot per job, and the
//! vendored `crossbeam` scoped threads. Each job index is claimed by
//! exactly one worker and computed from the same inputs a sequential loop
//! would see, so thread count affects wall-clock only, never results.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default minimum number of jobs a worker claims per dispatch. Tiny work
/// items (a throttled-bid lookup is tens of nanoseconds) must be batched,
/// or the atomic claim + per-slot lock dominate and parallelism *loses*
/// to sequential — the seed `BENCH_round_executor.json` measured 4
/// threads at 0.31× of 1 thread on exactly that failure mode.
pub const DEFAULT_MIN_BATCH: usize = 64;

/// Computes `f(0), …, f(jobs - 1)` and returns the results in job order,
/// batching [`DEFAULT_MIN_BATCH`] jobs per worker dispatch. See
/// [`parallel_map_batched`].
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_batched(jobs, threads, DEFAULT_MIN_BATCH, f)
}

/// Computes `f(0), …, f(jobs - 1)` and returns the results in job order,
/// with each worker claiming at least `min_batch` consecutive jobs per
/// atomic dispatch.
///
/// With `threads <= 1` (or too few jobs to give a second worker a full
/// batch) this is a plain sequential map; otherwise scoped workers drain
/// an atomic cursor in chunks of
/// `max(min_batch, jobs / (4 · threads))` — at least a batch, and at most
/// ~4 claims per worker so stragglers still balance. Results are
/// identical for every `threads`/`min_batch` combination — `f` must be a
/// pure function of its index (it is `Fn`, not `FnMut`, so the type
/// system already rules out cross-job mutation), and every result lands
/// in its own slot.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn parallel_map_batched<T, F>(jobs: usize, threads: usize, min_batch: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let min_batch = min_batch.max(1);
    if threads <= 1 || jobs <= min_batch {
        return (0..jobs).map(f).collect();
    }
    let chunk = min_batch.max(jobs / (4 * threads));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<T>>> = (0..jobs.div_ceil(chunk))
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(slots.len()) {
            scope.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= jobs {
                    break;
                }
                let end = (start + chunk).min(jobs);
                let values: Vec<T> = (start..end).map(&f).collect();
                *slots[start / chunk].lock() = values;
            });
        }
    })
    .expect("executor worker panicked");
    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        out.append(&mut slot.into_inner());
    }
    debug_assert_eq!(out.len(), jobs, "every chunk was claimed");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order() {
        let out = parallel_map(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<u64> = (0..57).map(|i| i * 31 % 17).collect();
        let f = |i: usize| inputs[i].wrapping_mul(0x9e37_79b9).rotate_left(7);
        let seq = parallel_map(inputs.len(), 1, f);
        let par = parallel_map(inputs.len(), 4, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_job() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn batched_chunks_agree_with_sequential() {
        // Chunk boundaries must not reorder or drop results, for batch
        // sizes below, at, and above the job count.
        let want: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for min_batch in [1, 3, 64, 100, 1000] {
            for threads in [2, 4, 7] {
                let out = parallel_map_batched(257, threads, min_batch, |i| i * 3 + 1);
                assert_eq!(out, want, "min_batch {min_batch} threads {threads}");
            }
        }
    }

    #[test]
    fn borrows_from_enclosing_scope() {
        let data = [1u32, 2, 3, 4, 5];
        let doubled = parallel_map(data.len(), 3, |i| data[i] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }
}
