//! A thread-safe shared merge network.
//!
//! One round can carry many phrase auctions, and each runs its own
//! Threshold Algorithm against the *same* shared merge network. The
//! sequential [`MergeNetwork`](super::MergeNetwork) requires `&mut self`;
//! this variant keeps the immutable topology (child pairs, leaf items) in
//! shared flat arrays and wraps only each operator's *mutable* state
//! (cursors, cache, exhaustion) in its own `parking_lot` mutex, so
//! multiple TA drivers can pull concurrently, and resolves a whole round
//! across a [`crossbeam`] scoped thread pool.
//!
//! Lock discipline: a pull holds at most a chain of locks running
//! *downward* (parent before child) along DAG edges, and node indices
//! strictly decrease along that chain (children are created before
//! parents), so lock acquisition order is globally consistent and
//! deadlock-free — even when two phrases' pulls meet at a shared
//! operator.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;

use super::planner::SortPlan;
use super::ta::TaScratch;
use super::{LeafCones, RefreshStats, SortItem};

/// Sentinel child index marking a leaf node.
const NO_CHILD: u32 = u32::MAX;

/// One parallel TA job: `(network root, c-order, k)`. The c-order is
/// borrowed so per-round job construction allocates nothing.
pub type TaJob<'a> = (usize, &'a [(AdvertiserId, f64)], usize);

/// The per-node mutable state: everything a pull writes. Topology and
/// leaf items live outside the lock.
#[derive(Debug)]
struct NodeState {
    /// Items consumed from each child (left/right registers).
    cursors: [u32; 2],
    /// "Each operator stores the sequence of values it has sent
    /// upstream."
    emitted: Vec<SortItem>,
    /// No more items below.
    exhausted: bool,
    /// Refresh epoch of the most recent pull (eviction clock).
    last_touch: u32,
}

/// A merge network whose operators are individually locked, allowing
/// concurrent pulls from `&self`. Like the sequential
/// [`MergeNetwork`](super::MergeNetwork) it is persistent across rounds:
/// [`ConcurrentMergeNetwork::refresh`] (which takes `&mut self` — rounds
/// are serialized even though pulls within one are not) invalidates only
/// the dirty cones above changed leaves.
#[derive(Debug)]
pub struct ConcurrentMergeNetwork {
    /// Per node, the two children (`[NO_CHILD; 2]` for leaves). Immutable
    /// after construction, so readable without any lock.
    children: Vec<[u32; 2]>,
    /// Per node, the leaf item (placeholder for merges). Only `refresh`
    /// (`&mut self`) writes it, so pulls read it without a lock.
    items: Vec<SortItem>,
    state: Vec<Mutex<NodeState>>,
    invocations: AtomicU64,
    /// Total items currently cached across all nodes (Σ emitted.len()).
    cached_items: AtomicU64,
    /// Refresh-scoped visited stamps; refresh holds `&mut self`, so these
    /// need no lock.
    dirty_stamps: Vec<u32>,
    dirty_epoch: u32,
    /// Refresh counter (the eviction clock); written only under
    /// `&mut self`.
    rounds: u32,
}

impl ConcurrentMergeNetwork {
    /// Instantiates a concurrent network for a sort plan, mirroring
    /// [`SortPlan::instantiate`]. Returns the network plus per-phrase
    /// roots (`usize::MAX` for empty phrases).
    pub fn from_plan(plan: &SortPlan, bids: &[Money]) -> (Self, Vec<usize>) {
        assert_eq!(
            bids.len(),
            plan.advertiser_count(),
            "one bid per advertiser"
        );
        let total = plan.node_count();
        let mut children = Vec::with_capacity(total);
        let mut items = Vec::with_capacity(total);
        let mut state = Vec::with_capacity(total);
        #[allow(clippy::needless_range_loop)] // idx spans the node arena; bids only covers leaves
        for idx in 0..total {
            match plan.node_children(idx) {
                None => {
                    children.push([NO_CHILD; 2]);
                    items.push(SortItem {
                        bid: bids[idx],
                        advertiser: AdvertiserId::from_index(idx),
                    });
                }
                Some((a, b)) => {
                    children.push([a as u32, b as u32]);
                    items.push(SortItem {
                        bid: Money::ZERO,
                        advertiser: AdvertiserId(0),
                    });
                }
            }
            state.push(Mutex::new(NodeState {
                cursors: [0, 0],
                emitted: Vec::new(),
                exhausted: false,
                last_touch: 0,
            }));
        }
        let roots = (0..plan.phrase_count()).map(|q| plan.root(q)).collect();
        (
            ConcurrentMergeNetwork {
                children,
                items,
                state,
                invocations: AtomicU64::new(0),
                cached_items: AtomicU64::new(0),
                dirty_stamps: vec![0; total],
                dirty_epoch: 0,
                rounds: 0,
            },
            roots,
        )
    }

    /// Total merge-operator invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Total items currently cached across all nodes.
    pub fn cached_items(&self) -> u64 {
        self.cached_items.load(Ordering::Relaxed)
    }

    /// A copy of the cached (already merged) prefix of `node`'s stream,
    /// without pulling anything new. For differential harnesses.
    pub fn cached(&self, node: usize) -> Vec<SortItem> {
        self.state[node].lock().emitted.clone()
    }

    /// Heap footprint in bytes (array capacities plus every node cache's
    /// capacity); takes `&mut self` to bypass the per-node locks.
    pub fn heap_bytes(&mut self) -> usize {
        use std::mem::size_of;
        self.children.capacity() * size_of::<[u32; 2]>()
            + self.items.capacity() * size_of::<SortItem>()
            + self.state.capacity() * size_of::<Mutex<NodeState>>()
            + self
                .state
                .iter_mut()
                .map(|s| s.get_mut().emitted.capacity() * size_of::<SortItem>())
                .sum::<usize>()
            + self.dirty_stamps.capacity() * 4
    }

    /// Cross-round dirty-cone invalidation, mirroring
    /// [`MergeNetwork::refresh`](super::MergeNetwork::refresh) exactly:
    /// changed leaves take their new bids, and every operator in a
    /// changed leaf's cone drops its cache and rewinds its cursors;
    /// everything else keeps its cached prefix. `&mut self` serializes
    /// refresh against pulls, so the per-node mutexes are bypassed via
    /// `get_mut`.
    pub fn refresh(&mut self, changed: &[(usize, Money)], cones: &LeafCones) -> RefreshStats {
        self.rounds = self.rounds.wrapping_add(1);
        self.dirty_epoch = self.dirty_epoch.wrapping_add(1);
        if self.dirty_epoch == 0 {
            self.dirty_stamps.fill(0);
            self.dirty_epoch = 1;
        }
        let epoch = self.dirty_epoch;
        let mut invalidated = 0u64;
        let mut dropped = 0u64;
        for &(leaf, bid) in changed {
            assert!(
                self.children[leaf][0] == NO_CHILD,
                "refresh target {leaf} is not a leaf"
            );
            self.items[leaf].bid = bid;
            if self.dirty_stamps[leaf] != epoch {
                self.dirty_stamps[leaf] = epoch;
                invalidated += 1;
                dropped += reset_node(self.state[leaf].get_mut());
            }
            for &cone_node in cones.cone(leaf) {
                let node = cone_node as usize;
                if self.dirty_stamps[node] != epoch {
                    self.dirty_stamps[node] = epoch;
                    invalidated += 1;
                    dropped += reset_node(self.state[node].get_mut());
                }
            }
        }
        self.cached_items.fetch_sub(dropped, Ordering::Relaxed);
        RefreshStats {
            nodes_invalidated: invalidated,
            cache_items_reused: self.cached_items(),
        }
    }

    /// Evicts the cache of every node whose last pull is more than
    /// `horizon` refreshes old, freeing the backing storage; returns the
    /// number of items dropped. Same bit-identity argument as
    /// [`MergeNetwork::evict_cold`](super::MergeNetwork::evict_cold):
    /// caches always match current bids, so evicted nodes regenerate
    /// identical streams on demand.
    pub fn evict_cold(&mut self, horizon: u32) -> u64 {
        let rounds = self.rounds;
        let mut dropped = 0u64;
        for slot in &mut self.state {
            let s = slot.get_mut();
            if rounds.wrapping_sub(s.last_touch) > horizon && !s.emitted.is_empty() {
                dropped += s.emitted.len() as u64;
                s.emitted = Vec::new();
                s.exhausted = false;
                s.cursors = [0, 0];
            }
        }
        self.cached_items.fetch_sub(dropped, Ordering::Relaxed);
        dropped
    }

    /// The `index`-th item of the stream under `node` (`&self`: safe to
    /// call from many threads).
    pub fn get(&self, node: usize, index: usize) -> Option<SortItem> {
        let mut guard = self.state[node].lock();
        guard.last_touch = self.rounds;
        while guard.emitted.len() <= index && !guard.exhausted {
            let [left, right] = self.children[node];
            if left == NO_CHILD {
                if guard.emitted.is_empty() {
                    let item = self.items[node];
                    guard.emitted.push(item);
                    self.cached_items.fetch_add(1, Ordering::Relaxed);
                } else {
                    guard.exhausted = true;
                }
                continue;
            }
            // Child pulls acquire strictly smaller-indexed locks while
            // this node's lock is held: consistent downward order, no
            // deadlock.
            let [left_pos, right_pos] = guard.cursors;
            let l = self.get(left as usize, left_pos as usize);
            let r = self.get(right as usize, right_pos as usize);
            let take_left = match (l, r) {
                (Some(a), Some(b)) => a > b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    guard.exhausted = true;
                    continue;
                }
            };
            self.invocations.fetch_add(1, Ordering::Relaxed);
            let item = if take_left { l.unwrap() } else { r.unwrap() };
            guard.cursors[if take_left { 0 } else { 1 }] += 1;
            guard.emitted.push(item);
            self.cached_items.fetch_add(1, Ordering::Relaxed);
        }
        guard.emitted.get(index).copied()
    }
}

/// Drops a node's cache and rewinds its cursors; returns how many cached
/// items were dropped.
fn reset_node(state: &mut NodeState) -> u64 {
    let dropped = state.emitted.len() as u64;
    state.emitted.clear();
    state.exhausted = false;
    state.cursors = [0, 0];
    dropped
}

/// Resolves every occurring phrase's TA concurrently over one shared
/// network, with `threads` workers (crossbeam scoped threads).
///
/// `jobs[j] = (root, c_order, k)`; returns one
/// [`TaOutcome`](super::ta::TaOutcome) per job, in job order. Allocates a
/// fresh scratch pool; hot paths should keep one alive across rounds and
/// call [`resolve_parallel_with`].
pub fn resolve_parallel<BF, FF>(
    net: &ConcurrentMergeNetwork,
    jobs: &[TaJob<'_>],
    bid_of: BF,
    factor_of: FF,
    threads: usize,
) -> Vec<super::ta::TaOutcome>
where
    BF: Fn(usize, AdvertiserId) -> Money + Sync,
    FF: Fn(usize, AdvertiserId) -> f64 + Sync,
{
    let pool: Vec<Mutex<TaScratch>> = (0..threads.max(1))
        .map(|_| Mutex::new(TaScratch::new()))
        .collect();
    resolve_parallel_with(net, jobs, bid_of, factor_of, threads, &pool)
}

/// [`resolve_parallel`] with a caller-held scratch pool (one
/// [`TaScratch`] per worker, `pool.len() >= threads`), so steady-state
/// rounds reuse the seen-sets and top-k working lists instead of
/// reallocating them. Worker `w` owns `pool[w]` for the whole call;
/// results are bit-identical for any thread count.
pub fn resolve_parallel_with<BF, FF>(
    net: &ConcurrentMergeNetwork,
    jobs: &[TaJob<'_>],
    bid_of: BF,
    factor_of: FF,
    threads: usize,
    pool: &[Mutex<TaScratch>],
) -> Vec<super::ta::TaOutcome>
where
    BF: Fn(usize, AdvertiserId) -> Money + Sync,
    FF: Fn(usize, AdvertiserId) -> f64 + Sync,
{
    let threads = threads.max(1);
    assert!(pool.len() >= threads, "one scratch per worker");
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<super::ta::TaOutcome>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for slot in pool.iter().take(threads.min(jobs.len().max(1))) {
            let next = &next;
            let results = &results;
            let bid_of = &bid_of;
            let factor_of = &factor_of;
            scope.spawn(move |_| {
                let mut scratch = slot.lock();
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= jobs.len() {
                        break;
                    }
                    let (root, c_order, k) = jobs[j];
                    let outcome = if root == usize::MAX {
                        super::ta::TaOutcome {
                            top_k: Vec::new(),
                            stages: 0,
                            stopped_early: false,
                        }
                    } else {
                        let mut top_k = Vec::new();
                        let (stages, stopped_early) = super::ta::threshold_top_k_into(
                            |i| net.get(root, i),
                            c_order,
                            |a| bid_of(j, a),
                            |a| factor_of(j, a),
                            k,
                            &mut scratch,
                            &mut top_k,
                        );
                        super::ta::TaOutcome {
                            top_k,
                            stages,
                            stopped_early,
                        }
                    };
                    *results[j].lock() = Some(outcome);
                }
            });
        }
    })
    .expect("TA worker panicked");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every job resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::planner::build_shared_sort_plan_bucketed;
    use crate::sort::ta::threshold_top_k;
    use ssa_setcover::BitSet;
    use ssa_workload::{Workload, WorkloadConfig};

    fn workload() -> Workload {
        Workload::generate(&WorkloadConfig {
            advertisers: 300,
            phrases: 10,
            topics: 4,
            phrase_factor_jitter: 0.3,
            seed: 21,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn concurrent_network_matches_sequential() {
        let w = workload();
        let n = w.advertiser_count();
        let rates = w.search_rates();
        let interest: Vec<BitSet> = w
            .interest
            .iter()
            .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
            .collect();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &rates);
        let bids: Vec<Money> = w.advertisers.iter().map(|a| a.bid).collect();
        let k = 4;

        // Sequential reference.
        let (mut seq_net, seq_roots) = plan.instantiate(&bids);
        let mut sequential = Vec::new();
        #[allow(clippy::needless_range_loop)] // q indexes roots, interest, factors
        for q in 0..w.phrase_count() {
            let phrase = ssa_auction::ids::PhraseId::from_index(q);
            let mut c_order: Vec<(AdvertiserId, f64)> = w.interest[q]
                .iter()
                .map(|&a| (a, w.phrase_factor(phrase, a).unwrap()))
                .collect();
            c_order.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
            sequential.push(threshold_top_k(
                &mut seq_net,
                seq_roots[q],
                &c_order,
                |a| bids[a.index()],
                |a| w.phrase_factor(phrase, a).unwrap_or(0.0),
                k,
            ));
        }

        // Concurrent run over 4 threads.
        let (net, roots) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        let c_orders: Vec<Vec<(AdvertiserId, f64)>> = (0..w.phrase_count())
            .map(|q| {
                let phrase = ssa_auction::ids::PhraseId::from_index(q);
                let mut c_order: Vec<(AdvertiserId, f64)> = w.interest[q]
                    .iter()
                    .map(|&a| (a, w.phrase_factor(phrase, a).unwrap()))
                    .collect();
                c_order.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
                c_order
            })
            .collect();
        let jobs: Vec<TaJob<'_>> = (0..w.phrase_count())
            .map(|q| (roots[q], c_orders[q].as_slice(), k))
            .collect();
        let w_ref = &w;
        let bids_ref = &bids;
        let parallel = resolve_parallel(
            &net,
            &jobs,
            |_, a| bids_ref[a.index()],
            |j, a| {
                w_ref
                    .phrase_factor(ssa_auction::ids::PhraseId::from_index(j), a)
                    .unwrap_or(0.0)
            },
            4,
        );

        for (q, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(s.top_k, p.top_k, "phrase {q} winners differ");
        }
        assert!(net.invocations() > 0);
    }

    #[test]
    fn concurrent_pulls_share_caches() {
        // Two consumers drain overlapping streams concurrently; the
        // shared prefix must be computed once (invocations bounded by the
        // sequential drain count).
        let w = workload();
        let n = w.advertiser_count();
        let interest: Vec<BitSet> = w
            .interest
            .iter()
            .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
            .collect();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &w.search_rates());
        let bids: Vec<Money> = w.advertisers.iter().map(|a| a.bid).collect();

        let (mut seq_net, seq_roots) = plan.instantiate(&bids);
        for &root in seq_roots.iter() {
            if root != usize::MAX {
                let mut i = 0;
                while seq_net.get(root, i).is_some() {
                    i += 1;
                }
            }
        }
        let sequential_invocations = seq_net.invocations();

        let (net, roots) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        crossbeam::thread::scope(|scope| {
            for &root in roots.iter().filter(|&&r| r != usize::MAX) {
                let net = &net;
                scope.spawn(move |_| {
                    let mut i = 0;
                    while net.get(root, i).is_some() {
                        i += 1;
                    }
                });
            }
        })
        .expect("drain worker panicked");
        assert_eq!(
            net.invocations(),
            sequential_invocations,
            "concurrent caching must not duplicate merge work"
        );
    }

    #[test]
    fn empty_jobs_and_sentinel_roots() {
        let plan = build_shared_sort_plan_bucketed(2, &[BitSet::new(2)], &[0.5]);
        let bids = vec![Money::from_units(1); 2];
        let (net, roots) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        assert_eq!(roots[0], usize::MAX);
        let empty: Vec<(AdvertiserId, f64)> = Vec::new();
        let jobs = vec![(roots[0], empty.as_slice(), 3)];
        let out = resolve_parallel(&net, &jobs, |_, _| Money::ZERO, |_, _| 0.0, 2);
        assert!(out[0].top_k.is_empty());
    }

    #[test]
    fn refresh_matches_fresh_from_plan() {
        let w = workload();
        let n = w.advertiser_count();
        let interest: Vec<BitSet> = w
            .interest
            .iter()
            .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
            .collect();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &w.search_rates());
        let cones = plan.leaf_cones();
        let mut bids: Vec<Money> = w.advertisers.iter().map(|a| a.bid).collect();

        let (mut net, roots) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        let drain_all = |net: &ConcurrentMergeNetwork| {
            let mut streams = Vec::new();
            for &root in roots.iter().filter(|&&r| r != usize::MAX) {
                let mut s = Vec::new();
                let mut i = 0;
                while let Some(item) = net.get(root, i) {
                    s.push(item);
                    i += 1;
                }
                streams.push(s);
            }
            streams
        };
        drain_all(&net);

        // Perturb ~10% of the bids, refresh, and compare every phrase
        // stream and every node cache against a fresh instantiation.
        let mut changed = Vec::new();
        for (i, bid) in bids.iter_mut().enumerate() {
            if i % 10 == 3 {
                *bid = Money::from_micros(bid.micros() / 2 + i as u64);
                changed.push((i, *bid));
            }
        }
        let stats = net.refresh(&changed, &cones);
        assert!(stats.nodes_invalidated > 0);
        assert!(stats.cache_items_reused > 0);
        let refreshed = drain_all(&net);

        let (fresh, _) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        let fresh_streams = drain_all(&fresh);
        assert_eq!(refreshed, fresh_streams);
        // Persistent caches are prefix-supersets of fresh ones.
        for node in 0..plan.node_count() {
            let f = fresh.cached(node);
            let p = net.cached(node);
            assert!(
                p.len() >= f.len() && p[..f.len()] == f[..],
                "node {node}: fresh cache is not a prefix of the persistent one"
            );
        }
    }

    #[test]
    fn eviction_matches_fresh_streams() {
        let w = workload();
        let n = w.advertiser_count();
        let interest: Vec<BitSet> = w
            .interest
            .iter()
            .map(|ids| BitSet::from_elements(n, ids.iter().map(|a| a.index())))
            .collect();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &w.search_rates());
        let cones = plan.leaf_cones();
        let bids: Vec<Money> = w.advertisers.iter().map(|a| a.bid).collect();
        let (mut net, roots) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        let live: Vec<usize> = roots.iter().copied().filter(|&r| r != usize::MAX).collect();
        for &root in &live {
            let mut i = 0;
            while net.get(root, i).is_some() {
                i += 1;
            }
        }
        // Go cold, evict everything, and re-drain: streams must match a
        // fresh instantiation exactly.
        for _ in 0..4 {
            net.refresh(&[], &cones);
        }
        let dropped = net.evict_cold(2);
        assert!(dropped > 0);
        assert_eq!(net.cached_items(), 0);
        let (fresh, _) = ConcurrentMergeNetwork::from_plan(&plan, &bids);
        for &root in &live {
            let mut i = 0;
            loop {
                let (a, b) = (net.get(root, i), fresh.get(root, i));
                assert_eq!(a, b, "root {root} item {i}");
                if a.is_none() {
                    break;
                }
                i += 1;
            }
        }
    }
}
