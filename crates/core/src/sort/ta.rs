//! The Threshold Algorithm (Fagin–Lotem–Naor) driver.
//!
//! For bid phrase `q`, two descending sorted access paths exist: the
//! advertisers by `c_i^q` (precomputed — "click-through rates are
//! recalculated only occasionally … the ordering can be treated as fixed")
//! and the advertisers by `b_i`, supplied on demand by the shared merge
//! network. At stage `s` both lists advance one position; every newly seen
//! advertiser's full score `b_i · c_i^q` is resolved by random access, and
//! the algorithm "terminates early at the first stage where all top k
//! values are no less than the threshold" `b_{i_s} · c_{j_s}`.
//!
//! TA is instance-optimal among algorithms that avoid wild guesses, which
//! is precisely why the shared network only needs to supply a *prefix* of
//! each phrase's sorted order.

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_auction::score::Score;

use crate::topk::{KList, ScoredAd};

use super::MergeNetwork;

/// The result of one per-phrase TA run.
#[derive(Debug, Clone)]
pub struct TaOutcome {
    /// The top-k advertisers by `b_i · c_i^q`, best first.
    pub top_k: Vec<(AdvertiserId, Score)>,
    /// Stages executed (= sorted-access depth on each list).
    pub stages: usize,
    /// True iff the threshold fired before a list was exhausted.
    pub stopped_early: bool,
}

/// Reusable per-driver TA scratch: the seen-set and the top-k working
/// list, both retained across runs so steady-state TA allocates nothing.
///
/// The seen-set is a dense epoch-stamped array indexed by advertiser:
/// membership (both "already scored" and, since every scored advertiser
/// is offered to the top-k list exactly once, "already considered for the
/// top k") is one O(1) stamp compare — no hashing, no per-run clearing,
/// no `O(stages)` rescans. The array grows to the largest advertiser
/// index ever seen and is then reused verbatim.
#[derive(Debug, Default)]
pub struct TaScratch {
    /// `stamps[i] == epoch` ⇔ advertiser `i` was seen this run.
    stamps: Vec<u32>,
    epoch: u32,
    /// The working top-k list; storage retained across runs.
    top: KList<ScoredAd>,
}

impl TaScratch {
    /// An empty scratch; sizes itself lazily on first use.
    pub fn new() -> Self {
        TaScratch::default()
    }

    /// Starts a new run: bumps the epoch (implicitly clearing the
    /// seen-set in O(1)) and resets the top-k list to bound `k`.
    fn begin(&mut self, k: usize) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamps.fill(0);
            self.epoch = 1;
        }
        self.top.reset(k);
    }

    /// Marks `adv` seen; true on first sighting this run.
    fn see(&mut self, adv: AdvertiserId) -> bool {
        let idx = adv.index();
        if idx >= self.stamps.len() {
            self.stamps.resize(idx + 1, 0);
        }
        if self.stamps[idx] == self.epoch {
            false
        } else {
            self.stamps[idx] = self.epoch;
            true
        }
    }
}

/// Runs TA for one phrase.
///
/// * `net`/`root` — the shared bid-sorted stream (`usize::MAX` = empty
///   phrase);
/// * `c_order` — advertisers interested in the phrase, by descending
///   `c_i^q` (ties arbitrary but fixed);
/// * `bid_of`/`factor_of` — random access to the two attributes;
/// * `k` — how many winners to find.
pub fn threshold_top_k(
    net: &mut MergeNetwork,
    root: usize,
    c_order: &[(AdvertiserId, f64)],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> TaOutcome {
    if root == usize::MAX {
        return TaOutcome {
            top_k: Vec::new(),
            stages: 0,
            stopped_early: false,
        };
    }
    threshold_top_k_on(|i| net.get(root, i), c_order, bid_of, factor_of, k)
}

/// [`threshold_top_k`] over an arbitrary descending bid stream: `stream(i)`
/// returns the `i`-th largest bid item, or `None` past the end. This is
/// the entry point the concurrent network uses (its streams are `&self`
/// closures over per-node locks). Allocates its own scratch; hot paths
/// should hold a [`TaScratch`] and call [`threshold_top_k_into`].
pub fn threshold_top_k_on(
    stream: impl FnMut(usize) -> Option<super::SortItem>,
    c_order: &[(AdvertiserId, f64)],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> TaOutcome {
    let mut scratch = TaScratch::new();
    let mut top_k = Vec::new();
    let (stages, stopped_early) = threshold_top_k_into(
        stream,
        c_order,
        bid_of,
        factor_of,
        k,
        &mut scratch,
        &mut top_k,
    );
    TaOutcome {
        top_k,
        stages,
        stopped_early,
    }
}

/// The allocation-free TA core: like [`threshold_top_k_on`], but the
/// seen-set and working top-k live in a caller-held [`TaScratch`] and the
/// winners are written into `out` (cleared first, capacity retained).
/// Once `scratch` and `out` have warmed up to the phrase sizes in play,
/// repeated runs perform zero heap allocations.
///
/// Returns `(stages, stopped_early)`.
#[allow(clippy::too_many_arguments)] // the TA signature plus two scratch outputs
pub fn threshold_top_k_into(
    mut stream: impl FnMut(usize) -> Option<super::SortItem>,
    c_order: &[(AdvertiserId, f64)],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
    scratch: &mut TaScratch,
    out: &mut Vec<(AdvertiserId, Score)>,
) -> (usize, bool) {
    out.clear();
    if k == 0 {
        return (0, false);
    }
    scratch.begin(k);
    let mut stages = 0usize;
    let mut stopped_early = false;

    loop {
        let bid_item = stream(stages);
        let c_item = c_order.get(stages).copied();
        if bid_item.is_none() || c_item.is_none() {
            // One list exhausted ⇒ every interested advertiser has been
            // seen through it ⇒ all scores are known. Done, exactly.
            break;
        }
        stages += 1;
        let bid_item = bid_item.expect("checked above");
        let (c_adv, _c_val) = c_item.expect("checked above");

        for adv in [bid_item.advertiser, c_adv] {
            // One stamp compare covers both "already scored" and "already
            // offered to the top-k list" — each advertiser is scored and
            // inserted at most once per run.
            if scratch.see(adv) {
                let score = Score::expected_value(bid_of(adv), factor_of(adv));
                scratch.top.insert(ScoredAd::new(adv, score));
            }
        }

        // Threshold: best possible score of any unseen advertiser. The
        // paper stops at `kth ≥ τ`; we require strict `>` because our
        // top-k order breaks score ties by advertiser id, and an unseen
        // advertiser tied exactly at τ with a lower id could otherwise be
        // missed. (At `kth = τ` the scan continues and exhausts a list,
        // which resolves ties exactly.)
        let threshold = Score::expected_value(bid_item.bid, factor_of_pos(c_order, stages - 1));
        if let Some(kth) = scratch.top.kth() {
            if kth.score > threshold {
                stopped_early = true;
                break;
            }
        }
    }

    out.extend(scratch.top.items().iter().map(|s| (s.advertiser, s.score)));
    (stages, stopped_early)
}

fn factor_of_pos(c_order: &[(AdvertiserId, f64)], pos: usize) -> f64 {
    c_order[pos].1
}

/// Reference implementation: full scan over `I_q` (what a system without
/// TA would do). Used for differential testing and as the unshared
/// baseline in the experiments.
pub fn naive_top_k(
    interest: &[AdvertiserId],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> Vec<(AdvertiserId, Score)> {
    let mut top: KList<ScoredAd> = KList::empty(k);
    for &adv in interest {
        top.insert(ScoredAd::new(
            adv,
            Score::expected_value(bid_of(adv), factor_of(adv)),
        ));
    }
    top.items()
        .iter()
        .map(|s| (s.advertiser, s.score))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a single-phrase environment: bids + factors for n
    /// advertisers, balanced merge network over all of them.
    fn single_phrase(
        bids: &[u64],
        factors: &[f64],
    ) -> (MergeNetwork, usize, Vec<(AdvertiserId, f64)>) {
        let mut net = MergeNetwork::new();
        let mut level: Vec<usize> = bids
            .iter()
            .enumerate()
            .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    net.merge(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        let root = level[0];
        let mut c_order: Vec<(AdvertiserId, f64)> = factors
            .iter()
            .enumerate()
            .map(|(i, &c)| (AdvertiserId::from_index(i), c))
            .collect();
        c_order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        (net, root, c_order)
    }

    fn run(bids: &[u64], factors: &[f64], k: usize) -> (TaOutcome, Vec<(AdvertiserId, Score)>) {
        let (mut net, root, c_order) = single_phrase(bids, factors);
        let outcome = threshold_top_k(
            &mut net,
            root,
            &c_order,
            |a| Money::from_micros(bids[a.index()]),
            |a| factors[a.index()],
            k,
        );
        let interest: Vec<AdvertiserId> = (0..bids.len()).map(AdvertiserId::from_index).collect();
        let naive = naive_top_k(
            &interest,
            |a| Money::from_micros(bids[a.index()]),
            |a| factors[a.index()],
            k,
        );
        (outcome, naive)
    }

    #[test]
    fn matches_naive_on_small_instance() {
        let (outcome, naive) = run(&[100, 50, 80, 20], &[0.5, 1.5, 1.0, 2.0], 2);
        assert_eq!(outcome.top_k, naive);
    }

    #[test]
    fn early_termination_on_aligned_lists() {
        // The same advertiser dominates both lists: TA stops almost
        // immediately instead of scanning all 16.
        let n = 16;
        let bids: Vec<u64> = (0..n).map(|i| 1000 - (i as u64) * 50).collect();
        let factors: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.1).collect();
        let (outcome, naive) = run(&bids, &factors, 2);
        assert_eq!(outcome.top_k, naive);
        assert!(
            outcome.stopped_early,
            "aligned lists must trigger early stop"
        );
        assert!(
            outcome.stages < n,
            "stages {} should be below n={n}",
            outcome.stages
        );
    }

    #[test]
    fn anti_correlated_lists_need_deep_scans() {
        // Bids ascending while factors descend: the winner by product sits
        // in the middle; TA must dig deeper but stay correct.
        let n = 12;
        let bids: Vec<u64> = (0..n).map(|i| 10 + (i as u64) * 10).collect();
        let factors: Vec<f64> = (0..n).map(|i| 1.2 - i as f64 * 0.1).collect();
        let (outcome, naive) = run(&bids, &factors, 3);
        assert_eq!(outcome.top_k, naive);
    }

    #[test]
    fn k_zero_and_empty_phrase() {
        let (mut net, root, c_order) = single_phrase(&[10, 20], &[1.0, 1.0]);
        let out = threshold_top_k(
            &mut net,
            root,
            &c_order,
            |_| Money::from_units(1),
            |_| 1.0,
            0,
        );
        assert!(out.top_k.is_empty());
        let out = threshold_top_k(
            &mut net,
            usize::MAX,
            &[],
            |_| Money::from_units(1),
            |_| 1.0,
            3,
        );
        assert!(out.top_k.is_empty());
        assert_eq!(out.stages, 0);
    }

    #[test]
    fn all_advertisers_tie_on_bid() {
        // Every advertiser has the same bid, so the bid stream is ordered
        // purely by id and the threshold never strictly exceeds the k-th
        // score until a list runs dry — the strict-`>` stop rule must keep
        // scanning and still return exactly the naive top-k (ranked by
        // factor, ties by id).
        let n = 9;
        let bids = vec![250u64; n];
        let factors: Vec<f64> = (0..n).map(|i| [0.8, 1.3, 0.8, 2.0, 1.3][i % 5]).collect();
        let (outcome, naive) = run(&bids, &factors, 3);
        assert_eq!(outcome.top_k, naive);
        // And with the factors tied too: everything ties on score, winners
        // are the lowest ids.
        let flat = vec![1.0; n];
        let (outcome, naive) = run(&bids, &flat, 4);
        assert_eq!(outcome.top_k, naive);
        let ids: Vec<u32> = outcome.top_k.iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // The same TaScratch driven across phrases of different sizes and
        // k's must behave exactly like a fresh scratch per run.
        let mut scratch = TaScratch::new();
        let mut out = Vec::new();
        for (n, k) in [(7usize, 2usize), (24, 5), (3, 4), (16, 1)] {
            let bids: Vec<u64> = (0..n).map(|i| (i as u64 * 37) % 19 * 10).collect();
            let factors: Vec<f64> = (0..n).map(|i| 0.2 + (i as f64 * 0.7) % 1.9).collect();
            let (mut net, root, c_order) = single_phrase(&bids, &factors);
            let (stages, stopped) = threshold_top_k_into(
                |i| net.get(root, i),
                &c_order,
                |a| Money::from_micros(bids[a.index()]),
                |a| factors[a.index()],
                k,
                &mut scratch,
                &mut out,
            );
            let (fresh, _) = run(&bids, &factors, k);
            assert_eq!(out, fresh.top_k, "n={n} k={k}");
            assert_eq!((stages, stopped), (fresh.stages, fresh.stopped_early));
        }
    }

    #[test]
    fn k_larger_than_interest() {
        let (outcome, naive) = run(&[5, 9], &[1.0, 1.0], 10);
        assert_eq!(outcome.top_k.len(), 2);
        assert_eq!(outcome.top_k, naive);
    }

    proptest! {
        /// TA always returns exactly the naive top-k (same order, same
        /// scores) — the instance-optimality claim's correctness half.
        #[test]
        fn ta_matches_naive(
            bids in proptest::collection::vec(0u64..1000, 1..24),
            factors_raw in proptest::collection::vec(0u32..300, 24),
            k in 1usize..6,
        ) {
            let factors: Vec<f64> = factors_raw[..bids.len()]
                .iter()
                .map(|&f| f as f64 / 100.0)
                .collect();
            let (outcome, naive) = run(&bids, &factors, k);
            prop_assert_eq!(outcome.top_k, naive);
        }
    }
}
