//! The Threshold Algorithm (Fagin–Lotem–Naor) driver.
//!
//! For bid phrase `q`, two descending sorted access paths exist: the
//! advertisers by `c_i^q` (precomputed — "click-through rates are
//! recalculated only occasionally … the ordering can be treated as fixed")
//! and the advertisers by `b_i`, supplied on demand by the shared merge
//! network. At stage `s` both lists advance one position; every newly seen
//! advertiser's full score `b_i · c_i^q` is resolved by random access, and
//! the algorithm "terminates early at the first stage where all top k
//! values are no less than the threshold" `b_{i_s} · c_{j_s}`.
//!
//! TA is instance-optimal among algorithms that avoid wild guesses, which
//! is precisely why the shared network only needs to supply a *prefix* of
//! each phrase's sorted order.

use std::collections::HashSet;

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_auction::score::Score;

use crate::topk::{KList, ScoredAd};

use super::MergeNetwork;

/// The result of one per-phrase TA run.
#[derive(Debug, Clone)]
pub struct TaOutcome {
    /// The top-k advertisers by `b_i · c_i^q`, best first.
    pub top_k: Vec<(AdvertiserId, Score)>,
    /// Stages executed (= sorted-access depth on each list).
    pub stages: usize,
    /// True iff the threshold fired before a list was exhausted.
    pub stopped_early: bool,
}

/// Runs TA for one phrase.
///
/// * `net`/`root` — the shared bid-sorted stream (`usize::MAX` = empty
///   phrase);
/// * `c_order` — advertisers interested in the phrase, by descending
///   `c_i^q` (ties arbitrary but fixed);
/// * `bid_of`/`factor_of` — random access to the two attributes;
/// * `k` — how many winners to find.
pub fn threshold_top_k(
    net: &mut MergeNetwork,
    root: usize,
    c_order: &[(AdvertiserId, f64)],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> TaOutcome {
    if root == usize::MAX {
        return TaOutcome {
            top_k: Vec::new(),
            stages: 0,
            stopped_early: false,
        };
    }
    threshold_top_k_on(|i| net.get(root, i), c_order, bid_of, factor_of, k)
}

/// [`threshold_top_k`] over an arbitrary descending bid stream: `stream(i)`
/// returns the `i`-th largest bid item, or `None` past the end. This is
/// the entry point the concurrent network uses (its streams are `&self`
/// closures over per-node locks).
pub fn threshold_top_k_on(
    mut stream: impl FnMut(usize) -> Option<super::SortItem>,
    c_order: &[(AdvertiserId, f64)],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> TaOutcome {
    let mut top: KList<ScoredAd> = KList::empty(k);
    let mut seen: HashSet<AdvertiserId> = HashSet::new();
    let mut stages = 0usize;
    let mut stopped_early = false;

    if k == 0 {
        return TaOutcome {
            top_k: Vec::new(),
            stages: 0,
            stopped_early: false,
        };
    }

    loop {
        let bid_item = stream(stages);
        let c_item = c_order.get(stages).copied();
        if bid_item.is_none() || c_item.is_none() {
            // One list exhausted ⇒ every interested advertiser has been
            // seen through it ⇒ all scores are known. Done, exactly.
            break;
        }
        stages += 1;
        let bid_item = bid_item.expect("checked above");
        let (c_adv, _c_val) = c_item.expect("checked above");

        for adv in [bid_item.advertiser, c_adv] {
            if seen.insert(adv) {
                let score = Score::expected_value(bid_of(adv), factor_of(adv));
                top.insert(ScoredAd::new(adv, score));
            }
        }

        // Threshold: best possible score of any unseen advertiser. The
        // paper stops at `kth ≥ τ`; we require strict `>` because our
        // top-k order breaks score ties by advertiser id, and an unseen
        // advertiser tied exactly at τ with a lower id could otherwise be
        // missed. (At `kth = τ` the scan continues and exhausts a list,
        // which resolves ties exactly.)
        let threshold = Score::expected_value(bid_item.bid, factor_of_pos(c_order, stages - 1));
        if let Some(kth) = top.kth() {
            if kth.score > threshold {
                stopped_early = true;
                break;
            }
        }
    }

    TaOutcome {
        top_k: top
            .items()
            .iter()
            .map(|s| (s.advertiser, s.score))
            .collect(),
        stages,
        stopped_early,
    }
}

fn factor_of_pos(c_order: &[(AdvertiserId, f64)], pos: usize) -> f64 {
    c_order[pos].1
}

/// Reference implementation: full scan over `I_q` (what a system without
/// TA would do). Used for differential testing and as the unshared
/// baseline in the experiments.
pub fn naive_top_k(
    interest: &[AdvertiserId],
    bid_of: impl Fn(AdvertiserId) -> Money,
    factor_of: impl Fn(AdvertiserId) -> f64,
    k: usize,
) -> Vec<(AdvertiserId, Score)> {
    let mut top: KList<ScoredAd> = KList::empty(k);
    for &adv in interest {
        top.insert(ScoredAd::new(
            adv,
            Score::expected_value(bid_of(adv), factor_of(adv)),
        ));
    }
    top.items()
        .iter()
        .map(|s| (s.advertiser, s.score))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a single-phrase environment: bids + factors for n
    /// advertisers, balanced merge network over all of them.
    fn single_phrase(
        bids: &[u64],
        factors: &[f64],
    ) -> (MergeNetwork, usize, Vec<(AdvertiserId, f64)>) {
        let mut net = MergeNetwork::new();
        let mut level: Vec<usize> = bids
            .iter()
            .enumerate()
            .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    net.merge(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        let root = level[0];
        let mut c_order: Vec<(AdvertiserId, f64)> = factors
            .iter()
            .enumerate()
            .map(|(i, &c)| (AdvertiserId::from_index(i), c))
            .collect();
        c_order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        (net, root, c_order)
    }

    fn run(bids: &[u64], factors: &[f64], k: usize) -> (TaOutcome, Vec<(AdvertiserId, Score)>) {
        let (mut net, root, c_order) = single_phrase(bids, factors);
        let bids_v = bids.to_vec();
        let factors_v = factors.to_vec();
        let outcome = threshold_top_k(
            &mut net,
            root,
            &c_order,
            |a| Money::from_micros(bids_v[a.index()]),
            |a| factors_v[a.index()],
            k,
        );
        let interest: Vec<AdvertiserId> = (0..bids.len()).map(AdvertiserId::from_index).collect();
        let naive = naive_top_k(
            &interest,
            |a| Money::from_micros(bids_v[a.index()]),
            |a| factors_v[a.index()],
            k,
        );
        (outcome, naive)
    }

    #[test]
    fn matches_naive_on_small_instance() {
        let (outcome, naive) = run(&[100, 50, 80, 20], &[0.5, 1.5, 1.0, 2.0], 2);
        assert_eq!(outcome.top_k, naive);
    }

    #[test]
    fn early_termination_on_aligned_lists() {
        // The same advertiser dominates both lists: TA stops almost
        // immediately instead of scanning all 16.
        let n = 16;
        let bids: Vec<u64> = (0..n).map(|i| 1000 - (i as u64) * 50).collect();
        let factors: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.1).collect();
        let (outcome, naive) = run(&bids, &factors, 2);
        assert_eq!(outcome.top_k, naive);
        assert!(
            outcome.stopped_early,
            "aligned lists must trigger early stop"
        );
        assert!(
            outcome.stages < n,
            "stages {} should be below n={n}",
            outcome.stages
        );
    }

    #[test]
    fn anti_correlated_lists_need_deep_scans() {
        // Bids ascending while factors descend: the winner by product sits
        // in the middle; TA must dig deeper but stay correct.
        let n = 12;
        let bids: Vec<u64> = (0..n).map(|i| 10 + (i as u64) * 10).collect();
        let factors: Vec<f64> = (0..n).map(|i| 1.2 - i as f64 * 0.1).collect();
        let (outcome, naive) = run(&bids, &factors, 3);
        assert_eq!(outcome.top_k, naive);
    }

    #[test]
    fn k_zero_and_empty_phrase() {
        let (mut net, root, c_order) = single_phrase(&[10, 20], &[1.0, 1.0]);
        let out = threshold_top_k(
            &mut net,
            root,
            &c_order,
            |_| Money::from_units(1),
            |_| 1.0,
            0,
        );
        assert!(out.top_k.is_empty());
        let out = threshold_top_k(
            &mut net,
            usize::MAX,
            &[],
            |_| Money::from_units(1),
            |_| 1.0,
            3,
        );
        assert!(out.top_k.is_empty());
        assert_eq!(out.stages, 0);
    }

    #[test]
    fn k_larger_than_interest() {
        let (outcome, naive) = run(&[5, 9], &[1.0, 1.0], 10);
        assert_eq!(outcome.top_k.len(), 2);
        assert_eq!(outcome.top_k, naive);
    }

    proptest! {
        /// TA always returns exactly the naive top-k (same order, same
        /// scores) — the instance-optimality claim's correctness half.
        #[test]
        fn ta_matches_naive(
            bids in proptest::collection::vec(0u64..1000, 1..24),
            factors_raw in proptest::collection::vec(0u32..300, 24),
            k in 1usize..6,
        ) {
            let factors: Vec<f64> = factors_raw[..bids.len()]
                .iter()
                .map(|&f| f as f64 / 100.0)
                .collect();
            let (outcome, naive) = run(&bids, &factors, k);
            prop_assert_eq!(outcome.top_k, naive);
        }
    }
}
