//! The shared merge-sort planner (Section III-C).
//!
//! "We propose the following simple bottom-up greedy heuristic … that
//! starts out with the leaf nodes, each corresponding to a distinct
//! advertiser, and successively merges the two nodes that would lead to
//! the largest savings in expected cost. … At any point, we can merge
//! nodes u and v into a new node w only if `Q_u ∩ Q_v ≠ ∅`,
//! `I_u ∩ I_v = ∅`, and `|I_u| = |I_v|`. We then set `Q_w = Q_u ∩ Q_v`
//! and `I_w = I_u ∪ I_v`."
//!
//! One refinement over the paper's sketch: a node that has been given a
//! parent for the phrases in `Q_w` may still need parents for its *other*
//! phrases, so each node carries a `remaining` phrase set (initialized to
//! its serving set, shrunk every time a parent adopts it). Merging is
//! driven by `remaining` sets; this keeps every per-phrase structure a
//! true tree (one parent per node per phrase). After no positive-savings
//! merge exists, each phrase's surviving roots are folded together
//! smallest-first so every phrase ends with a single root (these final
//! merges are the unshared tail every plan needs; the paper's
//! power-of-two sizing assumption is relaxed here, as its Section III-B
//! says the discussion "generalizes to arbitrary cardinalities in a
//! straightforward way").

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_setcover::BitSet;

use super::MergeNetwork;

/// One node of a shared merge-sort plan.
#[derive(Debug, Clone)]
pub struct SortPlanNode {
    /// Advertisers below this node (`I_v`).
    pub advertisers: BitSet,
    /// Phrases whose merge tree contains this node (`Q_v` at creation).
    pub serves: BitSet,
    /// Phrases for which this node still lacks a parent.
    pub remaining: BitSet,
    /// Children (`None` for advertiser leaves).
    pub children: Option<(usize, usize)>,
}

/// A shared merge-sort plan across phrases.
#[derive(Debug, Clone)]
pub struct SortPlan {
    /// Advertiser universe size.
    pub advertiser_count: usize,
    /// Plan nodes; `0..advertiser_count` are leaves (in advertiser
    /// order), except that advertisers interested in no phrase get a
    /// placeholder leaf serving nothing.
    pub nodes: Vec<SortPlanNode>,
    /// Per phrase, the root node sorting `I_q`.
    pub roots: Vec<usize>,
}

impl SortPlan {
    /// The expected full-sort cost
    /// `Σ_v |I_v| (1 − Π_{q: v ⇝ q} (1 − sr_q))` (Section III-B).
    pub fn expected_cost(&self, search_rates: &[f64]) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.children.is_some())
            .map(|n| {
                let mut none = 1.0;
                for q in n.serves.iter() {
                    none *= 1.0 - search_rates[q];
                }
                n.advertisers.len() as f64 * (1.0 - none)
            })
            .sum()
    }

    /// The unshared baseline: an independent merge-sort tree per phrase,
    /// expected cost `Σ_q sr_q · (full merge-sort cost of |I_q|)` where a
    /// balanced tree over `s` leaves costs `Σ_v |I_v| ≈ s·⌈log₂ s⌉`.
    pub fn unshared_expected_cost(interest: &[BitSet], search_rates: &[f64]) -> f64 {
        interest
            .iter()
            .zip(search_rates)
            .map(|(iq, &sr)| {
                let s = iq.len();
                sr * balanced_merge_cost(s) as f64
            })
            .sum()
    }

    /// Instantiates the runtime network for this plan given each
    /// advertiser's bid. Returns the network plus per-phrase root ids in
    /// the network's node space.
    pub fn instantiate(&self, bids: &[Money]) -> (MergeNetwork, Vec<usize>) {
        assert_eq!(bids.len(), self.advertiser_count, "one bid per advertiser");
        let mut net = MergeNetwork::new();
        let mut net_id = Vec::with_capacity(self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            match node.children {
                None => {
                    let adv = AdvertiserId::from_index(idx);
                    net_id.push(net.leaf(adv, bids[idx]));
                }
                Some((a, b)) => {
                    net_id.push(net.merge(net_id[a], net_id[b]));
                }
            }
        }
        let roots = self
            .roots
            .iter()
            .map(|&r| {
                if r == usize::MAX {
                    usize::MAX
                } else {
                    net_id[r]
                }
            })
            .collect();
        (net, roots)
    }

    /// Per phrase, the marginal expected full-sort cost of serving the
    /// phrase through this shared schedule: the difference
    /// [`SortPlan::expected_cost`] drops by when `sr_q` is set to zero,
    /// i.e. `Σ_{v: v serves q} |I_v| · sr_q · Π_{p ∈ Q_v, p ≠ q} (1 − sr_p)`.
    /// Work on a node some *other* occurring phrase would pay for anyway
    /// is attributed to nobody, so these are per-phrase lower bounds that
    /// sum to at most the total expected cost. The adaptive hybrid router
    /// compares them against the Section II-D plan marginals to seed
    /// per-phrase routes.
    pub fn phrase_marginal_costs(&self, search_rates: &[f64]) -> Vec<f64> {
        let m = self.roots.len();
        let mut marginals = vec![0.0; m];
        let mut qs: Vec<usize> = Vec::new();
        let mut prefix: Vec<f64> = Vec::new();
        for node in self.nodes.iter().filter(|n| n.children.is_some()) {
            qs.clear();
            qs.extend(node.serves.iter());
            // prefix[i] = Π_{j<i} (1 − sr_{qs[j]}); suffix runs the
            // mirror product so each phrase gets Π over the others.
            prefix.clear();
            let mut acc = 1.0;
            for &q in &qs {
                prefix.push(acc);
                acc *= 1.0 - search_rates[q];
            }
            let size = node.advertisers.len() as f64;
            let mut suffix = 1.0;
            for i in (0..qs.len()).rev() {
                let q = qs[i];
                marginals[q] += size * search_rates[q] * prefix[i] * suffix;
                suffix *= 1.0 - search_rates[q];
            }
        }
        marginals
    }

    /// Stable-partitions the internal nodes so that every node serving at
    /// least one phrase in `hot` precedes all internal nodes serving
    /// none. Leaves stay at `0..advertiser_count`, and within each class
    /// the original order is kept, which preserves the children-before-
    /// parent invariant [`SortPlan::instantiate`] relies on: a hot node's
    /// children are hot (a parent's serving set is a subset of each
    /// child's), and a cold node's hot children only move *earlier*.
    ///
    /// The adaptive hybrid resolver compiles its network over *all*
    /// phrases but initially activates only the sort-routed subset; this
    /// permutation packs that subset's cones into a contiguous arena
    /// prefix — the same layout a network compiled over just the subset
    /// would have — so the idle cones cost no locality, only memory.
    pub fn cluster_hot_phrases(&mut self, hot: &[bool]) {
        let n = self.advertiser_count;
        let total = self.nodes.len();
        let is_hot = |node: &SortPlanNode| node.serves.iter().any(|q| hot[q]);
        let mut new_of_old: Vec<usize> = (0..total).collect();
        let mut next = n;
        for pass_hot in [true, false] {
            for (idx, node) in self.nodes.iter().enumerate().skip(n) {
                if is_hot(node) == pass_hot {
                    new_of_old[idx] = next;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next, total);
        let mut permuted: Vec<Option<SortPlanNode>> = vec![None; total];
        for (old, mut node) in self.nodes.drain(..).enumerate() {
            if let Some((a, b)) = node.children {
                node.children = Some((new_of_old[a], new_of_old[b]));
            }
            permuted[new_of_old[old]] = Some(node);
        }
        self.nodes = permuted
            .into_iter()
            .map(|node| node.expect("permutation is a bijection"))
            .collect();
        for root in &mut self.roots {
            if *root != usize::MAX {
                *root = new_of_old[*root];
            }
        }
    }

    /// Per leaf (advertiser index), the ids of every internal node whose
    /// advertiser set contains it — the leaf's *cone*, i.e. exactly the
    /// operators a bid change at that leaf invalidates. Computed once per
    /// plan (O(Σ_v |I_v|), the same quantity the Section III-B cost model
    /// bounds) and handed to `MergeNetwork::refresh`, which is then
    /// O(dirty cones) instead of O(network).
    ///
    /// Node ids double as network node ids: [`SortPlan::instantiate`]
    /// pushes one network node per plan node in order.
    pub fn leaf_cones(&self) -> Vec<Vec<u32>> {
        let mut cones: Vec<Vec<u32>> = vec![Vec::new(); self.advertiser_count];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.children.is_some() {
                for leaf in node.advertisers.iter() {
                    cones[leaf].push(idx as u32);
                }
            }
        }
        cones
    }
}

/// Total operator cost of a balanced merge-sort over `s` leaves:
/// `Σ_v |I_v|` over internal nodes.
fn balanced_merge_cost(s: usize) -> usize {
    if s <= 1 {
        return 0;
    }
    let half = s / 2;
    balanced_merge_cost(half) + balanced_merge_cost(s - half) + s
}

/// The expected number of queries in `Q_w` occurring beyond the first —
/// the paper's savings weight
/// `Σ_i [ (Π_{j<i} (1 − sr_j)) · sr_i · (Σ_{j>i} sr_j) ]`.
pub fn expected_beyond_first(rates: &[f64]) -> f64 {
    let n = rates.len();
    let mut total = 0.0;
    let mut none_before = 1.0;
    for i in 0..n {
        let after: f64 = rates[i + 1..].iter().sum();
        total += none_before * rates[i] * after;
        none_before *= 1.0 - rates[i];
    }
    total
}

/// Builds the per-advertiser leaf nodes (node index = advertiser index).
fn leaf_nodes(advertiser_count: usize, interest: &[BitSet]) -> Vec<SortPlanNode> {
    let m = interest.len();
    (0..advertiser_count)
        .map(|i| {
            let mut serves = BitSet::new(m);
            for (q, iq) in interest.iter().enumerate() {
                if iq.contains(i) {
                    serves.insert(q);
                }
            }
            SortPlanNode {
                advertisers: BitSet::singleton(advertiser_count, i),
                serves: serves.clone(),
                remaining: serves,
                children: None,
            }
        })
        .collect()
}

/// Folds each phrase's surviving roots until one root per phrase remains,
/// smallest nodes first; returns the per-phrase roots.
fn complete_per_phrase(nodes: &mut Vec<SortPlanNode>, m: usize) -> Vec<usize> {
    let mut roots = Vec::with_capacity(m);
    for q in 0..m {
        loop {
            let mut owners: Vec<usize> = (0..nodes.len())
                .filter(|&v| nodes[v].remaining.contains(q))
                .collect();
            match owners.len() {
                0 => {
                    roots.push(usize::MAX);
                    break;
                }
                1 => {
                    roots.push(owners[0]);
                    break;
                }
                _ => {
                    owners.sort_by_key(|&v| (nodes[v].advertisers.len(), v));
                    adopt(nodes, owners[0], owners[1]);
                }
            }
        }
    }
    roots
}

/// The Section III-C greedy planner, considering every node pair at every
/// step (the paper's formulation). Quadratic in the node count per step —
/// intended for up to a few hundred advertisers; use
/// [`build_shared_sort_plan_bucketed`] at scale.
///
/// `interest[q]` is `I_q` over an advertiser universe of size `n`;
/// `search_rates[q]` is `sr_q`.
pub fn build_shared_sort_plan(
    advertiser_count: usize,
    interest: &[BitSet],
    search_rates: &[f64],
) -> SortPlan {
    let m = interest.len();
    assert_eq!(search_rates.len(), m, "one rate per phrase");
    for (q, iq) in interest.iter().enumerate() {
        assert_eq!(
            iq.capacity(),
            advertiser_count,
            "interest set {q} universe mismatch"
        );
    }

    let mut nodes = leaf_nodes(advertiser_count, interest);

    // Greedy phase: merge the pair with the largest expected savings
    // |I_w| · E[beyond-first occurrences of Q_w].
    loop {
        let active: Vec<usize> = (0..nodes.len())
            .filter(|&v| !nodes[v].remaining.is_empty())
            .collect();
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &u) in active.iter().enumerate() {
            for &v in &active[ai + 1..] {
                if nodes[u].advertisers.len() != nodes[v].advertisers.len() {
                    continue;
                }
                if !nodes[u].advertisers.is_disjoint(&nodes[v].advertisers) {
                    continue;
                }
                let qw = nodes[u].remaining.intersection(&nodes[v].remaining);
                if qw.is_empty() {
                    continue;
                }
                let rates: Vec<f64> = qw.iter().map(|q| search_rates[q]).collect();
                let size = nodes[u].advertisers.len() + nodes[v].advertisers.len();
                let savings = size as f64 * expected_beyond_first(&rates);
                if savings > 0.0 && best.is_none_or(|(s, _, _)| savings > s) {
                    best = Some((savings, u, v));
                }
            }
        }
        match best {
            Some((_, u, v)) => {
                adopt(&mut nodes, u, v);
            }
            None => break,
        }
    }

    // Completion phase: fold each phrase's surviving roots, smallest
    // first, until one root per phrase remains (empty phrases get a
    // sentinel root).
    let roots = complete_per_phrase(&mut nodes, m);

    SortPlan {
        advertiser_count,
        nodes,
        roots,
    }
}

/// A scalable variant of the Section III-C planner.
///
/// Advertisers with the same phrase signature are interchangeable, so the
/// quadratic pair search over leaves is wasted work. This variant:
///
/// 1. groups advertisers into *fragments* by signature (exactly the
///    Section II-D stage-1 idea, applied to sorting),
/// 2. merge-sorts each fragment with a balanced tree (every internal node
///    serves the whole signature; for a fixed leaf set a balanced tree
///    minimizes `Σ_v |I_v|`),
/// 3. runs the paper's greedy savings rule across the fragment roots and
///    their merge results (a small node set), with the equal-size
///    constraint relaxed as in the completion phase,
/// 4. completes each phrase as usual.
pub fn build_shared_sort_plan_bucketed(
    advertiser_count: usize,
    interest: &[BitSet],
    search_rates: &[f64],
) -> SortPlan {
    let m = interest.len();
    assert_eq!(search_rates.len(), m, "one rate per phrase");
    for (q, iq) in interest.iter().enumerate() {
        assert_eq!(
            iq.capacity(),
            advertiser_count,
            "interest set {q} universe mismatch"
        );
    }
    let mut nodes = leaf_nodes(advertiser_count, interest);

    // Stage 1: fragments by signature (ignoring advertisers in no
    // phrase).
    let mut groups: std::collections::HashMap<BitSet, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, node) in nodes.iter().enumerate().take(advertiser_count) {
        if !node.serves.is_empty() {
            groups.entry(node.serves.clone()).or_default().push(i);
        }
    }
    let mut group_list: Vec<(BitSet, Vec<usize>)> = groups.into_iter().collect();
    group_list.sort_by_key(|(_, members)| members[0]);

    // Stage 2: balanced tree per fragment.
    let mut frontier: Vec<usize> = Vec::new();
    for (_, members) in &group_list {
        let mut level = members.clone();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(adopt(&mut nodes, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        frontier.push(level[0]);
    }

    // Stage 3: greedy savings rule across the (small) frontier.
    loop {
        let active: Vec<usize> = frontier
            .iter()
            .copied()
            .filter(|&v| !nodes[v].remaining.is_empty())
            .collect();
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &u) in active.iter().enumerate() {
            for &v in &active[ai + 1..] {
                if !nodes[u].advertisers.is_disjoint(&nodes[v].advertisers) {
                    continue;
                }
                let qw = nodes[u].remaining.intersection(&nodes[v].remaining);
                if qw.is_empty() {
                    continue;
                }
                let rates: Vec<f64> = qw.iter().map(|q| search_rates[q]).collect();
                let size = nodes[u].advertisers.len() + nodes[v].advertisers.len();
                let savings = size as f64 * expected_beyond_first(&rates);
                if savings > 0.0 && best.is_none_or(|(s, _, _)| savings > s) {
                    best = Some((savings, u, v));
                }
            }
        }
        match best {
            Some((_, u, v)) => {
                let w = adopt(&mut nodes, u, v);
                frontier.push(w);
            }
            None => break,
        }
    }

    let roots = complete_per_phrase(&mut nodes, m);
    SortPlan {
        advertiser_count,
        nodes,
        roots,
    }
}

/// Merges `u` and `v` into a new node adopting them for the phrases in
/// `remaining(u) ∩ remaining(v)`.
fn adopt(nodes: &mut Vec<SortPlanNode>, u: usize, v: usize) -> usize {
    let qw = nodes[u].remaining.intersection(&nodes[v].remaining);
    debug_assert!(!qw.is_empty(), "merge without a common phrase");
    debug_assert!(
        nodes[u].advertisers.is_disjoint(&nodes[v].advertisers),
        "advertiser sets must be disjoint"
    );
    let iw = nodes[u].advertisers.union(&nodes[v].advertisers);
    nodes[u].remaining.difference_with(&qw);
    nodes[v].remaining.difference_with(&qw);
    let idx = nodes.len();
    nodes.push(SortPlanNode {
        advertisers: iw,
        serves: qw.clone(),
        remaining: qw,
        children: Some((u, v)),
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    fn plan_roots_sort_correctly(plan: &SortPlan, interest: &[BitSet], bids: &[Money]) {
        let (mut net, roots) = plan.instantiate(bids);
        for (q, iq) in interest.iter().enumerate() {
            if iq.is_empty() {
                continue;
            }
            let got: Vec<u32> = {
                let mut out = Vec::new();
                let mut i = 0;
                while let Some(item) = net.get(roots[q], i) {
                    out.push(item.advertiser.0);
                    i += 1;
                }
                out
            };
            let mut want: Vec<usize> = iq.iter().collect();
            want.sort_by(|&a, &b| bids[b].cmp(&bids[a]).then(a.cmp(&b)));
            let want: Vec<u32> = want.iter().map(|&a| a as u32).collect();
            assert_eq!(got, want, "phrase {q} stream mismatch");
        }
    }

    #[test]
    fn expected_beyond_first_formula() {
        // One query: nothing beyond the first. Two certain queries: 1.
        assert_eq!(expected_beyond_first(&[1.0]), 0.0);
        assert_eq!(expected_beyond_first(&[1.0, 1.0]), 1.0);
        assert_eq!(expected_beyond_first(&[]), 0.0);
        // Two queries p each: E[beyond first] = p^2 (both occur).
        let p = 0.3;
        let got = expected_beyond_first(&[p, p]);
        assert!((got - p * p).abs() < 1e-12, "{got}");
    }

    #[test]
    fn shared_block_is_built_once() {
        // Two phrases sharing advertisers {0,1}; exclusive {2} and {3}.
        let interest = vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])];
        let plan = build_shared_sort_plan(4, &interest, &[0.9, 0.9]);
        // The shared pair {0,1} should be a single node serving both.
        let shared = plan
            .nodes
            .iter()
            .find(|n| n.advertisers == bs(4, &[0, 1]))
            .expect("shared node exists");
        assert_eq!(shared.serves.len(), 2, "serves both phrases");
        let bids: Vec<Money> = [4u64, 3, 2, 1]
            .iter()
            .map(|&u| Money::from_units(u))
            .collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn disjoint_phrases_share_nothing() {
        let interest = vec![bs(4, &[0, 1]), bs(4, &[2, 3])];
        let plan = build_shared_sort_plan(4, &interest, &[0.5, 0.5]);
        for n in plan.nodes.iter().filter(|n| n.children.is_some()) {
            assert_eq!(n.serves.len(), 1, "no operator can serve both");
        }
        let bids: Vec<Money> = [1u64, 2, 3, 4]
            .iter()
            .map(|&u| Money::from_units(u))
            .collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn empty_phrase_gets_sentinel_root() {
        let interest = vec![bs(2, &[0, 1]), BitSet::new(2)];
        let plan = build_shared_sort_plan(2, &interest, &[1.0, 0.5]);
        assert_eq!(plan.roots[1], usize::MAX);
        assert_ne!(plan.roots[0], usize::MAX);
    }

    #[test]
    fn expected_cost_drops_with_sharing() {
        // Heavy overlap: shared plan must beat independent sorts.
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let plan = build_shared_sort_plan(8, &interest, &rates);
        let shared = plan.expected_cost(&rates);
        let unshared = SortPlan::unshared_expected_cost(&interest, &rates);
        assert!(
            shared < unshared,
            "shared {shared} should beat unshared {unshared}"
        );
    }

    #[test]
    fn phrase_marginals_match_rate_zeroing() {
        // The closed-form marginal must equal the expected-cost drop from
        // zeroing that phrase's rate, phrase by phrase.
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
            BitSet::new(8),
        ];
        let rates = [0.9, 0.4, 1.0, 0.0];
        let plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        let marginals = plan.phrase_marginal_costs(&rates);
        let with_all = plan.expected_cost(&rates);
        for q in 0..rates.len() {
            let mut zeroed = rates;
            zeroed[q] = 0.0;
            let drop = with_all - plan.expected_cost(&zeroed);
            assert!(
                (marginals[q] - drop).abs() < 1e-9,
                "phrase {q}: marginal {} vs rescan drop {drop}",
                marginals[q]
            );
        }
        assert_eq!(marginals[3], 0.0, "empty phrase costs nothing");
    }

    #[test]
    fn singleton_phrase_needs_no_merges() {
        let interest = vec![bs(3, &[1])];
        let plan = build_shared_sort_plan(3, &interest, &[1.0]);
        assert_eq!(plan.roots[0], 1, "the leaf itself is the root");
        assert_eq!(plan.expected_cost(&[1.0]), 0.0);
    }

    #[test]
    fn bucketed_planner_matches_structure_and_scales() {
        // Bucketed and exhaustive planners may produce different trees,
        // but both sort correctly and share the fragment blocks.
        let interest = vec![bs(6, &[0, 1, 2, 3]), bs(6, &[0, 1, 4, 5])];
        let rates = [0.9, 0.9];
        let bucketed = build_shared_sort_plan_bucketed(6, &interest, &rates);
        let shared = bucketed
            .nodes
            .iter()
            .find(|n| n.advertisers == bs(6, &[0, 1]))
            .expect("shared fragment node exists");
        assert_eq!(shared.serves.len(), 2);
        let bids: Vec<Money> = (0..6).map(|i| Money::from_units(10 - i as u64)).collect();
        plan_roots_sort_correctly(&bucketed, &interest, &bids);
    }

    #[test]
    fn bucketed_planner_handles_thousands_of_advertisers() {
        use std::time::Instant;
        let n = 5000;
        let m = 12;
        // Topic-like signatures: advertiser i is interested in the
        // phrases with q % 4 == i % 4, plus generalists (i % 5 == 0) in
        // everything.
        let interest: Vec<BitSet> = (0..m)
            .map(|q| BitSet::from_elements(n, (0..n).filter(|i| i % 5 == 0 || q % 4 == i % 4)))
            .collect();
        let rates = vec![0.5; m];
        let started = Instant::now();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &rates);
        assert!(
            started.elapsed().as_secs_f64() < 10.0,
            "bucketed planner must scale"
        );
        for (q, iq) in interest.iter().enumerate() {
            assert_eq!(&plan.nodes[plan.roots[q]].advertisers, iq);
        }
    }

    #[test]
    fn cluster_hot_phrases_preserves_streams_and_prefixes() {
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let mut plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        let cost_before = plan.expected_cost(&rates);
        let hot = [false, true, false];
        plan.cluster_hot_phrases(&hot);
        // Leaves untouched; children always precede parents.
        for (idx, node) in plan.nodes.iter().enumerate() {
            match node.children {
                None => assert!(idx < plan.advertiser_count, "leaf {idx} out of place"),
                Some((a, b)) => assert!(a < idx && b < idx, "child after parent at {idx}"),
            }
        }
        // Hot internals form a contiguous prefix of the internal range.
        let internal_hot: Vec<bool> = plan.nodes[plan.advertiser_count..]
            .iter()
            .map(|n| n.serves.iter().any(|q| hot[q]))
            .collect();
        let first_cold = internal_hot.iter().position(|&h| !h).unwrap_or(0);
        assert!(
            internal_hot[first_cold..].iter().all(|&h| !h),
            "hot internals are not a prefix: {internal_hot:?}"
        );
        // Semantics unchanged: same expected cost, same sorted streams.
        assert_eq!(plan.expected_cost(&rates), cost_before);
        let bids: Vec<Money> = (0..8).map(|i| Money::from_units(20 - i as u64)).collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn bucketed_expected_cost_beats_unshared() {
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        assert!(plan.expected_cost(&rates) < SortPlan::unshared_expected_cost(&interest, &rates));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The bucketed planner's streams also match independent sorts.
        #[test]
        fn bucketed_streams_match_independent_sorts(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..8, 0..8), 1..5),
            bid_raw in proptest::collection::vec(0u64..100, 8),
            rates in proptest::collection::vec(0.1f64..=1.0, 5),
        ) {
            let interest: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(8, s.iter().copied()))
                .collect();
            let m = interest.len();
            let plan = build_shared_sort_plan_bucketed(8, &interest, &rates[..m]);
            let bids: Vec<Money> = bid_raw.iter().map(|&b| Money::from_micros(b)).collect();
            plan_roots_sort_correctly(&plan, &interest, &bids);
        }

        /// Every phrase's stream equals an independent sort of `I_q`, for
        /// random interests and bids.
        #[test]
        fn plan_streams_match_independent_sorts(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..8, 0..8), 1..5),
            bid_raw in proptest::collection::vec(0u64..100, 8),
            rates in proptest::collection::vec(0.1f64..=1.0, 5),
        ) {
            let interest: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(8, s.iter().copied()))
                .collect();
            let m = interest.len();
            let plan = build_shared_sort_plan(8, &interest, &rates[..m]);
            let bids: Vec<Money> = bid_raw.iter().map(|&b| Money::from_micros(b)).collect();
            plan_roots_sort_correctly(&plan, &interest, &bids);
            // Tree sanity: every phrase root's advertiser set is I_q.
            for (q, iq) in interest.iter().enumerate() {
                if iq.is_empty() {
                    prop_assert_eq!(plan.roots[q], usize::MAX);
                } else {
                    prop_assert_eq!(&plan.nodes[plan.roots[q]].advertisers, iq);
                }
            }
        }
    }
}
