//! The shared merge-sort planner (Section III-C).
//!
//! "We propose the following simple bottom-up greedy heuristic … that
//! starts out with the leaf nodes, each corresponding to a distinct
//! advertiser, and successively merges the two nodes that would lead to
//! the largest savings in expected cost. … At any point, we can merge
//! nodes u and v into a new node w only if `Q_u ∩ Q_v ≠ ∅`,
//! `I_u ∩ I_v = ∅`, and `|I_u| = |I_v|`. We then set `Q_w = Q_u ∩ Q_v`
//! and `I_w = I_u ∪ I_v`."
//!
//! One refinement over the paper's sketch: a node that has been given a
//! parent for the phrases in `Q_w` may still need parents for its *other*
//! phrases, so each node carries a `remaining` phrase set (initialized to
//! its serving set, shrunk every time a parent adopts it). Merging is
//! driven by `remaining` sets; this keeps every per-phrase structure a
//! true tree (one parent per node per phrase). After no positive-savings
//! merge exists, each phrase's surviving roots are folded together
//! smallest-first so every phrase ends with a single root (these final
//! merges are the unshared tail every plan needs; the paper's
//! power-of-two sizing assumption is relaxed here, as its Section III-B
//! says the discussion "generalizes to arbitrary cardinalities in a
//! straightforward way").
//!
//! # Memory layout
//!
//! The finished [`SortPlan`] is an index-based arena: per-node `u32`
//! child pairs, subtree sizes, and one shared CSR pool of served phrase
//! ids — no per-node heap allocations and nothing whose footprint grows
//! with the advertiser *universe* rather than with actual interest. The
//! earlier representation kept three `BitSet`s per node (advertisers,
//! serves, remaining), each sized to the full universe; at n = 1M and
//! ~2n nodes that is O(n²) bits — hundreds of gigabytes — where the
//! arena is O(n + Σ|interest|). Builders keep their working sets sparse
//! for the same reason: [`build_shared_sort_plan_sparse`] never
//! materializes a universe-sized set. The quadratic reference builder
//! ([`build_shared_sort_plan`]) still uses dense `BitSet` working nodes
//! internally — it is only meant for a few hundred advertisers — and
//! converts to the arena at the end.

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;
use ssa_setcover::BitSet;

use super::{LeafCones, MergeNetwork};

/// Sentinel child index marking a leaf (and the `u32` no-root marker).
const NO_NODE: u32 = u32::MAX;

/// A shared merge-sort plan across phrases, stored as an index arena.
///
/// Nodes `0..advertiser_count` are leaves in advertiser order
/// (advertisers interested in no phrase get a placeholder leaf serving
/// nothing); internal nodes follow, children always before parents.
#[derive(Debug, Clone)]
pub struct SortPlan {
    advertiser_count: usize,
    /// Per node, the two children (`[NO_NODE; 2]` for leaves).
    children: Vec<[u32; 2]>,
    /// Per node, `|I_v|` — the number of leaves below it.
    sizes: Vec<u32>,
    /// CSR offsets into `serves_pool`, length `node_count + 1`.
    serves_off: Vec<u32>,
    /// Concatenated ascending phrase ids each node serves (`Q_v` at
    /// creation time for internal nodes; the full signature for leaves).
    serves_pool: Vec<u32>,
    /// Per phrase, the root node (`NO_NODE` for empty phrases).
    roots: Vec<u32>,
}

impl SortPlan {
    /// Advertiser universe size (also the number of leaf nodes).
    #[inline]
    pub fn advertiser_count(&self) -> usize {
        self.advertiser_count
    }

    /// Total node count (leaves + internal).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.children.len()
    }

    /// Number of phrases the plan was built over.
    #[inline]
    pub fn phrase_count(&self) -> usize {
        self.roots.len()
    }

    /// The children of `v`, or `None` for a leaf.
    #[inline]
    pub fn node_children(&self, v: usize) -> Option<(usize, usize)> {
        let [a, b] = self.children[v];
        if a == NO_NODE {
            None
        } else {
            Some((a as usize, b as usize))
        }
    }

    /// True iff `v` is an internal (merge) node.
    #[inline]
    pub fn is_internal(&self, v: usize) -> bool {
        self.children[v][0] != NO_NODE
    }

    /// `|I_v|` — advertisers below node `v`.
    #[inline]
    pub fn node_size(&self, v: usize) -> usize {
        self.sizes[v] as usize
    }

    /// Ascending phrase ids node `v` serves.
    #[inline]
    pub fn node_serves(&self, v: usize) -> &[u32] {
        let lo = self.serves_off[v] as usize;
        let hi = self.serves_off[v + 1] as usize;
        &self.serves_pool[lo..hi]
    }

    /// The root node sorting `I_q`, or `usize::MAX` for an empty phrase
    /// (the same sentinel callers have always matched on).
    #[inline]
    pub fn root(&self, q: usize) -> usize {
        let r = self.roots[q];
        if r == NO_NODE {
            usize::MAX
        } else {
            r as usize
        }
    }

    /// Heap footprint of the arena in bytes (capacities, not lengths) —
    /// consumed by the memory-scaling benchmark's per-advertiser gate.
    pub fn heap_bytes(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<[u32; 2]>()
            + self.sizes.capacity() * 4
            + self.serves_off.capacity() * 4
            + self.serves_pool.capacity() * 4
            + self.roots.capacity() * 4
    }

    /// Reconstructs `I_v` as a `BitSet` by walking the subtree — for
    /// tests and diagnostics only (O(subtree), allocates a universe-wide
    /// set; the hot paths never need the materialized set).
    pub fn node_advertisers(&self, v: usize) -> BitSet {
        let mut out = BitSet::new(self.advertiser_count);
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            match self.node_children(x) {
                None => {
                    out.insert(x);
                }
                Some((a, b)) => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        out
    }

    /// The expected full-sort cost
    /// `Σ_v |I_v| (1 − Π_{q: v ⇝ q} (1 − sr_q))` (Section III-B).
    pub fn expected_cost(&self, search_rates: &[f64]) -> f64 {
        (self.advertiser_count..self.node_count())
            .map(|v| {
                let mut none = 1.0;
                for &q in self.node_serves(v) {
                    none *= 1.0 - search_rates[q as usize];
                }
                self.sizes[v] as f64 * (1.0 - none)
            })
            .sum()
    }

    /// The unshared baseline: an independent merge-sort tree per phrase,
    /// expected cost `Σ_q sr_q · (full merge-sort cost of |I_q|)` where a
    /// balanced tree over `s` leaves costs `Σ_v |I_v| ≈ s·⌈log₂ s⌉`.
    pub fn unshared_expected_cost(interest: &[BitSet], search_rates: &[f64]) -> f64 {
        interest
            .iter()
            .zip(search_rates)
            .map(|(iq, &sr)| sr * balanced_merge_cost(iq.len()) as f64)
            .sum()
    }

    /// [`SortPlan::unshared_expected_cost`] from per-phrase interest
    /// *sizes* — the sparse-path equivalent (the cost only depends on
    /// `|I_q|`).
    pub fn unshared_expected_cost_sizes(sizes: &[usize], search_rates: &[f64]) -> f64 {
        sizes
            .iter()
            .zip(search_rates)
            .map(|(&s, &sr)| sr * balanced_merge_cost(s) as f64)
            .sum()
    }

    /// Instantiates the runtime network for this plan given each
    /// advertiser's bid. Returns the network plus per-phrase root ids in
    /// the network's node space.
    pub fn instantiate(&self, bids: &[Money]) -> (MergeNetwork, Vec<usize>) {
        assert_eq!(bids.len(), self.advertiser_count, "one bid per advertiser");
        let mut net = MergeNetwork::new();
        let mut net_id = Vec::with_capacity(self.node_count());
        #[allow(clippy::needless_range_loop)] // idx spans the node arena; bids only covers leaves
        for idx in 0..self.node_count() {
            match self.node_children(idx) {
                None => {
                    let adv = AdvertiserId::from_index(idx);
                    net_id.push(net.leaf(adv, bids[idx]));
                }
                Some((a, b)) => {
                    net_id.push(net.merge(net_id[a], net_id[b]));
                }
            }
        }
        let roots = (0..self.phrase_count())
            .map(|q| {
                let r = self.root(q);
                if r == usize::MAX {
                    usize::MAX
                } else {
                    net_id[r]
                }
            })
            .collect();
        (net, roots)
    }

    /// Per phrase, the marginal expected full-sort cost of serving the
    /// phrase through this shared schedule: the difference
    /// [`SortPlan::expected_cost`] drops by when `sr_q` is set to zero,
    /// i.e. `Σ_{v: v serves q} |I_v| · sr_q · Π_{p ∈ Q_v, p ≠ q} (1 − sr_p)`.
    /// Work on a node some *other* occurring phrase would pay for anyway
    /// is attributed to nobody, so these are per-phrase lower bounds that
    /// sum to at most the total expected cost. The adaptive hybrid router
    /// compares them against the Section II-D plan marginals to seed
    /// per-phrase routes.
    pub fn phrase_marginal_costs(&self, search_rates: &[f64]) -> Vec<f64> {
        let m = self.phrase_count();
        let mut marginals = vec![0.0; m];
        let mut prefix: Vec<f64> = Vec::new();
        for v in self.advertiser_count..self.node_count() {
            let qs = self.node_serves(v);
            // prefix[i] = Π_{j<i} (1 − sr_{qs[j]}); suffix runs the
            // mirror product so each phrase gets Π over the others.
            prefix.clear();
            let mut acc = 1.0;
            for &q in qs {
                prefix.push(acc);
                acc *= 1.0 - search_rates[q as usize];
            }
            let size = self.sizes[v] as f64;
            let mut suffix = 1.0;
            for i in (0..qs.len()).rev() {
                let q = qs[i] as usize;
                marginals[q] += size * search_rates[q] * prefix[i] * suffix;
                suffix *= 1.0 - search_rates[q];
            }
        }
        marginals
    }

    /// Stable-partitions the internal nodes so that every node serving at
    /// least one phrase in `hot` precedes all internal nodes serving
    /// none. Leaves stay at `0..advertiser_count`, and within each class
    /// the original order is kept, which preserves the children-before-
    /// parent invariant [`SortPlan::instantiate`] relies on: a hot node's
    /// children are hot (a parent's serving set is a subset of each
    /// child's), and a cold node's hot children only move *earlier*.
    ///
    /// The adaptive hybrid resolver compiles its network over *all*
    /// phrases but initially activates only the sort-routed subset; this
    /// permutation packs that subset's cones into a contiguous arena
    /// prefix — the same layout a network compiled over just the subset
    /// would have — so the idle cones cost no locality, only memory.
    pub fn cluster_hot_phrases(&mut self, hot: &[bool]) {
        let n = self.advertiser_count;
        let total = self.node_count();
        let is_hot =
            |plan: &SortPlan, v: usize| plan.node_serves(v).iter().any(|&q| hot[q as usize]);
        let mut new_of_old: Vec<u32> = (0..total as u32).collect();
        let mut next = n as u32;
        for pass_hot in [true, false] {
            for (idx, slot) in new_of_old.iter_mut().enumerate().skip(n) {
                if is_hot(self, idx) == pass_hot {
                    *slot = next;
                    next += 1;
                }
            }
        }
        debug_assert_eq!(next as usize, total);
        let mut children = vec![[NO_NODE; 2]; total];
        let mut sizes = vec![0u32; total];
        let mut serves_off = vec![0u32; total + 1];
        let mut serves_pool = vec![0u32; self.serves_pool.len()];
        // Two passes over the old arena: sizes/lengths first so the new
        // CSR offsets are known, then the payloads.
        for (old, &new) in new_of_old.iter().enumerate() {
            let new = new as usize;
            sizes[new] = self.sizes[old];
            serves_off[new + 1] = self.node_serves(old).len() as u32;
            children[new] = match self.node_children(old) {
                None => [NO_NODE; 2],
                Some((a, b)) => [new_of_old[a], new_of_old[b]],
            };
        }
        for i in 0..total {
            serves_off[i + 1] += serves_off[i];
        }
        for (old, &new) in new_of_old.iter().enumerate() {
            let dst = serves_off[new as usize] as usize;
            let src = self.node_serves(old);
            serves_pool[dst..dst + src.len()].copy_from_slice(src);
        }
        for root in &mut self.roots {
            if *root != NO_NODE {
                *root = new_of_old[*root as usize];
            }
        }
        self.children = children;
        self.sizes = sizes;
        self.serves_off = serves_off;
        self.serves_pool = serves_pool;
    }

    /// Per leaf (advertiser index), the ids of every internal node whose
    /// advertiser set contains it — the leaf's *cone*, i.e. exactly the
    /// operators a bid change at that leaf invalidates. Computed once per
    /// plan (O(Σ_v |I_v|), the same quantity the Section III-B cost model
    /// bounds) and handed to `MergeNetwork::refresh`, which is then
    /// O(dirty cones) instead of O(network). Returned as one CSR pool —
    /// two allocations total instead of one `Vec` per advertiser.
    ///
    /// Node ids double as network node ids: [`SortPlan::instantiate`]
    /// pushes one network node per plan node in order.
    pub fn leaf_cones(&self) -> LeafCones {
        let n = self.advertiser_count;
        let total = self.node_count();
        // A node can have several parents (adoption for different phrase
        // sets), so subtrees are DAG cones; stamp visited nodes per
        // enumeration so diamonds contribute each leaf once.
        let mut stamp = vec![0u32; total];
        let mut epoch = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        let mut counts = vec![0u32; n];
        let each_leaf = |plan: &SortPlan,
                         v: usize,
                         stamp: &mut [u32],
                         epoch: &mut u32,
                         stack: &mut Vec<u32>,
                         f: &mut dyn FnMut(usize)| {
            *epoch += 1;
            stack.push(v as u32);
            stamp[v] = *epoch;
            while let Some(x) = stack.pop() {
                let x = x as usize;
                match plan.node_children(x) {
                    None => f(x),
                    Some((a, b)) => {
                        if stamp[a] != *epoch {
                            stamp[a] = *epoch;
                            stack.push(a as u32);
                        }
                        if stamp[b] != *epoch {
                            stamp[b] = *epoch;
                            stack.push(b as u32);
                        }
                    }
                }
            }
        };
        for v in n..total {
            each_leaf(self, v, &mut stamp, &mut epoch, &mut stack, &mut |leaf| {
                counts[leaf] += 1;
            });
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut pool = vec![0u32; offsets[n] as usize];
        let mut fill: Vec<u32> = offsets[..n].to_vec();
        // Ascending internal-node order keeps each cone sorted ascending,
        // exactly the order the per-leaf `Vec` layout produced.
        for v in n..total {
            each_leaf(self, v, &mut stamp, &mut epoch, &mut stack, &mut |leaf| {
                pool[fill[leaf] as usize] = v as u32;
                fill[leaf] += 1;
            });
        }
        LeafCones::from_csr(offsets, pool)
    }
}

/// Total operator cost of a balanced merge-sort over `s` leaves:
/// `Σ_v |I_v|` over internal nodes.
fn balanced_merge_cost(s: usize) -> usize {
    if s <= 1 {
        return 0;
    }
    let half = s / 2;
    balanced_merge_cost(half) + balanced_merge_cost(s - half) + s
}

/// The expected number of queries in `Q_w` occurring beyond the first —
/// the paper's savings weight
/// `Σ_i [ (Π_{j<i} (1 − sr_j)) · sr_i · (Σ_{j>i} sr_j) ]`.
pub fn expected_beyond_first(rates: &[f64]) -> f64 {
    let n = rates.len();
    let mut total = 0.0;
    let mut none_before = 1.0;
    for i in 0..n {
        let after: f64 = rates[i + 1..].iter().sum();
        total += none_before * rates[i] * after;
        none_before *= 1.0 - rates[i];
    }
    total
}

// ---------------------------------------------------------------------
// Quadratic reference builder (dense working nodes, small n only).
// ---------------------------------------------------------------------

/// Dense working node of the quadratic builder — the paper's literal
/// formulation, kept internal; only the arena leaves the builder.
struct DenseNode {
    advertisers: BitSet,
    serves: BitSet,
    remaining: BitSet,
    children: Option<(usize, usize)>,
}

/// Builds the per-advertiser leaf nodes (node index = advertiser index).
fn dense_leaf_nodes(advertiser_count: usize, interest: &[BitSet]) -> Vec<DenseNode> {
    let m = interest.len();
    (0..advertiser_count)
        .map(|i| {
            let mut serves = BitSet::new(m);
            for (q, iq) in interest.iter().enumerate() {
                if iq.contains(i) {
                    serves.insert(q);
                }
            }
            DenseNode {
                advertisers: BitSet::singleton(advertiser_count, i),
                serves: serves.clone(),
                remaining: serves,
                children: None,
            }
        })
        .collect()
}

/// Merges `u` and `v` into a new node adopting them for the phrases in
/// `remaining(u) ∩ remaining(v)`.
fn dense_adopt(nodes: &mut Vec<DenseNode>, u: usize, v: usize) -> usize {
    let qw = nodes[u].remaining.intersection(&nodes[v].remaining);
    debug_assert!(!qw.is_empty(), "merge without a common phrase");
    debug_assert!(
        nodes[u].advertisers.is_disjoint(&nodes[v].advertisers),
        "advertiser sets must be disjoint"
    );
    let iw = nodes[u].advertisers.union(&nodes[v].advertisers);
    nodes[u].remaining.difference_with(&qw);
    nodes[v].remaining.difference_with(&qw);
    let idx = nodes.len();
    nodes.push(DenseNode {
        advertisers: iw,
        serves: qw.clone(),
        remaining: qw,
        children: Some((u, v)),
    });
    idx
}

/// Folds each phrase's surviving roots until one root per phrase remains,
/// smallest nodes first; returns the per-phrase roots.
fn dense_complete_per_phrase(nodes: &mut Vec<DenseNode>, m: usize) -> Vec<usize> {
    let mut roots = Vec::with_capacity(m);
    for q in 0..m {
        loop {
            let mut owners: Vec<usize> = (0..nodes.len())
                .filter(|&v| nodes[v].remaining.contains(q))
                .collect();
            match owners.len() {
                0 => {
                    roots.push(usize::MAX);
                    break;
                }
                1 => {
                    roots.push(owners[0]);
                    break;
                }
                _ => {
                    owners.sort_by_key(|&v| (nodes[v].advertisers.len(), v));
                    dense_adopt(nodes, owners[0], owners[1]);
                }
            }
        }
    }
    roots
}

/// Converts finished dense working nodes into the arena form.
fn arena_from_dense(advertiser_count: usize, nodes: Vec<DenseNode>, roots: Vec<usize>) -> SortPlan {
    let total = nodes.len();
    let mut children = Vec::with_capacity(total);
    let mut sizes = Vec::with_capacity(total);
    let mut serves_off = Vec::with_capacity(total + 1);
    let mut serves_pool = Vec::new();
    serves_off.push(0u32);
    for node in &nodes {
        children.push(match node.children {
            None => [NO_NODE; 2],
            Some((a, b)) => [a as u32, b as u32],
        });
        sizes.push(node.advertisers.len() as u32);
        serves_pool.extend(node.serves.iter().map(|q| q as u32));
        serves_off.push(serves_pool.len() as u32);
    }
    SortPlan {
        advertiser_count,
        children,
        sizes,
        serves_off,
        serves_pool,
        roots: roots
            .into_iter()
            .map(|r| if r == usize::MAX { NO_NODE } else { r as u32 })
            .collect(),
    }
}

/// The Section III-C greedy planner, considering every node pair at every
/// step (the paper's formulation). Quadratic in the node count per step —
/// intended for up to a few hundred advertisers; use
/// [`build_shared_sort_plan_bucketed`] at scale.
///
/// `interest[q]` is `I_q` over an advertiser universe of size `n`;
/// `search_rates[q]` is `sr_q`.
pub fn build_shared_sort_plan(
    advertiser_count: usize,
    interest: &[BitSet],
    search_rates: &[f64],
) -> SortPlan {
    let m = interest.len();
    assert_eq!(search_rates.len(), m, "one rate per phrase");
    for (q, iq) in interest.iter().enumerate() {
        assert_eq!(
            iq.capacity(),
            advertiser_count,
            "interest set {q} universe mismatch"
        );
    }

    let mut nodes = dense_leaf_nodes(advertiser_count, interest);

    // Greedy phase: merge the pair with the largest expected savings
    // |I_w| · E[beyond-first occurrences of Q_w].
    loop {
        let active: Vec<usize> = (0..nodes.len())
            .filter(|&v| !nodes[v].remaining.is_empty())
            .collect();
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &u) in active.iter().enumerate() {
            for &v in &active[ai + 1..] {
                if nodes[u].advertisers.len() != nodes[v].advertisers.len() {
                    continue;
                }
                if !nodes[u].advertisers.is_disjoint(&nodes[v].advertisers) {
                    continue;
                }
                let qw = nodes[u].remaining.intersection(&nodes[v].remaining);
                if qw.is_empty() {
                    continue;
                }
                let rates: Vec<f64> = qw.iter().map(|q| search_rates[q]).collect();
                let size = nodes[u].advertisers.len() + nodes[v].advertisers.len();
                let savings = size as f64 * expected_beyond_first(&rates);
                if savings > 0.0 && best.is_none_or(|(s, _, _)| savings > s) {
                    best = Some((savings, u, v));
                }
            }
        }
        match best {
            Some((_, u, v)) => {
                dense_adopt(&mut nodes, u, v);
            }
            None => break,
        }
    }

    // Completion phase: fold each phrase's surviving roots, smallest
    // first, until one root per phrase remains (empty phrases get a
    // sentinel root).
    let roots = dense_complete_per_phrase(&mut nodes, m);

    arena_from_dense(advertiser_count, nodes, roots)
}

// ---------------------------------------------------------------------
// Sparse bucketed builder (the at-scale path).
// ---------------------------------------------------------------------

/// Sparse working node: phrase sets as ascending id lists, advertiser
/// sets reduced to their cardinality (disjointness of every merge is
/// guaranteed structurally, see `frag_sets` in the stage-3 loop).
struct SparseNode {
    serves: Vec<u32>,
    remaining: Vec<u32>,
    size: u32,
    children: Option<(u32, u32)>,
}

/// `a ∩ b` of two ascending id lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Removes the (sorted) ids in `qw` from the ascending list `v` in place.
fn remove_sorted(v: &mut Vec<u32>, qw: &[u32]) {
    let mut j = 0;
    v.retain(|&x| {
        while j < qw.len() && qw[j] < x {
            j += 1;
        }
        !(j < qw.len() && qw[j] == x)
    });
}

/// Sparse counterpart of `dense_adopt`: merges `u` and `v` into a new
/// node adopting them for `remaining(u) ∩ remaining(v)`. The caller is
/// responsible for only merging advertiser-disjoint nodes (the dense
/// builder's `I_u ∩ I_v = ∅` precondition), which makes `|I_w|` the sum
/// of the children's sizes.
fn sparse_adopt(nodes: &mut Vec<SparseNode>, u: usize, v: usize) -> usize {
    let qw = intersect_sorted(&nodes[u].remaining, &nodes[v].remaining);
    debug_assert!(!qw.is_empty(), "merge without a common phrase");
    remove_sorted(&mut nodes[u].remaining, &qw);
    remove_sorted(&mut nodes[v].remaining, &qw);
    let size = nodes[u].size + nodes[v].size;
    let idx = nodes.len();
    nodes.push(SparseNode {
        serves: qw.clone(),
        remaining: qw,
        size,
        children: Some((u as u32, v as u32)),
    });
    idx
}

/// Sparse completion, bit-identical to `dense_complete_per_phrase`: per
/// phrase, repeatedly fold the two owners smallest by `(|I_v|, v)` until
/// one owner remains. Instead of rescanning every node per step, the
/// per-phrase owner lists are maintained incrementally — each adopt
/// replaces the two children with the new parent in *every* phrase list
/// the adoption covered, which is exactly how the rescans evolved.
fn sparse_complete_per_phrase(nodes: &mut Vec<SparseNode>, m: usize) -> Vec<usize> {
    let mut owners: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (v, node) in nodes.iter().enumerate() {
        for &q in &node.remaining {
            owners[q as usize].push(v as u32);
        }
    }
    let mut roots = Vec::with_capacity(m);
    for q in 0..m {
        loop {
            match owners[q].len() {
                0 => {
                    roots.push(usize::MAX);
                    break;
                }
                1 => {
                    roots.push(owners[q][0] as usize);
                    break;
                }
                _ => {
                    owners[q].sort_by_key(|&v| (nodes[v as usize].size, v));
                    let (a, b) = (owners[q][0], owners[q][1]);
                    let w = sparse_adopt(nodes, a as usize, b as usize) as u32;
                    let qw = nodes[w as usize].serves.clone();
                    for &p in &qw {
                        let list = &mut owners[p as usize];
                        list.retain(|&x| x != a && x != b);
                        list.push(w);
                    }
                }
            }
        }
    }
    roots
}

/// Converts finished sparse working nodes into the arena form.
fn arena_from_sparse(
    advertiser_count: usize,
    nodes: Vec<SparseNode>,
    roots: Vec<usize>,
) -> SortPlan {
    let total = nodes.len();
    let mut children = Vec::with_capacity(total);
    let mut sizes = Vec::with_capacity(total);
    let mut serves_off = Vec::with_capacity(total + 1);
    let pool_len: usize = nodes.iter().map(|n| n.serves.len()).sum();
    let mut serves_pool = Vec::with_capacity(pool_len);
    serves_off.push(0u32);
    for node in nodes {
        children.push(match node.children {
            None => [NO_NODE; 2],
            Some((a, b)) => [a, b],
        });
        sizes.push(node.size);
        serves_pool.extend_from_slice(&node.serves);
        serves_off.push(serves_pool.len() as u32);
    }
    SortPlan {
        advertiser_count,
        children,
        sizes,
        serves_off,
        serves_pool,
        roots: roots
            .into_iter()
            .map(|r| if r == usize::MAX { NO_NODE } else { r as u32 })
            .collect(),
    }
}

/// A scalable variant of the Section III-C planner, over *sparse*
/// interest lists (`interest[q]` = ascending advertiser indices in
/// `I_q`). Never materializes a universe-sized set — working memory is
/// O(n + Σ|I_q|) — so it is the only builder that works at 100k–1M
/// advertisers.
///
/// Advertisers with the same phrase signature are interchangeable, so the
/// quadratic pair search over leaves is wasted work. This variant:
///
/// 1. groups advertisers into *fragments* by signature (exactly the
///    Section II-D stage-1 idea, applied to sorting),
/// 2. merge-sorts each fragment with a balanced tree (every internal node
///    serves the whole signature; for a fixed leaf set a balanced tree
///    minimizes `Σ_v |I_v|`),
/// 3. runs the paper's greedy savings rule across the fragment roots and
///    their merge results (a small node set), with the equal-size
///    constraint relaxed as in the completion phase,
/// 4. completes each phrase as usual.
pub fn build_shared_sort_plan_sparse(
    advertiser_count: usize,
    interest: &[Vec<u32>],
    search_rates: &[f64],
) -> SortPlan {
    let m = interest.len();
    assert_eq!(search_rates.len(), m, "one rate per phrase");

    // Leaves: per-advertiser ascending signatures, transposed from the
    // per-phrase lists.
    let mut serves_of: Vec<Vec<u32>> = vec![Vec::new(); advertiser_count];
    for (q, iq) in interest.iter().enumerate() {
        for &i in iq {
            serves_of[i as usize].push(q as u32);
        }
    }
    let mut nodes: Vec<SparseNode> = serves_of
        .into_iter()
        .map(|serves| SparseNode {
            remaining: serves.clone(),
            serves,
            size: 1,
            children: None,
        })
        .collect();

    // Stage 1: fragments by signature (ignoring advertisers in no
    // phrase). Keyed by the sorted signature list — the same equivalence
    // classes the dense builder's BitSet keys produced.
    let mut groups: std::collections::HashMap<Vec<u32>, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, node) in nodes.iter().enumerate().take(advertiser_count) {
        if !node.serves.is_empty() {
            groups.entry(node.serves.clone()).or_default().push(i);
        }
    }
    let mut group_list: Vec<(Vec<u32>, Vec<usize>)> = groups.into_iter().collect();
    group_list.sort_by_key(|(_, members)| members[0]);

    // Stage 2: balanced tree per fragment. Fragments partition the
    // advertisers and each member is merged exactly once per level, so
    // every adopt here is advertiser-disjoint by construction.
    let mut frontier: Vec<usize> = Vec::new();
    for (_, members) in &group_list {
        let mut level = members.clone();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(sparse_adopt(&mut nodes, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        frontier.push(level[0]);
    }

    // Stage 3: greedy savings rule across the (small) frontier. Every
    // frontier node is a union of whole fragments, so advertiser
    // disjointness of a candidate pair is exactly disjointness of their
    // fragment-id sets — tracked as small BitSets over the fragment
    // universe instead of universe-sized advertiser sets.
    let frag_universe = group_list.len();
    let mut frag_sets: std::collections::HashMap<usize, BitSet> = frontier
        .iter()
        .enumerate()
        .map(|(g, &v)| (v, BitSet::singleton(frag_universe, g)))
        .collect();
    loop {
        let active: Vec<usize> = frontier
            .iter()
            .copied()
            .filter(|&v| !nodes[v].remaining.is_empty())
            .collect();
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &u) in active.iter().enumerate() {
            for &v in &active[ai + 1..] {
                if !frag_sets[&u].is_disjoint(&frag_sets[&v]) {
                    continue;
                }
                let qw = intersect_sorted(&nodes[u].remaining, &nodes[v].remaining);
                if qw.is_empty() {
                    continue;
                }
                let rates: Vec<f64> = qw.iter().map(|&q| search_rates[q as usize]).collect();
                let size = (nodes[u].size + nodes[v].size) as usize;
                let savings = size as f64 * expected_beyond_first(&rates);
                if savings > 0.0 && best.is_none_or(|(s, _, _)| savings > s) {
                    best = Some((savings, u, v));
                }
            }
        }
        match best {
            Some((_, u, v)) => {
                let w = sparse_adopt(&mut nodes, u, v);
                let merged = frag_sets[&u].union(&frag_sets[&v]);
                frag_sets.insert(w, merged);
                frontier.push(w);
            }
            None => break,
        }
    }

    let roots = sparse_complete_per_phrase(&mut nodes, m);
    arena_from_sparse(advertiser_count, nodes, roots)
}

/// [`build_shared_sort_plan_sparse`] over dense `BitSet` interest sets —
/// the historical signature, kept for callers that already hold dense
/// sets (tests, ablations at small n).
pub fn build_shared_sort_plan_bucketed(
    advertiser_count: usize,
    interest: &[BitSet],
    search_rates: &[f64],
) -> SortPlan {
    for (q, iq) in interest.iter().enumerate() {
        assert_eq!(
            iq.capacity(),
            advertiser_count,
            "interest set {q} universe mismatch"
        );
    }
    let sparse: Vec<Vec<u32>> = interest
        .iter()
        .map(|iq| iq.iter().map(|i| i as u32).collect())
        .collect();
    build_shared_sort_plan_sparse(advertiser_count, &sparse, search_rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bs(n: usize, elems: &[usize]) -> BitSet {
        BitSet::from_elements(n, elems.iter().copied())
    }

    fn plan_roots_sort_correctly(plan: &SortPlan, interest: &[BitSet], bids: &[Money]) {
        let (mut net, roots) = plan.instantiate(bids);
        for (q, iq) in interest.iter().enumerate() {
            if iq.is_empty() {
                continue;
            }
            let got: Vec<u32> = {
                let mut out = Vec::new();
                let mut i = 0;
                while let Some(item) = net.get(roots[q], i) {
                    out.push(item.advertiser.0);
                    i += 1;
                }
                out
            };
            let mut want: Vec<usize> = iq.iter().collect();
            want.sort_by(|&a, &b| bids[b].cmp(&bids[a]).then(a.cmp(&b)));
            let want: Vec<u32> = want.iter().map(|&a| a as u32).collect();
            assert_eq!(got, want, "phrase {q} stream mismatch");
        }
    }

    /// Internal node indices of `plan`, ascending.
    fn internal_nodes(plan: &SortPlan) -> Vec<usize> {
        (plan.advertiser_count()..plan.node_count()).collect()
    }

    #[test]
    fn expected_beyond_first_formula() {
        // One query: nothing beyond the first. Two certain queries: 1.
        assert_eq!(expected_beyond_first(&[1.0]), 0.0);
        assert_eq!(expected_beyond_first(&[1.0, 1.0]), 1.0);
        assert_eq!(expected_beyond_first(&[]), 0.0);
        // Two queries p each: E[beyond first] = p^2 (both occur).
        let p = 0.3;
        let got = expected_beyond_first(&[p, p]);
        assert!((got - p * p).abs() < 1e-12, "{got}");
    }

    #[test]
    fn shared_block_is_built_once() {
        // Two phrases sharing advertisers {0,1}; exclusive {2} and {3}.
        let interest = vec![bs(4, &[0, 1, 2]), bs(4, &[0, 1, 3])];
        let plan = build_shared_sort_plan(4, &interest, &[0.9, 0.9]);
        // The shared pair {0,1} should be a single node serving both.
        let shared = internal_nodes(&plan)
            .into_iter()
            .find(|&v| plan.node_advertisers(v) == bs(4, &[0, 1]))
            .expect("shared node exists");
        assert_eq!(plan.node_serves(shared).len(), 2, "serves both phrases");
        let bids: Vec<Money> = [4u64, 3, 2, 1]
            .iter()
            .map(|&u| Money::from_units(u))
            .collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn disjoint_phrases_share_nothing() {
        let interest = vec![bs(4, &[0, 1]), bs(4, &[2, 3])];
        let plan = build_shared_sort_plan(4, &interest, &[0.5, 0.5]);
        for v in internal_nodes(&plan) {
            assert_eq!(plan.node_serves(v).len(), 1, "no operator can serve both");
        }
        let bids: Vec<Money> = [1u64, 2, 3, 4]
            .iter()
            .map(|&u| Money::from_units(u))
            .collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn empty_phrase_gets_sentinel_root() {
        let interest = vec![bs(2, &[0, 1]), BitSet::new(2)];
        let plan = build_shared_sort_plan(2, &interest, &[1.0, 0.5]);
        assert_eq!(plan.root(1), usize::MAX);
        assert_ne!(plan.root(0), usize::MAX);
    }

    #[test]
    fn expected_cost_drops_with_sharing() {
        // Heavy overlap: shared plan must beat independent sorts.
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let plan = build_shared_sort_plan(8, &interest, &rates);
        let shared = plan.expected_cost(&rates);
        let unshared = SortPlan::unshared_expected_cost(&interest, &rates);
        assert!(
            shared < unshared,
            "shared {shared} should beat unshared {unshared}"
        );
    }

    #[test]
    fn phrase_marginals_match_rate_zeroing() {
        // The closed-form marginal must equal the expected-cost drop from
        // zeroing that phrase's rate, phrase by phrase.
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
            BitSet::new(8),
        ];
        let rates = [0.9, 0.4, 1.0, 0.0];
        let plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        let marginals = plan.phrase_marginal_costs(&rates);
        let with_all = plan.expected_cost(&rates);
        for q in 0..rates.len() {
            let mut zeroed = rates;
            zeroed[q] = 0.0;
            let drop = with_all - plan.expected_cost(&zeroed);
            assert!(
                (marginals[q] - drop).abs() < 1e-9,
                "phrase {q}: marginal {} vs rescan drop {drop}",
                marginals[q]
            );
        }
        assert_eq!(marginals[3], 0.0, "empty phrase costs nothing");
    }

    #[test]
    fn singleton_phrase_needs_no_merges() {
        let interest = vec![bs(3, &[1])];
        let plan = build_shared_sort_plan(3, &interest, &[1.0]);
        assert_eq!(plan.root(0), 1, "the leaf itself is the root");
        assert_eq!(plan.expected_cost(&[1.0]), 0.0);
    }

    #[test]
    fn bucketed_planner_matches_structure_and_scales() {
        // Bucketed and exhaustive planners may produce different trees,
        // but both sort correctly and share the fragment blocks.
        let interest = vec![bs(6, &[0, 1, 2, 3]), bs(6, &[0, 1, 4, 5])];
        let rates = [0.9, 0.9];
        let bucketed = build_shared_sort_plan_bucketed(6, &interest, &rates);
        let shared = internal_nodes(&bucketed)
            .into_iter()
            .find(|&v| bucketed.node_advertisers(v) == bs(6, &[0, 1]))
            .expect("shared fragment node exists");
        assert_eq!(bucketed.node_serves(shared).len(), 2);
        let bids: Vec<Money> = (0..6).map(|i| Money::from_units(10 - i as u64)).collect();
        plan_roots_sort_correctly(&bucketed, &interest, &bids);
    }

    #[test]
    fn bucketed_planner_handles_thousands_of_advertisers() {
        use std::time::Instant;
        let n = 5000;
        let m = 12;
        // Topic-like signatures: advertiser i is interested in the
        // phrases with q % 4 == i % 4, plus generalists (i % 5 == 0) in
        // everything.
        let interest: Vec<BitSet> = (0..m)
            .map(|q| BitSet::from_elements(n, (0..n).filter(|i| i % 5 == 0 || q % 4 == i % 4)))
            .collect();
        let rates = vec![0.5; m];
        let started = Instant::now();
        let plan = build_shared_sort_plan_bucketed(n, &interest, &rates);
        assert!(
            started.elapsed().as_secs_f64() < 10.0,
            "bucketed planner must scale"
        );
        for (q, iq) in interest.iter().enumerate() {
            assert_eq!(&plan.node_advertisers(plan.root(q)), iq);
            assert_eq!(plan.node_size(plan.root(q)), iq.len());
        }
    }

    #[test]
    fn sparse_and_bucketed_builders_agree_exactly() {
        // The sparse builder is the bucketed builder; the dense entry
        // point is just an adapter. Verify arena equality on a workload
        // with fragment structure, stage-3 merges, and completion tails.
        let n = 64;
        let m = 7;
        let interest: Vec<BitSet> = (0..m)
            .map(|q| BitSet::from_elements(n, (0..n).filter(|i| (i + q) % 3 == 0 || i % 7 == q)))
            .collect();
        let rates: Vec<f64> = (0..m).map(|q| 0.15 + 0.1 * q as f64).collect();
        let dense = build_shared_sort_plan_bucketed(n, &interest, &rates);
        let sparse_interest: Vec<Vec<u32>> = interest
            .iter()
            .map(|iq| iq.iter().map(|i| i as u32).collect())
            .collect();
        let sparse = build_shared_sort_plan_sparse(n, &sparse_interest, &rates);
        assert_eq!(dense.node_count(), sparse.node_count());
        for v in 0..dense.node_count() {
            assert_eq!(dense.node_children(v), sparse.node_children(v), "node {v}");
            assert_eq!(dense.node_size(v), sparse.node_size(v), "node {v}");
            assert_eq!(dense.node_serves(v), sparse.node_serves(v), "node {v}");
        }
        for q in 0..m {
            assert_eq!(dense.root(q), sparse.root(q), "phrase {q}");
        }
    }

    #[test]
    fn cluster_hot_phrases_preserves_streams_and_prefixes() {
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let mut plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        let cost_before = plan.expected_cost(&rates);
        let hot = [false, true, false];
        plan.cluster_hot_phrases(&hot);
        // Leaves untouched; children always precede parents.
        for idx in 0..plan.node_count() {
            match plan.node_children(idx) {
                None => assert!(idx < plan.advertiser_count(), "leaf {idx} out of place"),
                Some((a, b)) => assert!(a < idx && b < idx, "child after parent at {idx}"),
            }
        }
        // Hot internals form a contiguous prefix of the internal range.
        let internal_hot: Vec<bool> = internal_nodes(&plan)
            .into_iter()
            .map(|v| plan.node_serves(v).iter().any(|&q| hot[q as usize]))
            .collect();
        let first_cold = internal_hot.iter().position(|&h| !h).unwrap_or(0);
        assert!(
            internal_hot[first_cold..].iter().all(|&h| !h),
            "hot internals are not a prefix: {internal_hot:?}"
        );
        // Semantics unchanged: same expected cost, same sorted streams.
        assert_eq!(plan.expected_cost(&rates), cost_before);
        let bids: Vec<Money> = (0..8).map(|i| Money::from_units(20 - i as u64)).collect();
        plan_roots_sort_correctly(&plan, &interest, &bids);
    }

    #[test]
    fn bucketed_expected_cost_beats_unshared() {
        let interest = vec![
            bs(8, &[0, 1, 2, 3, 4, 5]),
            bs(8, &[0, 1, 2, 3, 6, 7]),
            bs(8, &[0, 1, 2, 3, 4, 6]),
        ];
        let rates = [0.9, 0.9, 0.9];
        let plan = build_shared_sort_plan_bucketed(8, &interest, &rates);
        assert!(plan.expected_cost(&rates) < SortPlan::unshared_expected_cost(&interest, &rates));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The bucketed planner's streams also match independent sorts.
        #[test]
        fn bucketed_streams_match_independent_sorts(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..8, 0..8), 1..5),
            bid_raw in proptest::collection::vec(0u64..100, 8),
            rates in proptest::collection::vec(0.1f64..=1.0, 5),
        ) {
            let interest: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(8, s.iter().copied()))
                .collect();
            let m = interest.len();
            let plan = build_shared_sort_plan_bucketed(8, &interest, &rates[..m]);
            let bids: Vec<Money> = bid_raw.iter().map(|&b| Money::from_micros(b)).collect();
            plan_roots_sort_correctly(&plan, &interest, &bids);
        }

        /// Every phrase's stream equals an independent sort of `I_q`, for
        /// random interests and bids.
        #[test]
        fn plan_streams_match_independent_sorts(
            sets in proptest::collection::vec(
                proptest::collection::btree_set(0usize..8, 0..8), 1..5),
            bid_raw in proptest::collection::vec(0u64..100, 8),
            rates in proptest::collection::vec(0.1f64..=1.0, 5),
        ) {
            let interest: Vec<BitSet> = sets
                .iter()
                .map(|s| BitSet::from_elements(8, s.iter().copied()))
                .collect();
            let m = interest.len();
            let plan = build_shared_sort_plan(8, &interest, &rates[..m]);
            let bids: Vec<Money> = bid_raw.iter().map(|&b| Money::from_micros(b)).collect();
            plan_roots_sort_correctly(&plan, &interest, &bids);
            // Tree sanity: every phrase root's advertiser set is I_q.
            for (q, iq) in interest.iter().enumerate() {
                if iq.is_empty() {
                    prop_assert_eq!(plan.root(q), usize::MAX);
                } else {
                    prop_assert_eq!(&plan.node_advertisers(plan.root(q)), iq);
                }
            }
        }
    }
}
