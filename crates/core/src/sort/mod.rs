//! Shared sorting (Section III).
//!
//! When the advertiser-specific CTR factor `c_i^q` differs across bid
//! phrases, per-phrase top-k aggregates cannot be shared directly — but
//! the *bids* `b_i` are still shared. The paper's technique: give the
//! Threshold Algorithm a descending-by-bid stream per phrase, produced by
//! an on-demand merge-sort operator tree whose operators are shared
//! across phrases ("we can re-use the cached results of any operators
//! below which all leaves correspond to advertisers in `I_q ∩ I_q'`").
//!
//! * [`MergeNetwork`] — the runtime: pull-based merge operators with a
//!   left/right register each and a cache of everything sent upstream;
//! * [`planner`] — the bottom-up greedy network builder (Section III-C)
//!   with the expected-savings objective;
//! * [`ta`] — the Threshold Algorithm driver (Fagin–Lotem–Naor),
//!   instance-optimal for finding the per-phrase top k.
//!
//! # Memory layout
//!
//! The network is stored struct-of-arrays: parallel `Vec`s of `u32`
//! child pairs, cursors, leaf items, and per-node caches, instead of a
//! `Vec` of enum nodes. Node metadata for a 2n-node network is then a
//! handful of contiguous arrays (~29 bytes/node) that the pull loop
//! strides through, and the only per-node heap blocks are the caches
//! that actually hold items. Caches of nodes that no recent round
//! touched can be *evicted* ([`MergeNetwork::evict_cold`]): cache memory
//! is then proportional to recently-active cones, not to every phrase
//! ever searched, and bit-identity survives because an evicted node
//! regenerates exactly the same stream on demand.

pub mod concurrent;
pub mod planner;
pub mod ta;

use std::cmp::Ordering;

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;

/// Sentinel child index marking a leaf node.
const NO_CHILD: u32 = u32::MAX;

/// One element of a bid-sorted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortItem {
    /// The bid `b_i`.
    pub bid: Money,
    /// The advertiser.
    pub advertiser: AdvertiserId,
}

impl PartialOrd for SortItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortItem {
    /// Descending-stream order: higher bid first, ties by lower id.
    fn cmp(&self, other: &Self) -> Ordering {
        self.bid
            .cmp(&other.bid)
            .then_with(|| other.advertiser.cmp(&self.advertiser))
    }
}

/// Per-leaf dirty cones in CSR form: one offsets array plus one shared
/// pool of internal-node ids, replacing a `Vec<Vec<u32>>` whose per-leaf
/// headers and allocations dominated footprint at large n. `cone(leaf)`
/// is the ascending list of every merge operator whose advertiser set
/// contains `leaf` — exactly the nodes a bid change at that leaf
/// invalidates.
#[derive(Debug, Clone, Default)]
pub struct LeafCones {
    offsets: Vec<u32>,
    pool: Vec<u32>,
}

impl LeafCones {
    /// Builds from raw CSR arrays (`offsets.len() == leaves + 1`,
    /// `offsets[leaves] == pool.len()`).
    pub fn from_csr(offsets: Vec<u32>, pool: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, pool.len());
        LeafCones { offsets, pool }
    }

    /// Builds from per-leaf lists (tests and ad-hoc callers).
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u32);
        let mut pool = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        for list in lists {
            pool.extend_from_slice(list);
            offsets.push(pool.len() as u32);
        }
        LeafCones { offsets, pool }
    }

    /// Number of leaves covered.
    pub fn leaf_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The ascending internal-node ids above `leaf`.
    #[inline]
    pub fn cone(&self, leaf: usize) -> &[u32] {
        let lo = self.offsets[leaf] as usize;
        let hi = self.offsets[leaf + 1] as usize;
        &self.pool[lo..hi]
    }

    /// Heap footprint in bytes (capacities).
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.pool.capacity()) * 4
    }
}

/// What one [`MergeNetwork::refresh`] (or its concurrent twin) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Nodes whose cache/cursors were reset: the changed leaves plus
    /// every operator in their dirty cones (deduplicated).
    pub nodes_invalidated: u64,
    /// Items still cached across the whole network *after* invalidation —
    /// merged prefixes the next round's TA re-consumes for free.
    pub cache_items_reused: u64,
}

/// A shared, pull-based merge-sort network.
///
/// Nodes are created bottom-up ([`MergeNetwork::leaf`],
/// [`MergeNetwork::merge`]); [`MergeNetwork::get`] pulls the `index`-th
/// largest item under a node, doing no more comparisons than needed and
/// caching everything for other consumers ("we don't do any extra work
/// beyond the stage where the threshold condition is met").
///
/// The network is also *persistent across rounds*: when only some leaf
/// bids change, [`MergeNetwork::refresh`] invalidates just the dirty
/// cones above the changed leaves and keeps every other operator's cached
/// merged prefix, so the next round's pulls are O(dirty) instead of a
/// full rebuild.
#[derive(Debug, Clone, Default)]
pub struct MergeNetwork {
    /// Per node, the two children (`[NO_CHILD; 2]` for leaves).
    children: Vec<[u32; 2]>,
    /// Per node, the leaf item (meaningful only where `children` says
    /// leaf; merges carry a placeholder so the array stays parallel).
    items: Vec<SortItem>,
    /// Per node, how many items have been consumed from each child (the
    /// paper's left/right registers, generalized to cursors because
    /// consumed prefixes are cached by the children anyway).
    cursors: Vec<[u32; 2]>,
    /// "Each operator stores the sequence of values it has sent
    /// upstream."
    emitted: Vec<Vec<SortItem>>,
    /// No more items below.
    exhausted: Vec<bool>,
    /// Per node, the refresh epoch of its most recent pull — drives
    /// [`MergeNetwork::evict_cold`].
    last_touch: Vec<u32>,
    /// Refresh counter (the eviction clock).
    rounds: u32,
    /// Total operator invocations (one per item sent upstream by a merge
    /// operator) — the cost the Section III-B model bounds by `|I_v|`.
    invocations: u64,
    /// Total items currently cached across all nodes (Σ emitted.len()),
    /// maintained incrementally so `refresh` can report reuse in O(dirty).
    cached_items: u64,
    /// Refresh-scoped visited stamps (one per node, epoch-compared) so
    /// overlapping dirty cones are deduplicated without clearing a bitmap.
    dirty_stamps: Vec<u32>,
    dirty_epoch: u32,
}

impl MergeNetwork {
    /// An empty network.
    pub fn new() -> Self {
        MergeNetwork::default()
    }

    /// Adds a leaf for one advertiser's bid; returns its node id.
    pub fn leaf(&mut self, advertiser: AdvertiserId, bid: Money) -> usize {
        let idx = self.children.len();
        self.children.push([NO_CHILD; 2]);
        self.items.push(SortItem { bid, advertiser });
        self.push_node_tail();
        idx
    }

    /// Adds a merge operator over two existing nodes; returns its id.
    ///
    /// # Panics
    /// Panics if a child id is out of range or not older than the new
    /// node.
    pub fn merge(&mut self, left: usize, right: usize) -> usize {
        assert!(
            left < self.children.len() && right < self.children.len(),
            "merge child out of range"
        );
        let idx = self.children.len();
        self.children.push([left as u32, right as u32]);
        self.items.push(SortItem {
            bid: Money::ZERO,
            advertiser: AdvertiserId(0),
        });
        self.push_node_tail();
        idx
    }

    /// The shared tail of node creation: the SoA columns every node has.
    fn push_node_tail(&mut self) {
        self.cursors.push([0, 0]);
        self.emitted.push(Vec::new());
        self.exhausted.push(false);
        self.last_touch.push(self.rounds);
        self.dirty_stamps.push(0);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True iff the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Total merge-operator invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The cached (already merged) prefix of `node`'s stream, without
    /// pulling anything new. Exposed so differential harnesses can assert
    /// a persistent network's caches against a fresh instantiation.
    pub fn cached(&self, node: usize) -> &[SortItem] {
        &self.emitted[node]
    }

    /// Total items currently cached across all nodes.
    pub fn cached_items(&self) -> u64 {
        self.cached_items
    }

    /// Heap footprint in bytes (array capacities plus every node cache's
    /// capacity) — consumed by the memory-scaling benchmark.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.children.capacity() * size_of::<[u32; 2]>()
            + self.items.capacity() * size_of::<SortItem>()
            + self.cursors.capacity() * size_of::<[u32; 2]>()
            + self.emitted.capacity() * size_of::<Vec<SortItem>>()
            + self
                .emitted
                .iter()
                .map(|e| e.capacity() * size_of::<SortItem>())
                .sum::<usize>()
            + self.exhausted.capacity()
            + self.last_touch.capacity() * 4
            + self.dirty_stamps.capacity() * 4
    }

    /// Cross-round invalidation: applies the changed leaf bids and resets
    /// only the *dirty cones* — each changed leaf plus every operator with
    /// that leaf somewhere below it. Everything outside the cones keeps
    /// its cached merged prefix, cursors, and exhausted flag, so the next
    /// round's pulls re-consume those prefixes for free.
    ///
    /// `changed` lists `(leaf node id, new bid)` pairs; `cones.cone(leaf)`
    /// must hold the ids of every merge operator whose advertiser set
    /// contains `leaf` (see `SortPlan::leaf_cones` — plan node ids equal
    /// network node ids under `SortPlan::instantiate`). Whole-cone
    /// invalidation is required for correctness: a clean parent's cursors
    /// index into its children's caches, which a dirty child is about to
    /// rewrite.
    ///
    /// Streams observed after a refresh are bit-identical to a fresh
    /// instantiation with the updated bids.
    pub fn refresh(&mut self, changed: &[(usize, Money)], cones: &LeafCones) -> RefreshStats {
        self.rounds = self.rounds.wrapping_add(1);
        self.dirty_epoch = self.dirty_epoch.wrapping_add(1);
        if self.dirty_epoch == 0 {
            self.dirty_stamps.fill(0);
            self.dirty_epoch = 1;
        }
        let mut invalidated = 0u64;
        for &(leaf, bid) in changed {
            assert!(
                self.children[leaf][0] == NO_CHILD,
                "refresh target {leaf} is not a leaf"
            );
            self.items[leaf].bid = bid;
            if self.mark_dirty(leaf) {
                invalidated += 1;
                self.reset_node(leaf);
            }
            for &cone_node in cones.cone(leaf) {
                let node = cone_node as usize;
                if self.mark_dirty(node) {
                    invalidated += 1;
                    self.reset_node(node);
                }
            }
        }
        RefreshStats {
            nodes_invalidated: invalidated,
            cache_items_reused: self.cached_items,
        }
    }

    /// Evicts the cache of every node whose last pull is more than
    /// `horizon` refreshes old, *freeing* the backing storage (unlike the
    /// refresh-path reset, which keeps capacity for steady-state reuse).
    /// Returns the number of items dropped.
    ///
    /// Safe at any time: caches only ever hold data consistent with the
    /// *current* leaf bids (refresh resets dirty cones before anything is
    /// re-read), so an evicted node regenerates a bit-identical stream on
    /// the next pull — even when a parent outside the evicted set still
    /// holds cursors into it. Cache memory after periodic eviction is
    /// proportional to the cones recent rounds actually pulled (the
    /// *active* phrases), not to every phrase ever searched.
    pub fn evict_cold(&mut self, horizon: u32) -> u64 {
        let mut dropped = 0u64;
        for v in 0..self.children.len() {
            if self.rounds.wrapping_sub(self.last_touch[v]) > horizon && !self.emitted[v].is_empty()
            {
                dropped += self.emitted[v].len() as u64;
                self.cached_items -= self.emitted[v].len() as u64;
                self.emitted[v] = Vec::new();
                self.exhausted[v] = false;
                self.cursors[v] = [0, 0];
            }
        }
        dropped
    }

    /// Marks `node` visited for the current refresh; true on first visit.
    fn mark_dirty(&mut self, node: usize) -> bool {
        if self.dirty_stamps[node] == self.dirty_epoch {
            false
        } else {
            self.dirty_stamps[node] = self.dirty_epoch;
            true
        }
    }

    /// Drops `node`'s cache and rewinds its cursors to the initial state.
    fn reset_node(&mut self, node: usize) {
        self.cached_items -= self.emitted[node].len() as u64;
        self.emitted[node].clear();
        self.exhausted[node] = false;
        self.cursors[node] = [0, 0];
    }

    /// The `index`-th item (0 = largest) of the stream under `node`, or
    /// `None` if the stream has fewer items. Cached results are returned
    /// without recomputation.
    pub fn get(&mut self, node: usize, index: usize) -> Option<SortItem> {
        self.last_touch[node] = self.rounds;
        while self.emitted[node].len() <= index && !self.exhausted[node] {
            self.pull_next(node);
        }
        self.emitted[node].get(index).copied()
    }

    /// Produces one more item at `node` (or marks it exhausted).
    fn pull_next(&mut self, node: usize) {
        let [left, right] = self.children[node];
        if left == NO_CHILD {
            if self.emitted[node].is_empty() {
                let item = self.items[node];
                self.emitted[node].push(item);
                self.cached_items += 1;
            } else {
                self.exhausted[node] = true;
            }
            return;
        }
        // Fill the registers from downstream (cached if already pulled
        // by another consumer).
        let [left_pos, right_pos] = self.cursors[node];
        let l = self.get(left as usize, left_pos as usize);
        let r = self.get(right as usize, right_pos as usize);
        let take_left = match (l, r) {
            (Some(a), Some(b)) => a > b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => {
                self.exhausted[node] = true;
                return;
            }
        };
        self.invocations += 1;
        let item = if take_left { l.unwrap() } else { r.unwrap() };
        self.cursors[node][if take_left { 0 } else { 1 }] += 1;
        self.emitted[node].push(item);
        self.cached_items += 1;
    }

    /// Convenience: drains the whole stream under `node` (a full sort).
    pub fn drain(&mut self, node: usize) -> Vec<SortItem> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(item) = self.get(node, i) {
            out.push(item);
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn net_over(bids: &[u64]) -> (MergeNetwork, usize) {
        let mut net = MergeNetwork::new();
        let leaves: Vec<usize> = bids
            .iter()
            .enumerate()
            .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
            .collect();
        // Balanced tree.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(net.merge(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let root = level[0];
        (net, root)
    }

    #[test]
    fn drains_in_descending_order() {
        let (mut net, root) = net_over(&[5, 9, 1, 7, 3]);
        let bids: Vec<u64> = net.drain(root).iter().map(|i| i.bid.micros()).collect();
        assert_eq!(bids, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn ties_break_by_advertiser_id() {
        let (mut net, root) = net_over(&[5, 5, 5]);
        let ids: Vec<u32> = net.drain(root).iter().map(|i| i.advertiser.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn pull_is_lazy() {
        let (mut net, root) = net_over(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let first = net.get(root, 0).unwrap();
        assert_eq!(first.bid.micros(), 8);
        // Getting the max of 8 leaves via a balanced tree costs at most
        // one invocation per merge node on the max's path plus register
        // fills: strictly fewer than a full sort's ~17.
        assert!(
            net.invocations() <= 8,
            "lazy top-1 used {} invocations",
            net.invocations()
        );
    }

    #[test]
    fn caching_shares_across_consumers() {
        let (mut net, root) = net_over(&[4, 2, 6, 8]);
        let _ = net.get(root, 0);
        let _ = net.get(root, 1);
        let before = net.invocations();
        // A second consumer re-reading the prefix costs nothing.
        assert_eq!(net.get(root, 0).unwrap().bid.micros(), 8);
        assert_eq!(net.get(root, 1).unwrap().bid.micros(), 6);
        assert_eq!(net.invocations(), before);
    }

    #[test]
    fn shared_subtree_is_sorted_once() {
        // Two roots share a subtree: draining both should invoke the
        // shared part once.
        let mut net = MergeNetwork::new();
        let a = net.leaf(AdvertiserId(0), Money::from_micros(3));
        let b = net.leaf(AdvertiserId(1), Money::from_micros(7));
        let shared = net.merge(a, b);
        let c = net.leaf(AdvertiserId(2), Money::from_micros(5));
        let d = net.leaf(AdvertiserId(3), Money::from_micros(1));
        let root1 = net.merge(shared, c);
        let root2 = net.merge(shared, d);
        let s1 = net.drain(root1);
        let inv_after_first = net.invocations();
        let s2 = net.drain(root2);
        let extra = net.invocations() - inv_after_first;
        assert_eq!(
            s1.iter().map(|i| i.bid.micros()).collect::<Vec<_>>(),
            vec![7, 5, 3]
        );
        assert_eq!(
            s2.iter().map(|i| i.bid.micros()).collect::<Vec<_>>(),
            vec![7, 3, 1]
        );
        // Draining root2 pays only its own merges (3 items), not the
        // shared node's (already cached).
        assert!(extra <= 3, "second drain cost {extra}");
    }

    #[test]
    fn exhausted_streams_return_none() {
        let (mut net, root) = net_over(&[1, 2]);
        assert!(net.get(root, 2).is_none());
        assert!(net.get(root, 99).is_none());
        // Still fine to re-read earlier items.
        assert_eq!(net.get(root, 0).unwrap().bid.micros(), 2);
    }

    #[test]
    fn worst_case_invocations_bounded_by_iv() {
        // Full sort of a node with |I_v| leaves invokes each operator at
        // most |I_v| times: total ≤ Σ_v |I_v| over merge nodes.
        let (mut net, root) = net_over(&[3, 1, 4, 1, 5, 9, 2, 6]);
        net.drain(root);
        // Balanced over 8: levels contribute 8 + 8 + 8 = 24 at most.
        assert!(net.invocations() <= 24);
    }

    /// Ancestor cones computed by brute force from the network structure
    /// (the planner derives the same thing from plan advertiser sets).
    fn brute_force_cones(net: &MergeNetwork, leaves: usize) -> LeafCones {
        let mut below: Vec<Vec<usize>> = Vec::with_capacity(net.len());
        for idx in 0..net.len() {
            let [l, r] = net.children[idx];
            if l == NO_CHILD {
                below.push(vec![idx]);
            } else {
                let mut b = below[l as usize].clone();
                b.extend_from_slice(&below[r as usize]);
                below.push(b);
            }
        }
        let lists: Vec<Vec<u32>> = (0..leaves)
            .map(|leaf| {
                (0..net.len())
                    .filter(|&idx| net.children[idx][0] != NO_CHILD && below[idx].contains(&leaf))
                    .map(|idx| idx as u32)
                    .collect()
            })
            .collect();
        LeafCones::from_lists(&lists)
    }

    #[test]
    fn refresh_matches_fresh_rebuild() {
        let bids = [5u64, 9, 1, 7, 3, 8, 2, 6];
        let (mut net, root) = net_over(&bids);
        let cones = brute_force_cones(&net, bids.len());
        net.drain(root);

        let mut new_bids = bids;
        new_bids[2] = 10;
        new_bids[5] = 0;
        let changed = vec![
            (2usize, Money::from_micros(10)),
            (5usize, Money::from_micros(0)),
        ];
        net.refresh(&changed, &cones);
        let inv_before = net.invocations();
        let refreshed = net.drain(root);
        let refresh_cost = net.invocations() - inv_before;

        let (mut fresh, fresh_root) = net_over(&new_bids);
        let fresh_items = fresh.drain(fresh_root);
        let fresh_cost = fresh.invocations();
        assert_eq!(refreshed, fresh_items);
        assert!(
            refresh_cost < fresh_cost,
            "refresh re-merged {refresh_cost} ≥ fresh {fresh_cost}: no reuse"
        );
    }

    #[test]
    fn refresh_invalidates_exactly_the_cone() {
        // Balanced tree over 8 leaves: one changed leaf dirties itself
        // plus its 3 ancestors (log₂ 8 levels).
        let bids = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let (mut net, root) = net_over(&bids);
        let cones = brute_force_cones(&net, bids.len());
        net.drain(root);
        let cached_before = net.cached_items();
        let stats = net.refresh(&[(0, Money::from_micros(100))], &cones);
        assert_eq!(stats.nodes_invalidated, 4, "leaf + 3 ancestors");
        // The leaf and each ancestor had fully drained caches of sizes
        // 1, 2, 4, 8 → 15 items dropped, the rest reused.
        assert_eq!(stats.cache_items_reused, cached_before - 15);
        assert_eq!(net.cached_items(), stats.cache_items_reused);
    }

    #[test]
    fn refresh_with_no_changes_reuses_everything() {
        let (mut net, root) = net_over(&[4, 2, 6, 8]);
        let cones = brute_force_cones(&net, 4);
        let items = net.drain(root);
        let inv = net.invocations();
        let stats = net.refresh(&[], &cones);
        assert_eq!(stats.nodes_invalidated, 0);
        assert_eq!(stats.cache_items_reused, net.cached_items());
        assert_eq!(net.drain(root), items);
        assert_eq!(
            net.invocations(),
            inv,
            "no-op refresh must re-merge nothing"
        );
    }

    #[test]
    fn repeated_refreshes_stay_consistent() {
        let mut bids = [7u64, 7, 7, 7, 7];
        let (mut net, root) = net_over(&bids);
        let cones = brute_force_cones(&net, bids.len());
        for round in 0..10u64 {
            let leaf = (round % bids.len() as u64) as usize;
            bids[leaf] = round * 3 % 11;
            net.refresh(&[(leaf, Money::from_micros(bids[leaf]))], &cones);
            let got = net.drain(root);
            let (mut fresh, fresh_root) = net_over(&bids);
            assert_eq!(got, fresh.drain(fresh_root), "round {round}");
        }
    }

    #[test]
    fn eviction_frees_cold_caches_and_streams_stay_identical() {
        let bids = [5u64, 9, 1, 7, 3, 8, 2, 6];
        let (mut net, root) = net_over(&bids);
        let cones = brute_force_cones(&net, bids.len());
        let items = net.drain(root);
        let cached_before = net.cached_items();
        assert!(cached_before > 0);
        // Nothing is pulled for several refreshes: the whole network
        // goes cold and eviction reclaims every cache.
        for _ in 0..5 {
            net.refresh(&[], &cones);
        }
        let dropped = net.evict_cold(3);
        assert_eq!(dropped, cached_before, "every cache was cold");
        assert_eq!(net.cached_items(), 0);
        // Regeneration is bit-identical.
        assert_eq!(net.drain(root), items);
    }

    #[test]
    fn eviction_under_live_parent_cursors_is_safe() {
        // Keep the root warm (cache hits only — its children go cold),
        // evict, then pull *past* the cached prefix: the root's cursors
        // point deep into children that must regenerate their streams.
        let bids = [5u64, 9, 1, 7, 3, 8, 2, 6];
        let (mut net, root) = net_over(&bids);
        let cones = brute_force_cones(&net, bids.len());
        let full = net.drain(root);
        for _ in 0..5 {
            net.refresh(&[], &cones);
            // Cache hit: touches the root only, children stay cold.
            assert_eq!(net.get(root, 0), Some(full[0]));
        }
        let dropped = net.evict_cold(3);
        assert!(dropped > 0, "children below the warm root must evict");
        assert!(!net.cached(root).is_empty(), "warm root kept its cache");
        assert_eq!(net.drain(root), full, "regenerated streams identical");
    }

    #[test]
    fn eviction_respects_recent_touches() {
        let (mut net, root) = net_over(&[4, 2, 6, 8]);
        let cones = brute_force_cones(&net, 4);
        net.drain(root);
        net.refresh(&[], &cones);
        assert_eq!(net.evict_cold(3), 0, "nothing is older than the horizon");
        assert!(net.cached_items() > 0);
    }

    proptest! {
        /// Refreshing any leaf subset yields the same streams as a fresh
        /// network over the updated bids, for random tree shapes.
        #[test]
        fn refresh_is_bit_identical_to_fresh(
            bids in proptest::collection::vec(0u64..1000, 2..24),
            updates in proptest::collection::vec((0usize..24, 0u64..1000), 0..8),
            partial_drain in 0usize..24,
        ) {
            let (mut net, root) = net_over(&bids);
            let cones = brute_force_cones(&net, bids.len());
            // Pull only part of the stream so caches are at mixed depths.
            for i in 0..partial_drain.min(bids.len()) {
                net.get(root, i);
            }
            let mut new_bids = bids.clone();
            let mut changed = Vec::new();
            for (leaf, bid) in updates {
                let leaf = leaf % bids.len();
                new_bids[leaf] = bid;
                changed.push((leaf, Money::from_micros(bid)));
            }
            net.refresh(&changed, &cones);
            let (mut fresh, fresh_root) = net_over(&new_bids);
            prop_assert_eq!(net.drain(root), fresh.drain(fresh_root));
        }

        /// Eviction at arbitrary points of a refresh/pull schedule never
        /// changes any stream.
        #[test]
        fn eviction_is_bit_identical_to_fresh(
            bids in proptest::collection::vec(0u64..1000, 2..16),
            updates in proptest::collection::vec((0usize..16, 0u64..1000), 1..6),
            horizon in 0u32..4,
        ) {
            let (mut net, root) = net_over(&bids);
            let cones = brute_force_cones(&net, bids.len());
            net.drain(root);
            let mut new_bids = bids.clone();
            for (round, (leaf, bid)) in updates.into_iter().enumerate() {
                let leaf = leaf % bids.len();
                new_bids[leaf] = bid;
                net.refresh(&[(leaf, Money::from_micros(bid))], &cones);
                if round % 2 == 0 {
                    net.evict_cold(horizon);
                }
                let (mut fresh, fresh_root) = net_over(&new_bids);
                prop_assert_eq!(net.drain(root), fresh.drain(fresh_root));
            }
        }

        /// The network agrees with a plain sort for any bids and any
        /// random (not necessarily balanced) tree shape.
        #[test]
        fn network_sorts_correctly(
            bids in proptest::collection::vec(0u64..1000, 1..40),
            shape in proptest::collection::vec(any::<u8>(), 40),
        ) {
            let mut net = MergeNetwork::new();
            let mut pool: Vec<usize> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
                .collect();
            let mut s = 0usize;
            while pool.len() > 1 {
                let a = shape[s % shape.len()] as usize % pool.len();
                let na = pool.swap_remove(a);
                let b = shape[(s + 1) % shape.len()] as usize % pool.len();
                let nb = pool.swap_remove(b);
                pool.push(net.merge(na, nb));
                s += 2;
            }
            let got: Vec<(u64, u32)> = net
                .drain(pool[0])
                .iter()
                .map(|i| (i.bid.micros(), i.advertiser.0))
                .collect();
            let mut want: Vec<(u64, u32)> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, i as u32))
                .collect();
            want.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
            prop_assert_eq!(got, want);
        }
    }
}
