//! Shared sorting (Section III).
//!
//! When the advertiser-specific CTR factor `c_i^q` differs across bid
//! phrases, per-phrase top-k aggregates cannot be shared directly — but
//! the *bids* `b_i` are still shared. The paper's technique: give the
//! Threshold Algorithm a descending-by-bid stream per phrase, produced by
//! an on-demand merge-sort operator tree whose operators are shared
//! across phrases ("we can re-use the cached results of any operators
//! below which all leaves correspond to advertisers in `I_q ∩ I_q'`").
//!
//! * [`MergeNetwork`] — the runtime: pull-based merge operators with a
//!   left/right register each and a cache of everything sent upstream;
//! * [`planner`] — the bottom-up greedy network builder (Section III-C)
//!   with the expected-savings objective;
//! * [`ta`] — the Threshold Algorithm driver (Fagin–Lotem–Naor),
//!   instance-optimal for finding the per-phrase top k.

pub mod concurrent;
pub mod planner;
pub mod ta;

use std::cmp::Ordering;

use ssa_auction::ids::AdvertiserId;
use ssa_auction::money::Money;

/// One element of a bid-sorted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortItem {
    /// The bid `b_i`.
    pub bid: Money,
    /// The advertiser.
    pub advertiser: AdvertiserId,
}

impl PartialOrd for SortItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortItem {
    /// Descending-stream order: higher bid first, ties by lower id.
    fn cmp(&self, other: &Self) -> Ordering {
        self.bid
            .cmp(&other.bid)
            .then_with(|| other.advertiser.cmp(&self.advertiser))
    }
}

#[derive(Debug, Clone, Copy)]
enum NetNodeKind {
    /// A single advertiser's bid.
    Leaf { item: SortItem },
    /// An on-demand merge operator: children plus how many items have
    /// been consumed from each (the paper's left/right registers,
    /// generalized to cursors because consumed prefixes are cached by the
    /// children anyway).
    Merge {
        left: usize,
        right: usize,
        left_pos: usize,
        right_pos: usize,
    },
}

#[derive(Debug, Clone)]
struct NetNode {
    kind: NetNodeKind,
    /// "Each operator stores the sequence of values it has sent
    /// upstream."
    emitted: Vec<SortItem>,
    /// No more items below.
    exhausted: bool,
}

/// A shared, pull-based merge-sort network.
///
/// Nodes are created bottom-up ([`MergeNetwork::leaf`],
/// [`MergeNetwork::merge`]); [`MergeNetwork::get`] pulls the `index`-th
/// largest item under a node, doing no more comparisons than needed and
/// caching everything for other consumers ("we don't do any extra work
/// beyond the stage where the threshold condition is met").
#[derive(Debug, Clone, Default)]
pub struct MergeNetwork {
    nodes: Vec<NetNode>,
    /// Total operator invocations (one per item sent upstream by a merge
    /// operator) — the cost the Section III-B model bounds by `|I_v|`.
    invocations: u64,
}

impl MergeNetwork {
    /// An empty network.
    pub fn new() -> Self {
        MergeNetwork::default()
    }

    /// Adds a leaf for one advertiser's bid; returns its node id.
    pub fn leaf(&mut self, advertiser: AdvertiserId, bid: Money) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(NetNode {
            kind: NetNodeKind::Leaf {
                item: SortItem { bid, advertiser },
            },
            emitted: Vec::new(),
            exhausted: false,
        });
        idx
    }

    /// Adds a merge operator over two existing nodes; returns its id.
    ///
    /// # Panics
    /// Panics if a child id is out of range or not older than the new
    /// node.
    pub fn merge(&mut self, left: usize, right: usize) -> usize {
        assert!(
            left < self.nodes.len() && right < self.nodes.len(),
            "merge child out of range"
        );
        let idx = self.nodes.len();
        self.nodes.push(NetNode {
            kind: NetNodeKind::Merge {
                left,
                right,
                left_pos: 0,
                right_pos: 0,
            },
            emitted: Vec::new(),
            exhausted: false,
        });
        idx
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total merge-operator invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The `index`-th item (0 = largest) of the stream under `node`, or
    /// `None` if the stream has fewer items. Cached results are returned
    /// without recomputation.
    pub fn get(&mut self, node: usize, index: usize) -> Option<SortItem> {
        while self.nodes[node].emitted.len() <= index && !self.nodes[node].exhausted {
            self.pull_next(node);
        }
        self.nodes[node].emitted.get(index).copied()
    }

    /// Produces one more item at `node` (or marks it exhausted).
    fn pull_next(&mut self, node: usize) {
        match self.nodes[node].kind {
            NetNodeKind::Leaf { item } => {
                if self.nodes[node].emitted.is_empty() {
                    self.nodes[node].emitted.push(item);
                } else {
                    self.nodes[node].exhausted = true;
                }
            }
            NetNodeKind::Merge {
                left,
                right,
                left_pos,
                right_pos,
            } => {
                // Fill the registers from downstream (cached if already
                // pulled by another consumer).
                let l = self.get(left, left_pos);
                let r = self.get(right, right_pos);
                let take_left = match (l, r) {
                    (Some(a), Some(b)) => a > b,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => {
                        self.nodes[node].exhausted = true;
                        return;
                    }
                };
                self.invocations += 1;
                let item = if take_left { l.unwrap() } else { r.unwrap() };
                if let NetNodeKind::Merge {
                    left_pos,
                    right_pos,
                    ..
                } = &mut self.nodes[node].kind
                {
                    if take_left {
                        *left_pos += 1;
                    } else {
                        *right_pos += 1;
                    }
                }
                self.nodes[node].emitted.push(item);
            }
        }
    }

    /// Convenience: drains the whole stream under `node` (a full sort).
    pub fn drain(&mut self, node: usize) -> Vec<SortItem> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(item) = self.get(node, i) {
            out.push(item);
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn net_over(bids: &[u64]) -> (MergeNetwork, usize) {
        let mut net = MergeNetwork::new();
        let leaves: Vec<usize> = bids
            .iter()
            .enumerate()
            .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
            .collect();
        // Balanced tree.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(net.merge(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let root = level[0];
        (net, root)
    }

    #[test]
    fn drains_in_descending_order() {
        let (mut net, root) = net_over(&[5, 9, 1, 7, 3]);
        let bids: Vec<u64> = net.drain(root).iter().map(|i| i.bid.micros()).collect();
        assert_eq!(bids, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn ties_break_by_advertiser_id() {
        let (mut net, root) = net_over(&[5, 5, 5]);
        let ids: Vec<u32> = net.drain(root).iter().map(|i| i.advertiser.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn pull_is_lazy() {
        let (mut net, root) = net_over(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let first = net.get(root, 0).unwrap();
        assert_eq!(first.bid.micros(), 8);
        // Getting the max of 8 leaves via a balanced tree costs at most
        // one invocation per merge node on the max's path plus register
        // fills: strictly fewer than a full sort's ~17.
        assert!(
            net.invocations() <= 8,
            "lazy top-1 used {} invocations",
            net.invocations()
        );
    }

    #[test]
    fn caching_shares_across_consumers() {
        let (mut net, root) = net_over(&[4, 2, 6, 8]);
        let _ = net.get(root, 0);
        let _ = net.get(root, 1);
        let before = net.invocations();
        // A second consumer re-reading the prefix costs nothing.
        assert_eq!(net.get(root, 0).unwrap().bid.micros(), 8);
        assert_eq!(net.get(root, 1).unwrap().bid.micros(), 6);
        assert_eq!(net.invocations(), before);
    }

    #[test]
    fn shared_subtree_is_sorted_once() {
        // Two roots share a subtree: draining both should invoke the
        // shared part once.
        let mut net = MergeNetwork::new();
        let a = net.leaf(AdvertiserId(0), Money::from_micros(3));
        let b = net.leaf(AdvertiserId(1), Money::from_micros(7));
        let shared = net.merge(a, b);
        let c = net.leaf(AdvertiserId(2), Money::from_micros(5));
        let d = net.leaf(AdvertiserId(3), Money::from_micros(1));
        let root1 = net.merge(shared, c);
        let root2 = net.merge(shared, d);
        let s1 = net.drain(root1);
        let inv_after_first = net.invocations();
        let s2 = net.drain(root2);
        let extra = net.invocations() - inv_after_first;
        assert_eq!(
            s1.iter().map(|i| i.bid.micros()).collect::<Vec<_>>(),
            vec![7, 5, 3]
        );
        assert_eq!(
            s2.iter().map(|i| i.bid.micros()).collect::<Vec<_>>(),
            vec![7, 3, 1]
        );
        // Draining root2 pays only its own merges (3 items), not the
        // shared node's (already cached).
        assert!(extra <= 3, "second drain cost {extra}");
    }

    #[test]
    fn exhausted_streams_return_none() {
        let (mut net, root) = net_over(&[1, 2]);
        assert!(net.get(root, 2).is_none());
        assert!(net.get(root, 99).is_none());
        // Still fine to re-read earlier items.
        assert_eq!(net.get(root, 0).unwrap().bid.micros(), 2);
    }

    #[test]
    fn worst_case_invocations_bounded_by_iv() {
        // Full sort of a node with |I_v| leaves invokes each operator at
        // most |I_v| times: total ≤ Σ_v |I_v| over merge nodes.
        let (mut net, root) = net_over(&[3, 1, 4, 1, 5, 9, 2, 6]);
        net.drain(root);
        // Balanced over 8: levels contribute 8 + 8 + 8 = 24 at most.
        assert!(net.invocations() <= 24);
    }

    proptest! {
        /// The network agrees with a plain sort for any bids and any
        /// random (not necessarily balanced) tree shape.
        #[test]
        fn network_sorts_correctly(
            bids in proptest::collection::vec(0u64..1000, 1..40),
            shape in proptest::collection::vec(any::<u8>(), 40),
        ) {
            let mut net = MergeNetwork::new();
            let mut pool: Vec<usize> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| net.leaf(AdvertiserId::from_index(i), Money::from_micros(b)))
                .collect();
            let mut s = 0usize;
            while pool.len() > 1 {
                let a = shape[s % shape.len()] as usize % pool.len();
                let na = pool.swap_remove(a);
                let b = shape[(s + 1) % shape.len()] as usize % pool.len();
                let nb = pool.swap_remove(b);
                pool.push(net.merge(na, nb));
                s += 2;
            }
            let got: Vec<(u64, u32)> = net
                .drain(pool[0])
                .iter()
                .map(|i| (i.bid.micros(), i.advertiser.0))
                .collect();
            let mut want: Vec<(u64, u32)> = bids
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, i as u32))
                .collect();
            want.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
            prop_assert_eq!(got, want);
        }
    }
}
