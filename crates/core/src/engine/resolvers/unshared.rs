//! The baseline resolver: an independent top-k scan per phrase.

use ssa_auction::ids::{AdvertiserId, PhraseId};
use ssa_auction::money::Money;
use ssa_auction::score::Score;
use ssa_auction::winner::assignment_from_ranking;

use crate::budget::topk::{top_k_uncertain, UncertainCandidate};
use crate::exec;
use crate::topk::{KList, ScoredAd};

use super::super::{AuctionOutcome, BudgetPolicy, EngineMetrics};
use super::{PhraseResolver, RoundContext};

/// Independent scan per phrase, fanned out over `wd_threads` workers.
/// Stateless: every round's work derives entirely from the
/// [`RoundContext`].
///
/// Under `ThrottleBounds`, selection runs on lazily refined Hoeffding
/// bounds instead of the exact throttled bids; exact values are computed
/// only for each phrase's ranked top `k + 1` (the winners plus the
/// runner-up pricing reads) and backfilled into `effective_bids`.
#[derive(Debug, Default)]
pub struct UnsharedResolver;

/// Chunk width for the unshared phrase scan: small enough that the score
/// buffer lives in registers/L1, wide enough to amortize the threshold
/// re-read.
const SCAN_CHUNK: usize = 64;

/// Branch-light chunked top-k scan of one phrase's interest list.
///
/// Scores for a whole chunk are computed into a flat buffer first — a
/// pure-arithmetic loop with no data-dependent branches, which the
/// compiler can unroll and vectorize — and only candidates at or above
/// the chunk-start k-th score touch the k-list. The filter uses `>=`
/// because ties break by ascending advertiser id: an equal score with a
/// lower id outranks the current k-th. A stale (chunk-start) threshold is
/// conservative — it only admits extra candidates, which `insert`
/// rejects — so the result is bit-identical to the naive one-by-one scan.
pub fn scan_top_k(
    interest: &[AdvertiserId],
    factors: &[f64],
    bids: &[Money],
    k: usize,
) -> KList<ScoredAd> {
    let mut top: KList<ScoredAd> = KList::empty(k);
    let mut scores = [Score::ZERO; SCAN_CHUNK];
    for (ads, facs) in interest.chunks(SCAN_CHUNK).zip(factors.chunks(SCAN_CHUNK)) {
        for ((slot, &a), &factor) in scores.iter_mut().zip(ads).zip(facs) {
            *slot = Score::expected_value(bids[a.index()], factor);
        }
        let threshold = top.kth().map(|s| s.score);
        for (&a, &score) in ads.iter().zip(&scores) {
            if threshold.is_none_or(|t| score >= t) {
                top.insert(ScoredAd::new(a, score));
            }
        }
    }
    top
}

/// One phrase's result, carried back from the worker.
struct PhraseResolution {
    ranked: Vec<(AdvertiserId, Score)>,
    /// Exact throttled bids of the ranked advertisers (`ThrottleBounds`
    /// only).
    exact_bids: Vec<(AdvertiserId, Money)>,
    scanned: u64,
    bound_evaluations: u64,
    exact_evaluations: u64,
}

impl PhraseResolver for UnsharedResolver {
    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        let k = ctx.k;
        let bounds_mode = ctx.budget_policy == BudgetPolicy::ThrottleBounds;
        let resolutions: Vec<PhraseResolution> = {
            let bids: &[Money] = effective_bids;
            exec::parallel_map(phrases.len(), ctx.wd_threads, |j| {
                let q = phrases[j].index();
                let interest = &ctx.workload.interest[q];
                if bounds_mode {
                    // `m_i` was computed once for the whole round; no
                    // per-(phrase, candidate) rescan of the occurring set.
                    let candidates: Vec<UncertainCandidate> = interest
                        .iter()
                        .enumerate()
                        .map(|(pos, &a)| {
                            let factor = ctx.workload.phrase_factors[q][pos];
                            let budget = (ctx.budgets)(a.index(), ctx.m_i[a.index()]);
                            UncertainCandidate::new(a, factor, &budget)
                        })
                        .collect();
                    // k + 1: pricing needs the runner-up's exact score.
                    let (winners, stats) = top_k_uncertain(&candidates, k + 1);
                    PhraseResolution {
                        ranked: winners.iter().map(|w| (w.advertiser, w.score)).collect(),
                        exact_bids: winners.iter().map(|w| (w.advertiser, w.bid)).collect(),
                        scanned: interest.len() as u64,
                        bound_evaluations: stats.bound_evaluations,
                        exact_evaluations: stats.exact_evaluations,
                    }
                } else {
                    let top = scan_top_k(interest, &ctx.workload.phrase_factors[q], bids, k);
                    PhraseResolution {
                        ranked: top
                            .items()
                            .iter()
                            .map(|s| (s.advertiser, s.score))
                            .collect(),
                        exact_bids: Vec::new(),
                        scanned: interest.len() as u64,
                        bound_evaluations: 0,
                        exact_evaluations: 0,
                    }
                }
            })
        };

        let mut out = Vec::with_capacity(phrases.len());
        for (&phrase, res) in phrases.iter().zip(resolutions) {
            metrics.advertisers_scanned += res.scanned;
            metrics.bound_evaluations += res.bound_evaluations;
            metrics.exact_throttle_evaluations += res.exact_evaluations;
            for (a, bid) in res.exact_bids {
                effective_bids[a.index()] = bid;
            }
            out.push(AuctionOutcome {
                phrase,
                assignment: assignment_from_ranking(&res.ranked, k),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The chunked scan must be bit-identical to the naive one-by-one
    /// insert loop, including across chunk boundaries and under score
    /// ties (where the `>=` threshold admits equal-score lower-id
    /// candidates that displace the current k-th).
    #[test]
    fn chunked_scan_matches_naive() {
        for n in [0usize, 1, 3, 63, 64, 65, 130, 257] {
            for k in [1usize, 2, 5, 8] {
                let interest: Vec<AdvertiserId> = (0..n).map(AdvertiserId::from_index).collect();
                // Deterministic pseudo-random bids with deliberate ties
                // (mod 7 collapses many scores onto the same value).
                let bids: Vec<Money> = (0..n)
                    .map(|i| Money::from_units(((i * 37 + 11) % 7 + 1) as u64))
                    .collect();
                let factors: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
                let chunked = scan_top_k(&interest, &factors, &bids, k);
                let mut naive: KList<ScoredAd> = KList::empty(k);
                for (pos, &a) in interest.iter().enumerate() {
                    let score = Score::expected_value(bids[a.index()], factors[pos]);
                    naive.insert(ScoredAd::new(a, score));
                }
                assert_eq!(chunked.items(), naive.items(), "n={n} k={k}");
            }
        }
    }
}
