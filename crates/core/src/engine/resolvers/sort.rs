//! The Section III resolver: persistent shared merge network + TA.

use std::time::Instant;

use ssa_auction::ids::{AdvertiserId, PhraseId};
use ssa_auction::money::Money;
use ssa_auction::score::Score;
use ssa_auction::winner::assignment_from_ranking;
use ssa_workload::Workload;

use crate::sort::concurrent::{resolve_parallel_with, ConcurrentMergeNetwork, TaJob};
use crate::sort::planner::{build_shared_sort_plan_sparse, SortPlan};
use crate::sort::ta::{threshold_top_k_into, TaScratch};
use crate::sort::{LeafCones, MergeNetwork, RefreshStats, SortItem};

/// Every this-many rounds, merge caches untouched for at least this many
/// refreshes are freed ([`MergeNetwork::evict_cold`]), bounding resident
/// cache memory to *recently active* phrases' cones. 64 keeps steady-state
/// hot caches warm (eviction never fires for a cone touched each round)
/// while cold phrases' caches survive at most ~2 horizons.
const CACHE_EVICT_HORIZON: u32 = 64;

use super::super::{AuctionOutcome, EngineMetrics};
use super::{PhraseResolver, RoundContext};

/// The persistent merge network a sort resolver keeps alive across
/// rounds — sequential or lock-striped concurrent, fixed at construction
/// by the configured thread count.
enum SortNet {
    Seq(MergeNetwork),
    Conc(ConcurrentMergeNetwork),
}

impl SortNet {
    fn invocations(&self) -> u64 {
        match self {
            SortNet::Seq(net) => net.invocations(),
            SortNet::Conc(net) => net.invocations(),
        }
    }

    fn evict_cold(&mut self, horizon: u32) -> u64 {
        match self {
            SortNet::Seq(net) => net.evict_cold(horizon),
            SortNet::Conc(net) => net.evict_cold(horizon),
        }
    }

    fn heap_bytes(&mut self) -> usize {
        match self {
            SortNet::Seq(net) => net.heap_bytes(),
            SortNet::Conc(net) => net.heap_bytes(),
        }
    }
}

/// Shared merge-sort + Threshold Algorithm over a (possibly strict)
/// subset of the workload's phrases. The merge network lives for the
/// lifetime of the [`SortPlan`]: each round `prepare` diffs the new
/// effective bids against `prev_bids` and refreshes only the dirty cones,
/// so untouched subtrees keep their cached merged prefixes. TA scratch
/// (seen-sets, top-k working lists) also persists so steady-state rounds
/// allocate nothing in those paths. Outcomes are bit-identical to
/// fresh-per-round instantiation (pinned by the `sort-persistent`
/// differential-corpus check in `ssa-testkit`).
pub struct SortResolver {
    /// Offline shared-sort plan over the bound phrase subset.
    plan: SortPlan,
    /// Per phrase, advertisers by descending `c_i^q` (TA's second list);
    /// empty for phrases outside this resolver's subset.
    c_orders: Vec<Vec<(AdvertiserId, f64)>>,
    /// Worker threads; `> 1` uses the lock-per-operator concurrent
    /// network (identical results, only wall-clock changes).
    threads: usize,
    /// Per leaf, the merge operators a bid change there invalidates
    /// (`SortPlan::leaf_cones`, computed once at plan-build time; CSR).
    cones: LeafCones,
    /// The persistent network; `None` until the first round builds it
    /// from that round's effective bids.
    net: Option<SortNet>,
    /// Per-phrase roots in network node space (`usize::MAX` for empty or
    /// unbound phrases).
    roots: Vec<usize>,
    /// The effective bids the network currently reflects.
    prev_bids: Vec<Money>,
    /// Adaptive-routing deferral: per leaf, how many *sort-routed*
    /// phrases are interested in it. `None` (static routing) keeps every
    /// leaf live. A leaf with count zero is skipped when diffing, so its
    /// `prev_bids` entry — and the network above it — lags the bid
    /// stream; no TA can observe the staleness because every node
    /// reachable from a sort-routed phrase's root has only live leaves
    /// beneath it. When a migration re-activates a leaf, the next
    /// `prepare`'s diff sees the accumulated lag and repairs exactly that
    /// leaf's dirty cone — migration costs a cone repair, not a rebuild.
    active: Option<Vec<u32>>,
    /// Reusable bid-delta buffer.
    changed: Vec<(usize, Money)>,
    /// Sequential TA scratch + output buffer.
    ta_scratch: TaScratch,
    ta_out: Vec<(AdvertiserId, Score)>,
    /// Concurrent TA scratch pool, one per worker.
    ta_pool: Vec<parking_lot::Mutex<TaScratch>>,
    /// Per phrase, whether this resolver's plan was compiled over it. A
    /// phrase outside the compiled set has no root and no `c_order`;
    /// routing it here requires rebuilding the resolver first.
    compiled: Vec<bool>,
    /// Rounds prepared so far; drives the amortized cold-cache eviction
    /// sweep (every [`CACHE_EVICT_HORIZON`] rounds).
    rounds_prepared: u64,
}

impl SortResolver {
    /// Compiles a sort plan over the phrases where `mask` is true (all
    /// phrases when `mask` is `None`). Masked-out phrases keep an empty
    /// interest set in the plan, so they root at `usize::MAX` and cost
    /// the network nothing.
    pub fn new(workload: &Workload, mask: Option<&[bool]>, threads: usize) -> Self {
        let n = workload.advertiser_count();
        let m = workload.phrase_count();
        let included = |q: usize| mask.is_none_or(|mask| mask[q]);
        // Sparse interest lists (ascending advertiser indices) — the
        // builder never materializes universe-sized bitsets, which is what
        // lets plan construction reach 10^6 advertisers.
        let interest: Vec<Vec<u32>> = workload
            .interest
            .iter()
            .enumerate()
            .map(|(q, ids)| {
                if included(q) {
                    let mut list: Vec<u32> = ids.iter().map(|a| a.index() as u32).collect();
                    list.sort_unstable();
                    list
                } else {
                    Vec::new()
                }
            })
            .collect();
        let plan = build_shared_sort_plan_sparse(n, &interest, &workload.search_rates());
        let c_orders = (0..m)
            .map(|q| {
                if !included(q) {
                    return Vec::new();
                }
                let phrase = PhraseId::from_index(q);
                let mut order: Vec<(AdvertiserId, f64)> = workload.interest[q]
                    .iter()
                    .map(|&a| {
                        (
                            a,
                            workload
                                .phrase_factor(phrase, a)
                                .expect("interested advertiser has a factor"),
                        )
                    })
                    .collect();
                order.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
                order
            })
            .collect();
        let threads = threads.max(1);
        SortResolver {
            cones: plan.leaf_cones(),
            plan,
            c_orders,
            threads,
            net: None,
            roots: Vec::new(),
            prev_bids: Vec::new(),
            active: None,
            changed: Vec::new(),
            ta_scratch: TaScratch::new(),
            ta_out: Vec::new(),
            ta_pool: (0..threads)
                .map(|_| parking_lot::Mutex::new(TaScratch::new()))
                .collect(),
            compiled: (0..m).map(included).collect(),
            rounds_prepared: 0,
        }
    }

    /// Heap footprint of the resolver's hot state in bytes: plan arena,
    /// leaf cones, persistent network (node pools + caches), and the
    /// per-round buffers. Powers the memory-scaling gate's deterministic
    /// bytes-per-advertiser accounting.
    pub fn heap_bytes(&mut self) -> usize {
        use std::mem::size_of;
        let net = self.net.as_mut().map_or(0, |n| n.heap_bytes());
        self.plan.heap_bytes()
            + self.cones.heap_bytes()
            + net
            + self.prev_bids.capacity() * size_of::<Money>()
            + self.changed.capacity() * size_of::<(usize, Money)>()
            + self.roots.capacity() * size_of::<usize>()
            + self
                .c_orders
                .iter()
                .map(|o| o.capacity() * size_of::<(AdvertiserId, f64)>())
                .sum::<usize>()
    }

    /// Whether this resolver's plan was compiled over phrase `q` (and so
    /// can serve it without a rebuild).
    pub(crate) fn serves_phrase(&self, q: usize) -> bool {
        self.compiled[q]
    }

    /// Whether the compiled set strictly exceeds the sort-routed set —
    /// i.e. the network still carries structure for phrases the route
    /// sends to the plan. True means a rebuild over the routed subset
    /// would shrink the arena.
    pub(crate) fn compiled_beyond(&self, plan_route: &[bool]) -> bool {
        self.compiled
            .iter()
            .zip(plan_route)
            .any(|(&compiled, &to_plan)| compiled && to_plan)
    }

    /// Worker-thread count this resolver was built with.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Switches the resolver (typically one compiled over *all* phrases)
    /// into deferred-leaf mode: only leaves some sort-routed phrase
    /// (`plan_route[q] == false`) is interested in are diffed each round.
    /// Used by the adaptive hybrid router, whose migrations need every
    /// phrase to already have a root and `c_order` in the network —
    /// activating a phrase is then a counter bump plus one deferred cone
    /// repair. Must be called before the first round builds the network.
    ///
    /// Also repacks the plan's arena around the initially active phrases
    /// ([`SortPlan::cluster_hot_phrases`]): the all-phrase network is up
    /// to twice the size of the active subset's, and leaving the active
    /// cones scattered through it measurably degrades refresh and TA
    /// locality (~5% wall-clock against a subset-compiled network doing
    /// bit-identical work). Clustering restores the subset network's
    /// layout; phrases migrating in later land in the cold suffix, which
    /// is correct just not prefix-packed.
    pub fn defer_inactive_leaves(&mut self, plan_route: &[bool]) {
        assert!(self.net.is_none(), "defer before the first round");
        let hot: Vec<bool> = plan_route.iter().map(|&to_plan| !to_plan).collect();
        self.plan.cluster_hot_phrases(&hot);
        self.cones = self.plan.leaf_cones();
        let mut counts = vec![0u32; self.plan.advertiser_count()];
        for (q, &to_plan) in plan_route.iter().enumerate() {
            if !to_plan {
                for &(a, _) in &self.c_orders[q] {
                    counts[a.index()] += 1;
                }
            }
        }
        self.active = Some(counts);
    }

    /// Adjusts the active-leaf counts when phrase `q` migrates onto
    /// (`active == true`) or off the sort path. Only meaningful after
    /// [`SortResolver::defer_inactive_leaves`].
    pub(crate) fn set_phrase_active(&mut self, q: usize, active: bool) {
        let counts = self
            .active
            .as_mut()
            .expect("deferred-leaf mode required for migration");
        for &(a, _) in &self.c_orders[q] {
            let count = &mut counts[a.index()];
            if active {
                *count += 1;
            } else {
                debug_assert!(*count > 0, "deactivating an inactive leaf");
                *count -= 1;
            }
        }
    }

    /// Per phrase, the marginal expected merge cost (Section III-B units:
    /// expected items sent upstream per round) of serving the phrase
    /// through this resolver's shared schedule.
    pub(crate) fn phrase_marginals(&self, search_rates: &[f64]) -> Vec<f64> {
        self.plan.phrase_marginal_costs(search_rates)
    }

    /// Expected items per round through the network if exactly the
    /// phrases with a nonzero entry in `rates` were active (the Section
    /// III-B cost of the shared plan under those rates). The adaptive
    /// router's group-cost terms: callers mask `rates` by the current
    /// route to price the active network, or leave them unmasked to price
    /// full absorption.
    pub(crate) fn model_items(&self, rates: &[f64]) -> f64 {
        self.plan.expected_cost(rates)
    }

    /// The persistent network's cached stream per node (its already
    /// merged prefixes), or `None` before the first round. An observation
    /// seam for the `ssa-testkit` differential oracle, which asserts a
    /// fresh network's caches are prefixes of these.
    pub fn cached_streams(&self) -> Option<Vec<Vec<SortItem>>> {
        match self.net.as_ref()? {
            SortNet::Seq(net) => Some(
                (0..self.plan.node_count())
                    .map(|v| net.cached(v).to_vec())
                    .collect(),
            ),
            SortNet::Conc(net) => {
                Some((0..self.plan.node_count()).map(|v| net.cached(v)).collect())
            }
        }
    }
}

impl PhraseResolver for SortResolver {
    /// Refreshes (first round: builds) the persistent network from the
    /// round's effective bids.
    fn prepare(
        &mut self,
        _ctx: &RoundContext<'_>,
        effective_bids: &[Money],
        metrics: &mut EngineMetrics,
    ) {
        let started = Instant::now();
        self.rounds_prepared += 1;
        let stats = match self.net.as_mut() {
            None => {
                let roots = if self.threads > 1 {
                    let (net, roots) =
                        ConcurrentMergeNetwork::from_plan(&self.plan, effective_bids);
                    self.net = Some(SortNet::Conc(net));
                    roots
                } else {
                    let (net, roots) = self.plan.instantiate(effective_bids);
                    self.net = Some(SortNet::Seq(net));
                    roots
                };
                self.roots = roots;
                self.prev_bids.clear();
                self.prev_bids.extend_from_slice(effective_bids);
                // The whole network is built dirty; nothing was cached.
                RefreshStats {
                    nodes_invalidated: self.plan.node_count() as u64,
                    cache_items_reused: 0,
                }
            }
            Some(net) => {
                self.changed.clear();
                let active = self.active.as_deref();
                for (i, (&new, old)) in effective_bids
                    .iter()
                    .zip(self.prev_bids.iter_mut())
                    .enumerate()
                {
                    // Deferred leaves keep their stale `prev_bids` entry:
                    // the diff that matters runs when they re-activate.
                    if active.is_some_and(|counts| counts[i] == 0) {
                        continue;
                    }
                    if new != *old {
                        self.changed.push((i, new));
                        *old = new;
                    }
                }
                let stats = match net {
                    SortNet::Seq(n) => n.refresh(&self.changed, &self.cones),
                    SortNet::Conc(n) => n.refresh(&self.changed, &self.cones),
                };
                // Amortized cold-cache sweep: streams stay bit-identical
                // (evicted nodes regenerate the same items on demand), so
                // this only bounds memory, never changes outcomes.
                if self
                    .rounds_prepared
                    .is_multiple_of(u64::from(CACHE_EVICT_HORIZON))
                {
                    net.evict_cold(CACHE_EVICT_HORIZON);
                }
                stats
            }
        };
        metrics.sort_refresh_nanos += started.elapsed().as_nanos();
        metrics.sort_nodes_invalidated += stats.nodes_invalidated;
        metrics.sort_cache_items_reused += stats.cache_items_reused;
    }

    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        let k = ctx.k;
        let net = self.net.as_mut().expect("prepare builds the network");
        let invocations_before = net.invocations();
        let mut out = Vec::with_capacity(phrases.len());
        match net {
            SortNet::Conc(net) => {
                let jobs: Vec<TaJob<'_>> = phrases
                    .iter()
                    .map(|p| {
                        (
                            self.roots[p.index()],
                            self.c_orders[p.index()].as_slice(),
                            k,
                        )
                    })
                    .collect();
                let workload = ctx.workload;
                let bids: &[Money] = effective_bids;
                let outcomes = resolve_parallel_with(
                    net,
                    &jobs,
                    |_, a| bids[a.index()],
                    |j, a| workload.phrase_factor(phrases[j], a).unwrap_or(0.0),
                    self.threads,
                    &self.ta_pool,
                );
                for (&phrase, outcome) in phrases.iter().zip(outcomes) {
                    metrics.ta_stages += outcome.stages as u64;
                    out.push(AuctionOutcome {
                        phrase,
                        assignment: assignment_from_ranking(&outcome.top_k, k),
                    });
                }
            }
            SortNet::Seq(net) => {
                for &phrase in phrases {
                    let q = phrase.index();
                    let root = self.roots[q];
                    let workload = ctx.workload;
                    let stages = if root == usize::MAX {
                        self.ta_out.clear();
                        0
                    } else {
                        let (stages, _) = threshold_top_k_into(
                            |i| net.get(root, i),
                            &self.c_orders[q],
                            |a| effective_bids[a.index()],
                            |a| workload.phrase_factor(phrase, a).unwrap_or(0.0),
                            k,
                            &mut self.ta_scratch,
                            &mut self.ta_out,
                        );
                        stages
                    };
                    metrics.ta_stages += stages as u64;
                    out.push(AuctionOutcome {
                        phrase,
                        assignment: assignment_from_ranking(&self.ta_out, k),
                    });
                }
            }
        }
        metrics.merge_invocations += net.invocations() - invocations_before;
        out
    }
}
