//! The Section II resolver: one shared top-k aggregation plan.

use ssa_auction::ids::{AdvertiserId, PhraseId};
use ssa_auction::score::Score;
use ssa_auction::winner::assignment_from_ranking;
use ssa_setcover::VarSet;
use ssa_workload::Workload;

use crate::plan::{
    LevelSchedule, PlanDag, PlanMaintainer, PlanProblem, PlannerMode, SharedPlanner,
};
use crate::topk::{KList, ScoredAd, ScoredTopKOp};

use super::super::{AuctionOutcome, EngineMetrics};
use super::{PhraseResolver, RoundContext};
use ssa_auction::money::Money;

/// Shared top-k aggregation over a (possibly strict) subset of the
/// workload's phrases, compiled once at engine construction. Requires
/// every bound phrase to be separable: leaves score each advertiser by
/// its *base* factor, which is only that phrase's `c_i^q` when the factor
/// is phrase-independent there.
///
/// The plan lives inside a [`PlanMaintainer`], whose [`IncrementalCost`]
/// tracker doubles as the adaptive router's plan-side cost model: routing
/// a phrase away from the plan sets its search rate to zero (the plan's
/// structure is untouched — an unrouted phrase simply never occurs from
/// the plan's point of view, so its private nodes never materialize), and
/// routing it back restores the rate. Both directions are O(cone) rate
/// repairs, not replans.
///
/// [`IncrementalCost`]: crate::plan::IncrementalCost
pub struct PlanResolver {
    /// Offline shared-aggregation plan plus its incremental cost tracker;
    /// `None` when every bound phrase's interest set is empty.
    maintainer: Option<PlanMaintainer>,
    /// The plan's topological level schedule, computed once for
    /// level-parallel evaluation under `wd_threads > 1`.
    schedule: Option<LevelSchedule>,
    /// Per phrase, the plan query index it is bound to (`None` for
    /// phrases outside this resolver's subset and for empty-interest
    /// phrases, which resolve trivially).
    query_index: Vec<Option<usize>>,
    /// Construction-time search rate per bound query, restored when a
    /// routed-away phrase migrates back onto the plan.
    query_rates: Vec<f64>,
    /// Per phrase, the marginal expected cost (in expected materialized
    /// nodes per round, Section II-B units) of serving the phrase through
    /// this plan: the tracker's total drop when the phrase's rate is
    /// zeroed. Zero for unbound phrases.
    marginals: Vec<f64>,
}

impl PlanResolver {
    /// Compiles a plan over the phrases where `mask` is true (all phrases
    /// when `mask` is `None`), dropping empty-interest phrases from the
    /// problem (they cannot be bound in a plan and would pollute its cost
    /// model; they resolve trivially at round time).
    ///
    /// # Panics
    /// Panics if an included phrase has phrase-specific factors (the
    /// Section III setting), where top-k aggregates cannot be shared.
    pub fn new(workload: &Workload, planner: PlannerMode, mask: Option<&[bool]>) -> Self {
        let n = workload.advertiser_count();
        let m = workload.phrase_count();
        let rates = workload.search_rates();
        let mut query_index: Vec<Option<usize>> = vec![None; m];
        let mut queries: Vec<VarSet> = Vec::new();
        let mut query_rates: Vec<f64> = Vec::new();
        for (q, ids) in workload.interest.iter().enumerate() {
            if mask.is_some_and(|mask| !mask[q]) || ids.is_empty() {
                continue;
            }
            assert!(
                workload.phrase_is_separable(q),
                "SharedAggregation requires phrase-independent advertiser factors; \
                 use SharedSort or Hybrid for jittered workloads"
            );
            query_index[q] = Some(queries.len());
            // Adaptive-sparse from the start: a typical interest set is a
            // few hundred advertisers out of up to a million, so a dense
            // bitset per query would dwarf the plan itself.
            queries.push(VarSet::from_elements(n, ids.iter().map(|a| a.index())));
            query_rates.push(rates[q]);
        }
        let maintainer = if queries.is_empty() {
            None
        } else {
            let problem = PlanProblem::from_varsets(n, queries, Some(query_rates.clone()));
            Some(PlanMaintainer::new(
                problem,
                SharedPlanner { mode: planner },
                2.0,
            ))
        };
        let schedule = maintainer.as_ref().map(|m| m.plan().level_schedule());
        let mut resolver = PlanResolver {
            maintainer,
            schedule,
            query_index,
            query_rates,
            marginals: vec![0.0; m],
        };
        resolver.compute_marginals();
        resolver
    }

    /// Fills `marginals` by toggling each bound query's rate to zero and
    /// reading the incremental tracker's drop — the same delta-repair
    /// path a live migration takes, so the seed signal and the online
    /// bookkeeping can never disagree.
    fn compute_marginals(&mut self) {
        let Some(maintainer) = self.maintainer.as_mut() else {
            return;
        };
        for (q, marginal) in self.marginals.iter_mut().enumerate() {
            let Some(qi) = self.query_index[q] else {
                continue;
            };
            let with = maintainer.expected_cost();
            maintainer.update_search_rate(qi, 0.0);
            *marginal = (with - maintainer.expected_cost()).max(0.0);
            maintainer.update_search_rate(qi, self.query_rates[qi]);
        }
    }

    /// The compiled plan, if any phrase was bound (an observation seam
    /// for cost assertions in tests and benches).
    pub fn dag(&self) -> Option<&PlanDag> {
        self.maintainer.as_ref().map(PlanMaintainer::plan)
    }

    /// Heap footprint of the resolver's persistent state in bytes — the
    /// full maintainer (plan DAG, maintained problem, incremental cost
    /// tracker) plus the per-phrase tables — for the memory-scaling gate.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.maintainer
            .as_ref()
            .map_or(0, PlanMaintainer::heap_bytes)
            + self.query_index.capacity() * size_of::<Option<usize>>()
            + self.query_rates.capacity() * size_of::<f64>()
            + self.marginals.capacity() * size_of::<f64>()
    }

    /// The plan's expected per-round cost under the rates of the phrases
    /// currently routed here (served from the incremental tracker).
    pub fn expected_cost(&self) -> f64 {
        self.maintainer
            .as_ref()
            .map_or(0.0, PlanMaintainer::expected_cost)
    }

    /// True iff phrase `q` is bound to a query node of this plan (i.e.
    /// it is separable, in this resolver's subset, and non-empty).
    pub(crate) fn is_bound(&self, q: usize) -> bool {
        self.query_index[q].is_some()
    }

    /// Per phrase, the marginal expected plan cost (Section II-B units:
    /// expected materialized nodes per round); zero for unbound phrases.
    pub(crate) fn phrase_marginals(&self) -> &[f64] {
        &self.marginals
    }

    /// Routes phrase `q` onto (`true`) or off (`false`) this plan in the
    /// cost model: a search-rate toggle through the maintainer, repairing
    /// only the query's cone. No structural change — evaluation is
    /// occurrence-driven, so a routed-away phrase's private nodes simply
    /// never materialize. No-op for unbound phrases.
    pub(crate) fn set_phrase_routed(&mut self, q: usize, routed: bool) {
        let Some(qi) = self.query_index[q] else {
            return;
        };
        let maintainer = self.maintainer.as_mut().expect("bound phrase has a plan");
        let rate = if routed { self.query_rates[qi] } else { 0.0 };
        maintainer.update_search_rate(qi, rate);
    }
}

impl PhraseResolver for PlanResolver {
    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        let k = ctx.k;
        let Some(plan) = self.maintainer.as_ref().map(PlanMaintainer::plan) else {
            // Every bound phrase had an empty interest set (or there are
            // no advertisers at all): every auction resolves empty.
            return phrases
                .iter()
                .map(|&phrase| AuctionOutcome {
                    phrase,
                    assignment: assignment_from_ranking(&[], k),
                })
                .collect();
        };
        let op = ScoredTopKOp { k };
        // Leaves: singleton k-lists of each advertiser's current score.
        let leaf_values: Vec<KList<ScoredAd>> = ctx
            .workload
            .advertisers
            .iter()
            .enumerate()
            .map(|(i, adv)| {
                let score = Score::expected_value(effective_bids[i], adv.base_factor);
                KList::singleton(k, ScoredAd::new(adv.id, score))
            })
            .collect();
        let mut flags = vec![false; plan.query_count()];
        for &p in phrases {
            if let Some(qi) = self.query_index[p.index()] {
                flags[qi] = true;
            }
        }
        let (results, ops) = if ctx.wd_threads > 1 {
            let schedule = self.schedule.as_ref().expect("schedule computed with plan");
            plan.evaluate_parallel(&op, &leaf_values, &flags, schedule, ctx.wd_threads)
        } else {
            plan.evaluate(&op, &leaf_values, &flags)
        };
        metrics.aggregation_ops += ops as u64;
        phrases
            .iter()
            .map(|&phrase| {
                // A query node's variable set is exactly the phrase's
                // interest set, so every ranked advertiser is interested.
                let ranked: Vec<(AdvertiserId, Score)> = self.query_index[phrase.index()]
                    .and_then(|qi| results[qi].as_ref())
                    .map(|list| {
                        list.items()
                            .iter()
                            .map(|s| (s.advertiser, s.score))
                            .collect()
                    })
                    .unwrap_or_default();
                AuctionOutcome {
                    phrase,
                    assignment: assignment_from_ranking(&ranked, k),
                }
            })
            .collect()
    }
}
