//! The Section II resolver: one shared top-k aggregation plan.

use ssa_auction::ids::{AdvertiserId, PhraseId};
use ssa_auction::score::Score;
use ssa_auction::winner::assignment_from_ranking;
use ssa_setcover::BitSet;
use ssa_workload::Workload;

use crate::plan::{LevelSchedule, PlanDag, PlanProblem, PlannerMode, SharedPlanner};
use crate::topk::{KList, ScoredAd, ScoredTopKOp};

use super::super::{AuctionOutcome, EngineMetrics};
use super::{PhraseResolver, RoundContext};
use ssa_auction::money::Money;

/// Shared top-k aggregation over a (possibly strict) subset of the
/// workload's phrases, compiled once at engine construction. Requires
/// every bound phrase to be separable: leaves score each advertiser by
/// its *base* factor, which is only that phrase's `c_i^q` when the factor
/// is phrase-independent there.
pub struct PlanResolver {
    /// Offline shared-aggregation plan; `None` when every bound phrase's
    /// interest set is empty.
    plan: Option<PlanDag>,
    /// The plan's topological level schedule, computed once for
    /// level-parallel evaluation under `wd_threads > 1`.
    schedule: Option<LevelSchedule>,
    /// Per phrase, the plan query index it is bound to (`None` for
    /// phrases outside this resolver's subset and for empty-interest
    /// phrases, which resolve trivially).
    query_index: Vec<Option<usize>>,
}

impl PlanResolver {
    /// Compiles a plan over the phrases where `mask` is true (all phrases
    /// when `mask` is `None`), dropping empty-interest phrases from the
    /// problem (they cannot be bound in a plan and would pollute its cost
    /// model; they resolve trivially at round time).
    ///
    /// # Panics
    /// Panics if an included phrase has phrase-specific factors (the
    /// Section III setting), where top-k aggregates cannot be shared.
    pub fn new(workload: &Workload, planner: PlannerMode, mask: Option<&[bool]>) -> Self {
        let n = workload.advertiser_count();
        let m = workload.phrase_count();
        let rates = workload.search_rates();
        let mut query_index: Vec<Option<usize>> = vec![None; m];
        let mut queries: Vec<BitSet> = Vec::new();
        let mut query_rates: Vec<f64> = Vec::new();
        for (q, ids) in workload.interest.iter().enumerate() {
            if mask.is_some_and(|mask| !mask[q]) || ids.is_empty() {
                continue;
            }
            assert!(
                workload.phrase_is_separable(q),
                "SharedAggregation requires phrase-independent advertiser factors; \
                 use SharedSort or Hybrid for jittered workloads"
            );
            query_index[q] = Some(queries.len());
            queries.push(BitSet::from_elements(n, ids.iter().map(|a| a.index())));
            query_rates.push(rates[q]);
        }
        let plan = if queries.is_empty() {
            None
        } else {
            let problem = PlanProblem::new(n, queries, Some(query_rates));
            Some(SharedPlanner { mode: planner }.plan(&problem))
        };
        let schedule = plan.as_ref().map(PlanDag::level_schedule);
        PlanResolver {
            plan,
            schedule,
            query_index,
        }
    }

    /// The compiled plan, if any phrase was bound (an observation seam
    /// for cost assertions in tests and benches).
    pub fn dag(&self) -> Option<&PlanDag> {
        self.plan.as_ref()
    }
}

impl PhraseResolver for PlanResolver {
    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        let k = ctx.k;
        let Some(plan) = self.plan.as_ref() else {
            // Every bound phrase had an empty interest set (or there are
            // no advertisers at all): every auction resolves empty.
            return phrases
                .iter()
                .map(|&phrase| AuctionOutcome {
                    phrase,
                    assignment: assignment_from_ranking(&[], k),
                })
                .collect();
        };
        let op = ScoredTopKOp { k };
        // Leaves: singleton k-lists of each advertiser's current score.
        let leaf_values: Vec<KList<ScoredAd>> = ctx
            .workload
            .advertisers
            .iter()
            .enumerate()
            .map(|(i, adv)| {
                let score = Score::expected_value(effective_bids[i], adv.base_factor);
                KList::singleton(k, ScoredAd::new(adv.id, score))
            })
            .collect();
        let mut flags = vec![false; plan.query_count()];
        for &p in phrases {
            if let Some(qi) = self.query_index[p.index()] {
                flags[qi] = true;
            }
        }
        let (results, ops) = if ctx.wd_threads > 1 {
            let schedule = self.schedule.as_ref().expect("schedule computed with plan");
            plan.evaluate_parallel(&op, &leaf_values, &flags, schedule, ctx.wd_threads)
        } else {
            plan.evaluate(&op, &leaf_values, &flags)
        };
        metrics.aggregation_ops += ops as u64;
        phrases
            .iter()
            .map(|&phrase| {
                // A query node's variable set is exactly the phrase's
                // interest set, so every ranked advertiser is interested.
                let ranked: Vec<(AdvertiserId, Score)> = self.query_index[phrase.index()]
                    .and_then(|qi| results[qi].as_ref())
                    .map(|list| {
                        list.items()
                            .iter()
                            .map(|s| (s.advertiser, s.score))
                            .collect()
                    })
                    .unwrap_or_default();
                AuctionOutcome {
                    phrase,
                    assignment: assignment_from_ranking(&ranked, k),
                }
            })
            .collect()
    }
}
