//! The winner-determination resolver layer.
//!
//! Each of the paper's three strategies — the per-phrase unshared scan,
//! the Section II shared top-k aggregation plan, and the Section III
//! shared merge-sort + Threshold Algorithm — lives in its own resolver
//! behind the common [`PhraseResolver`] trait. A resolver owns *all* of
//! its persistent cross-round state (the compiled plan DAG and its level
//! schedule, the persistent merge network and TA scratch pools); the
//! engine owns only the round loop, budgets, and settlement.
//!
//! Resolvers are compiled over an explicit *phrase subset*, which is what
//! makes `SharingStrategy::Hybrid` possible: separable phrases compile
//! into one aggregation plan, the rest into one sort network, and each
//! round the engine routes every occurring phrase to the resolver that
//! owns it.

mod plan;
mod sort;
mod unshared;

pub use plan::PlanResolver;
pub use sort::SortResolver;
pub use unshared::UnsharedResolver;

use std::time::Instant;

use ssa_auction::ids::PhraseId;
use ssa_auction::money::Money;
use ssa_workload::Workload;

use crate::budget::BudgetContext;

use super::{AuctionOutcome, BudgetPolicy, EngineConfig, EngineMetrics, SharingStrategy};

/// Per-round context handed to every resolver call: the workload, the
/// round's participation counts, the executor knobs, and a budget-state
/// accessor (used by the unshared bounds path to refine lazily). Borrowed
/// from disjoint engine fields so resolvers can hold `&mut` state at the
/// same time.
pub struct RoundContext<'a> {
    /// The workload under simulation.
    pub workload: &'a Workload,
    /// Slots per auction (`slot_factors.len()`).
    pub k: usize,
    /// Worker threads for the resolver's parallel stages.
    pub wd_threads: usize,
    /// The engine's budget enforcement policy.
    pub budget_policy: BudgetPolicy,
    /// Per-advertiser auction participation count this round.
    pub m_i: &'a [u64],
    /// Budget state of advertiser `i` participating in `m` auctions, as
    /// the engine's throttler sees it.
    pub budgets: &'a (dyn Fn(usize, u64) -> BudgetContext + Sync),
}

/// One winner-determination path. `prepare` runs once per round before
/// any phrase is resolved (the sort resolver refreshes its persistent
/// network there); `resolve` turns a batch of occurring phrases into
/// auction outcomes, in the same phrase order.
///
/// `effective_bids` is mutable because the unshared bounds path computes
/// exact throttled bids only for ranked winners and backfills them for
/// pricing; the shared resolvers treat it as read-only.
pub trait PhraseResolver {
    /// Round preamble; default is a no-op.
    fn prepare(
        &mut self,
        _ctx: &RoundContext<'_>,
        _effective_bids: &[Money],
        _metrics: &mut EngineMetrics,
    ) {
    }

    /// Resolves `phrases` (ascending, a subset of the round's occurring
    /// phrases) into one outcome each.
    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome>;
}

/// The strategy's resolver set: one resolver for the single-strategy
/// engines, a routed pair for [`SharingStrategy::Hybrid`].
pub(crate) enum Resolvers {
    Unshared(UnsharedResolver),
    Plan(PlanResolver),
    Sort(SortResolver),
    Hybrid {
        plan: PlanResolver,
        sort: SortResolver,
        /// Per phrase: `true` routes to the plan, `false` to the sort
        /// network. Fixed at construction (separability is a workload
        /// property, not a round property).
        plan_route: Vec<bool>,
    },
}

impl Resolvers {
    /// Builds the strategy's resolvers, compiling their offline plans
    /// over the phrase subsets they own.
    pub(super) fn for_strategy(workload: &Workload, config: &EngineConfig) -> Self {
        match config.sharing {
            SharingStrategy::Unshared => Resolvers::Unshared(UnsharedResolver),
            SharingStrategy::SharedAggregation => {
                Resolvers::Plan(PlanResolver::new(workload, config.planner, None))
            }
            SharingStrategy::SharedSort => {
                Resolvers::Sort(SortResolver::new(workload, None, config.wd_threads))
            }
            SharingStrategy::Hybrid => {
                let plan_route: Vec<bool> = (0..workload.phrase_count())
                    .map(|q| workload.phrase_is_separable(q))
                    .collect();
                let sort_route: Vec<bool> = plan_route.iter().map(|&r| !r).collect();
                Resolvers::Hybrid {
                    plan: PlanResolver::new(workload, config.planner, Some(&plan_route)),
                    sort: SortResolver::new(workload, Some(&sort_route), config.wd_threads),
                    plan_route,
                }
            }
        }
    }

    /// The plan resolver, when the strategy has one (test seam).
    #[cfg(test)]
    pub(super) fn plan(&self) -> Option<&PlanResolver> {
        match self {
            Resolvers::Plan(plan) | Resolvers::Hybrid { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The sort resolver, when the strategy has one.
    pub(super) fn sort(&self) -> Option<&SortResolver> {
        match self {
            Resolvers::Sort(sort) | Resolvers::Hybrid { sort, .. } => Some(sort),
            _ => None,
        }
    }

    /// Stage 2 of one round: routes every occurring phrase to its
    /// resolver and merges the outcomes back into occurrence order,
    /// accounting routed-phrase counts and per-path wall-clock.
    pub(super) fn resolve_round(
        &mut self,
        ctx: &RoundContext<'_>,
        occurring: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        match self {
            Resolvers::Unshared(resolver) => {
                metrics.phrases_routed_unshared += occurring.len() as u64;
                let started = Instant::now();
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_unshared_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Plan(resolver) => {
                metrics.phrases_routed_plan += occurring.len() as u64;
                let started = Instant::now();
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_plan_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Sort(resolver) => {
                metrics.phrases_routed_sort += occurring.len() as u64;
                let started = Instant::now();
                resolver.prepare(ctx, effective_bids, metrics);
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_sort_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Hybrid {
                plan,
                sort,
                plan_route,
            } => {
                let mut plan_phrases = Vec::new();
                let mut sort_phrases = Vec::new();
                for &p in occurring {
                    if plan_route[p.index()] {
                        plan_phrases.push(p);
                    } else {
                        sort_phrases.push(p);
                    }
                }
                metrics.phrases_routed_plan += plan_phrases.len() as u64;
                metrics.phrases_routed_sort += sort_phrases.len() as u64;

                // The sort network refreshes every round — even when no
                // sort phrase occurs — so its dirty-cone state tracks the
                // bid stream exactly as a pure `SharedSort` engine's
                // does.
                let started = Instant::now();
                sort.prepare(ctx, effective_bids, metrics);
                let sort_out = sort.resolve(ctx, &sort_phrases, effective_bids, metrics);
                metrics.wd_sort_nanos += started.elapsed().as_nanos();

                let started = Instant::now();
                let plan_out = plan.resolve(ctx, &plan_phrases, effective_bids, metrics);
                metrics.wd_plan_nanos += started.elapsed().as_nanos();

                // Both outputs follow their input order, which are
                // subsequences of `occurring`; zip them back together.
                let mut plan_out = plan_out.into_iter();
                let mut sort_out = sort_out.into_iter();
                occurring
                    .iter()
                    .map(|&p| {
                        if plan_route[p.index()] {
                            plan_out.next().expect("one outcome per plan phrase")
                        } else {
                            sort_out.next().expect("one outcome per sort phrase")
                        }
                    })
                    .collect()
            }
        }
    }
}
