//! The winner-determination resolver layer.
//!
//! Each of the paper's three strategies — the per-phrase unshared scan,
//! the Section II shared top-k aggregation plan, and the Section III
//! shared merge-sort + Threshold Algorithm — lives in its own resolver
//! behind the common [`PhraseResolver`] trait. A resolver owns *all* of
//! its persistent cross-round state (the compiled plan DAG and its level
//! schedule, the persistent merge network and TA scratch pools); the
//! engine owns only the round loop, budgets, and settlement.
//!
//! Resolvers are compiled over an explicit *phrase subset*, which is what
//! makes `SharingStrategy::Hybrid` possible: separable phrases compile
//! into one aggregation plan, the rest into one sort network, and each
//! round the engine routes every occurring phrase to the resolver that
//! owns it. Under `RoutingMode::Adaptive` the per-phrase route is not a
//! fixed separability predicate but a [`Router`] decision: seeded from
//! the paper's probabilistic cost models and refined online from measured
//! per-path wall-clock, with phrases migrating between the resolvers at
//! round boundaries.

mod plan;
mod router;
mod sort;
mod unshared;

pub use plan::PlanResolver;
pub use sort::SortResolver;
pub use unshared::{scan_top_k, UnsharedResolver};

pub(crate) use router::Router;

use std::time::Instant;

use ssa_auction::ids::PhraseId;
use ssa_auction::money::Money;
use ssa_workload::Workload;

use crate::budget::BudgetContext;

use super::{
    AuctionOutcome, BudgetPolicy, EngineConfig, EngineMetrics, RoutingMode, SharingStrategy,
};

/// Per-round context handed to every resolver call: the workload, the
/// round's participation counts, the executor knobs, and a budget-state
/// accessor (used by the unshared bounds path to refine lazily). Borrowed
/// from disjoint engine fields so resolvers can hold `&mut` state at the
/// same time.
pub struct RoundContext<'a> {
    /// The workload under simulation.
    pub workload: &'a Workload,
    /// Slots per auction (`slot_factors.len()`).
    pub k: usize,
    /// Worker threads for the resolver's parallel stages.
    pub wd_threads: usize,
    /// The engine's budget enforcement policy.
    pub budget_policy: BudgetPolicy,
    /// Per-advertiser auction participation count this round.
    pub m_i: &'a [u64],
    /// Budget state of advertiser `i` participating in `m` auctions, as
    /// the engine's throttler sees it.
    pub budgets: &'a (dyn Fn(usize, u64) -> BudgetContext + Sync),
}

/// One winner-determination path. `prepare` runs once per round before
/// any phrase is resolved (the sort resolver refreshes its persistent
/// network there); `resolve` turns a batch of occurring phrases into
/// auction outcomes, in the same phrase order.
///
/// `effective_bids` is mutable because the unshared bounds path computes
/// exact throttled bids only for ranked winners and backfills them for
/// pricing; the shared resolvers treat it as read-only.
pub trait PhraseResolver {
    /// Round preamble; default is a no-op.
    fn prepare(
        &mut self,
        _ctx: &RoundContext<'_>,
        _effective_bids: &[Money],
        _metrics: &mut EngineMetrics,
    ) {
    }

    /// Resolves `phrases` (ascending, a subset of the round's occurring
    /// phrases) into one outcome each.
    fn resolve(
        &mut self,
        ctx: &RoundContext<'_>,
        phrases: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome>;
}

/// The strategy's resolver set: one resolver for the single-strategy
/// engines, a routed pair for [`SharingStrategy::Hybrid`].
#[allow(clippy::large_enum_variant)] // exactly one per Engine, never collected
pub(crate) enum Resolvers {
    Unshared(UnsharedResolver),
    Plan(PlanResolver),
    Sort(SortResolver),
    Hybrid {
        plan: PlanResolver,
        sort: SortResolver,
        /// Who owns each phrase: the static separability predicate, or
        /// the adaptive cost-model router with online migration.
        router: Router,
        /// Reusable per-round partition buffers (hoisted so steady-state
        /// rounds allocate nothing).
        plan_phrases: Vec<PhraseId>,
        sort_phrases: Vec<PhraseId>,
        /// Consecutive occupied round boundaries without a migration.
        /// Reaching [`COMPACT_AFTER_STABLE`] triggers the steady-state
        /// sort-network compaction.
        stable_boundaries: u32,
        /// The phrase subset this resolver pair owns, when it was built
        /// for an execution shard ([`Resolvers::for_shard`]); `None`
        /// means the whole workload. Sort-network rebuilds must stay
        /// inside this subset or a shard would absorb its neighbours'
        /// phrases.
        subset: Option<Vec<bool>>,
    },
}

/// Occupied round boundaries the adaptive route must hold still before
/// the sort resolver is recompiled over exactly the sort-routed subset.
///
/// The adaptive engine compiles its sort network over *all* phrases so
/// cold-start migration is a counter flip, but that generality has a
/// standing cost: under generalist-heavy interest sets every internal
/// node serves at least one sort-routed phrase, so even with inactive
/// leaves deferred the live cones span the full-set arena — measurably
/// slower (~5% wall-clock) than a subset-compiled network doing
/// bit-identical work, purely from cache footprint. Once the router has
/// converged, that insurance is no longer worth carrying: the network is
/// rebuilt over the routed subset, making its shape — and its locality —
/// identical to a statically compiled engine's. Migrations arriving
/// after a compaction still work; one that targets a phrase the compact
/// network dropped forces a rebuild over the widened subset instead of
/// the usual counter flip.
///
/// Strictly above `EVAC_STREAK` (4): group evacuation fires on its
/// fourth consecutive favourable boundary, so a route heading for
/// evacuation migrates — and resets this counter — before compaction can
/// freeze the pre-evacuation subset in.
const COMPACT_AFTER_STABLE: u32 = 6;

/// Recompiles `sort` over exactly the route's sort-routed subset and
/// re-arms its deferral counters. The persistent network rebuilds from
/// scratch on the next occupied sort round (an all-dirty refresh);
/// outcomes are unaffected because merge order is bid-deterministic
/// regardless of network shape.
pub(super) fn rebuild_sort(
    sort: &mut SortResolver,
    workload: &Workload,
    plan_route: &[bool],
    subset: Option<&[bool]>,
) {
    let mask: Vec<bool> = plan_route
        .iter()
        .enumerate()
        .map(|(q, &to_plan)| !to_plan && subset.is_none_or(|s| s[q]))
        .collect();
    *sort = SortResolver::new(workload, Some(&mask), sort.threads());
    sort.defer_inactive_leaves(plan_route);
}

impl Resolvers {
    /// Builds the strategy's resolvers, compiling their offline plans
    /// over the phrase subsets they own.
    pub(super) fn for_strategy(workload: &Workload, config: &EngineConfig) -> Self {
        match config.sharing {
            SharingStrategy::Unshared => Resolvers::Unshared(UnsharedResolver),
            SharingStrategy::SharedAggregation => {
                Resolvers::Plan(PlanResolver::new(workload, config.planner, None))
            }
            SharingStrategy::SharedSort => {
                Resolvers::Sort(SortResolver::new(workload, None, config.wd_threads))
            }
            SharingStrategy::Hybrid => Self::hybrid(workload, config, None, config.wd_threads),
        }
    }

    /// Builds one execution shard's resolvers: the same strategy as the
    /// engine's, compiled over exactly the shard's phrase `subset`, with
    /// intra-resolver parallelism pinned to one thread — under sharded
    /// execution the shard is the unit of parallelism, and nested worker
    /// pools would oversubscribe the executor's own pool.
    pub(super) fn for_shard(workload: &Workload, config: &EngineConfig, subset: &[bool]) -> Self {
        match config.sharing {
            SharingStrategy::Unshared => Resolvers::Unshared(UnsharedResolver),
            SharingStrategy::SharedAggregation => {
                Resolvers::Plan(PlanResolver::new(workload, config.planner, Some(subset)))
            }
            SharingStrategy::SharedSort => {
                Resolvers::Sort(SortResolver::new(workload, Some(subset), 1))
            }
            SharingStrategy::Hybrid => Self::hybrid(workload, config, Some(subset), 1),
        }
    }

    /// The Hybrid resolver pair. Static routing compiles each resolver
    /// over exactly its separability subset. Adaptive routing compiles
    /// the plan over the separable subset but the sort network over *all*
    /// phrases (with refresh deferred to sort-routed leaves), so a later
    /// migration in either direction is a bookkeeping update — a
    /// search-rate toggle plan-side, a leaf activation sort-side — never
    /// a recompile.
    ///
    /// With `subset` set (sharded execution) every compiled set is
    /// intersected with the shard's phrases and the cost models see only
    /// the shard's search-rate mass, so each shard routes independently
    /// over structures that never overlap a neighbour's.
    fn hybrid(
        workload: &Workload,
        config: &EngineConfig,
        subset: Option<&[bool]>,
        threads: usize,
    ) -> Self {
        let m = workload.phrase_count();
        let in_subset = |q: usize| subset.is_none_or(|s| s[q]);
        let separable: Vec<bool> = (0..m)
            .map(|q| in_subset(q) && workload.phrase_is_separable(q))
            .collect();
        let mut plan = PlanResolver::new(workload, config.planner, Some(&separable));
        match config.routing {
            RoutingMode::Static => {
                let sort_route: Vec<bool> = separable
                    .iter()
                    .enumerate()
                    .map(|(q, &r)| in_subset(q) && !r)
                    .collect();
                Resolvers::Hybrid {
                    plan,
                    sort: SortResolver::new(workload, Some(&sort_route), threads),
                    router: Router::fixed(separable),
                    plan_phrases: Vec::new(),
                    sort_phrases: Vec::new(),
                    stable_boundaries: 0,
                    subset: subset.map(<[bool]>::to_vec),
                }
            }
            RoutingMode::Adaptive => {
                let rates: Vec<f64> = workload
                    .search_rates()
                    .iter()
                    .enumerate()
                    .map(|(q, &sr)| if in_subset(q) { sr } else { 0.0 })
                    .collect();
                let mut sort = SortResolver::new(workload, subset, threads);
                // Marginals in common item units: one plan node is a
                // pairwise top-k aggregation (~2k item ops), one sort
                // unit an item sent upstream; the plan's fixed term is
                // its O(n) per-round leaf sweep.
                let items_per_node = 2.0 * config.slot_factors.len().max(1) as f64;
                let plan_marginal: Vec<f64> = plan
                    .phrase_marginals()
                    .iter()
                    .map(|&nodes| nodes * items_per_node)
                    .collect();
                // The merge model's marginal is the upstream *traffic* a
                // phrase adds, which collapses to zero at saturated
                // search rates (a shared cone carries its items whether
                // or not any one subscriber occurs). The router therefore
                // also gets group terms — the network's expected items
                // over the sort-routed set, and the extra items full
                // absorption of the plan set would add — plus a ~k-item
                // Threshold-Algorithm scan per occurrence, so both its
                // calibration weights and its evacuation pricing stay
                // non-degenerate where the marginals vanish.
                let sort_marginal: Vec<f64> = sort.phrase_marginals(&rates);
                let eligible: Vec<bool> = (0..m).map(|q| plan.is_bound(q)).collect();
                let sort_total = sort.model_items(&rates);
                let masked_by = |on_plan: &[bool]| -> Vec<f64> {
                    rates
                        .iter()
                        .zip(on_plan)
                        .map(|(&sr, &to_plan)| if to_plan { 0.0 } else { sr })
                        .collect()
                };
                let sort_fixed = sort.model_items(&masked_by(&eligible));
                let ta_items = config.slot_factors.len().max(1) as f64;
                let mut router = Router::adaptive(
                    eligible,
                    plan_marginal,
                    sort_marginal,
                    rates.clone(),
                    workload.advertiser_count() as f64,
                    sort_fixed,
                    sort_total - sort_fixed,
                    ta_items,
                    config.route_frozen,
                );
                // The seed may already have migrated phrases; refresh the
                // group terms for the route it actually chose.
                let sort_fixed = sort.model_items(&masked_by(router.route()));
                router.set_sort_model(sort_fixed, sort_total - sort_fixed);
                sort.defer_inactive_leaves(router.route());
                for (q, &to_plan) in router.route().iter().enumerate() {
                    if !to_plan {
                        plan.set_phrase_routed(q, false);
                    }
                }
                Resolvers::Hybrid {
                    plan,
                    sort,
                    router,
                    plan_phrases: Vec::new(),
                    sort_phrases: Vec::new(),
                    stable_boundaries: 0,
                    subset: subset.map(<[bool]>::to_vec),
                }
            }
        }
    }

    /// The plan resolver, when the strategy has one (test seam).
    #[cfg(test)]
    pub(super) fn plan(&self) -> Option<&PlanResolver> {
        match self {
            Resolvers::Plan(plan) | Resolvers::Hybrid { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The sort resolver, when the strategy has one.
    pub(super) fn sort(&self) -> Option<&SortResolver> {
        match self {
            Resolvers::Sort(sort) | Resolvers::Hybrid { sort, .. } => Some(sort),
            _ => None,
        }
    }

    /// Heap footprint of the resolver set's persistent state (plan
    /// arenas, merge-network pools + caches) in bytes, for the
    /// memory-scaling gate.
    pub(super) fn heap_bytes(&mut self) -> usize {
        match self {
            Resolvers::Unshared(_) => 0,
            Resolvers::Plan(plan) => plan.heap_bytes(),
            Resolvers::Sort(sort) => sort.heap_bytes(),
            Resolvers::Hybrid { plan, sort, .. } => plan.heap_bytes() + sort.heap_bytes(),
        }
    }

    /// Stage 2 of one round: routes every occurring phrase to its
    /// resolver and merges the outcomes back into occurrence order,
    /// accounting routed-phrase counts and per-path wall-clock.
    pub(super) fn resolve_round(
        &mut self,
        ctx: &RoundContext<'_>,
        occurring: &[PhraseId],
        effective_bids: &mut [Money],
        metrics: &mut EngineMetrics,
    ) -> Vec<AuctionOutcome> {
        match self {
            Resolvers::Unshared(resolver) => {
                metrics.phrases_routed_unshared += occurring.len() as u64;
                let started = Instant::now();
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_unshared_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Plan(resolver) => {
                metrics.phrases_routed_plan += occurring.len() as u64;
                let started = Instant::now();
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_plan_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Sort(resolver) => {
                metrics.phrases_routed_sort += occurring.len() as u64;
                // `prepare` (network refresh) times itself into
                // `sort_refresh_nanos`; `wd_sort_nanos` is resolve only.
                resolver.prepare(ctx, effective_bids, metrics);
                let started = Instant::now();
                let out = resolver.resolve(ctx, occurring, effective_bids, metrics);
                metrics.wd_sort_nanos += started.elapsed().as_nanos();
                out
            }
            Resolvers::Hybrid {
                plan,
                sort,
                router,
                plan_phrases,
                sort_phrases,
                stable_boundaries,
                subset,
            } => {
                plan_phrases.clear();
                sort_phrases.clear();
                let route = router.route();
                for &p in occurring {
                    if route[p.index()] {
                        plan_phrases.push(p);
                    } else {
                        sort_phrases.push(p);
                    }
                }
                metrics.phrases_routed_plan += plan_phrases.len() as u64;
                metrics.phrases_routed_sort += sort_phrases.len() as u64;

                // Static routing refreshes the sort network every round —
                // even when no sort phrase occurs — so its dirty-cone
                // state tracks the bid stream exactly as a pure
                // `SharedSort` engine's does. Adaptive routing instead
                // defers stale leaves to the next occupied round (the
                // resolver skips inactive leaves when diffing), so an
                // empty sort subset costs nothing.
                if !router.is_adaptive() || !sort_phrases.is_empty() {
                    sort.prepare(ctx, effective_bids, metrics);
                }
                let sort_out = if sort_phrases.is_empty() {
                    Vec::new()
                } else {
                    let started = Instant::now();
                    let out = sort.resolve(ctx, sort_phrases, effective_bids, metrics);
                    let nanos = started.elapsed().as_nanos();
                    metrics.wd_sort_nanos += nanos;
                    router.observe_sort(nanos, sort_phrases);
                    out
                };
                let plan_out = if plan_phrases.is_empty() {
                    Vec::new()
                } else {
                    let started = Instant::now();
                    let out = plan.resolve(ctx, plan_phrases, effective_bids, metrics);
                    let nanos = started.elapsed().as_nanos();
                    metrics.wd_plan_nanos += nanos;
                    router.observe_plan(nanos, plan_phrases);
                    out
                };

                // Both outputs follow their input order, which are
                // subsequences of `occurring`; zip them back together.
                let mut plan_out = plan_out.into_iter();
                let mut sort_out = sort_out.into_iter();
                let route = router.route();
                let outcomes: Vec<AuctionOutcome> = occurring
                    .iter()
                    .map(|&p| {
                        if route[p.index()] {
                            plan_out.next().expect("one outcome per plan phrase")
                        } else {
                            sort_out.next().expect("one outcome per sort phrase")
                        }
                    })
                    .collect();

                // Round boundary: migrate phrases whose calibrated cost
                // on the other path clears the hysteresis margin. Each
                // move is incremental — a search-rate toggle in the
                // plan's cost tracker, an active-leaf count flip in the
                // sort network (its stale cone repairs on the next
                // refresh).
                if !occurring.is_empty() {
                    let mut migrated = false;
                    let mut outgrew_network = false;
                    for &(q, to_plan) in router.rebalance() {
                        plan.set_phrase_routed(q, to_plan);
                        if !to_plan && !sort.serves_phrase(q) {
                            // The phrase enters a network that was
                            // compacted past it; there is no leaf to
                            // re-activate — rebuild below.
                            outgrew_network = true;
                        } else {
                            sort.set_phrase_active(q, !to_plan);
                        }
                        metrics.router_migrations += 1;
                        migrated = true;
                    }
                    // The sort path's group cost depends on which phrases
                    // the network actively serves, so a migration
                    // invalidates it; re-derive both terms from the model
                    // (O(network), only on boundaries that moved
                    // something).
                    if migrated {
                        *stable_boundaries = 0;
                        if outgrew_network {
                            rebuild_sort(sort, ctx.workload, router.route(), subset.as_deref());
                            metrics.router_sort_rebuilds += 1;
                        }
                        let masked: Vec<f64> = router
                            .search_rates()
                            .iter()
                            .zip(router.route())
                            .map(|(&sr, &to_plan)| if to_plan { 0.0 } else { sr })
                            .collect();
                        let sort_fixed = sort.model_items(&masked);
                        let sort_total = sort.model_items(router.search_rates());
                        router.set_sort_model(sort_fixed, sort_total - sort_fixed);
                    } else if router.is_adaptive() {
                        // Steady route: once it has held still long
                        // enough, shed the full-set network's footprint
                        // by recompiling over exactly the sort-routed
                        // subset (see [`COMPACT_AFTER_STABLE`]).
                        *stable_boundaries = stable_boundaries.saturating_add(1);
                        if *stable_boundaries == COMPACT_AFTER_STABLE
                            && sort.compiled_beyond(router.route())
                        {
                            rebuild_sort(sort, ctx.workload, router.route(), subset.as_deref());
                            metrics.router_sort_rebuilds += 1;
                        }
                    }
                }
                outcomes
            }
        }
    }
}
