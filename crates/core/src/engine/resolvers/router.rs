//! The cost-model phrase router for `SharingStrategy::Hybrid`.
//!
//! The static hybrid routes every separable phrase to the aggregation
//! plan unconditionally, which pays the plan's per-round leaf sweep as a
//! fixed cost whether or not it wins — the 25%-separable regression in
//! `BENCH_hybrid_routing.json`. This router instead treats routing as a
//! cost-model decision, in three layers:
//!
//! 1. **Seed** — each plan-eligible phrase starts on the path with the
//!    smaller *marginal* expected cost: the Section II-B plan model
//!    (expected materialized nodes, scaled to item units by `2k`) against
//!    the Section III-B merge model (expected items sent upstream), both
//!    over the workload's search rates, plus the plan's `O(n)` leaf-sweep
//!    fixed cost amortized by occupancy probability. The seed walks
//!    downhill one move at a time until no move lowers the modeled total.
//! 2. **Calibrate** — each round's measured `resolve` wall-clock per path
//!    divides by that round's model-unit weight into an EWMA of ns per
//!    model unit. The model supplies the *shape* (per-phrase marginals);
//!    the measurements supply the *scale* (how expensive each path's unit
//!    really is on this machine).
//! 3. **Migrate** — at round boundaries, a phrase moves when its
//!    calibrated cost on the other path undercuts its current path by
//!    the hysteresis margin, rate-limited per boundary and per phrase
//!    (cooldown) so timing noise cannot thrash a phrase back and forth.
//!
//! Migration is incremental everywhere: the plan side is a search-rate
//! toggle through `PlanMaintainer`'s `IncrementalCost` (cone repair), the
//! sort side an active-leaf counter bump whose staleness the next
//! dirty-cone `MergeNetwork::refresh` repairs. No structure is rebuilt.

use ssa_auction::ids::PhraseId;

/// EWMA weight of the newest ns-per-unit observation.
const EWMA_ALPHA: f64 = 0.3;
/// A migration must save at least this fraction of the phrase's current
/// modeled cost.
const HYSTERESIS: f64 = 0.25;
/// Round boundaries a migrated phrase sits out before moving again.
const COOLDOWN_ROUNDS: u32 = 8;
/// Per-boundary cap on single-phrase migrations (the group evacuation of
/// the whole plan counts as one boundary's worth on its own).
const MAX_MIGRATIONS_PER_BOUNDARY: usize = 8;
/// Pre-calibration prior for the sort path's ns per item unit, relative
/// to the plan path's 1.0. A merge-network item op (heap pops, pointer
/// chasing through persistent nodes, TA threshold checks) costs several
/// times a plan item op (one comparison in a sequential leaf sweep or a
/// pairwise top-k merge over contiguous arrays); seeding with that skew
/// keeps the model-only route honest until real measurements land and
/// overwrite both scales.
const SORT_NS_PRIOR: f64 = 4.0;
/// Modeled fraction of the plan path's cost a seed-time evacuation must
/// save. The seed runs on priors alone, so wholesale evacuation before
/// any measurement demands a wide margin; the measured-cost rebalance
/// uses [`ONLINE_EVAC_MARGIN`] instead.
const SEED_EVAC_MARGIN: f64 = 0.2;
/// Measured fraction of the plan path's cost an online evacuation must
/// save. Lower than [`HYSTERESIS`]: the group move is the router's whole
/// answer to the 25%-separable regression (worth ~10–15%, which a 25%
/// bar would never clear), [`EVAC_STREAK`] supplies the noise protection
/// single moves get from their wider margin, and the absorption estimate
/// it is compared against is itself conservative (mean, not marginal,
/// per-occurrence sort cost) — where staying is right, measured `alt`
/// runs at ~2× `cur`, so a thin margin loses nothing.
const ONLINE_EVAC_MARGIN: f64 = 0.05;
/// Net boundaries of evidence the online group-evacuation condition
/// must accumulate before it fires: a boundary that clears the margin
/// adds one, a miss drains one (it does not reset the count — when the
/// true saving hovers just above the margin, timing noise produces
/// occasional misses, and demanding an unbroken run would starve a move
/// that is right on balance). Evacuation moves every plan-routed phrase
/// at once and the cooldown keeps them away for [`COOLDOWN_ROUNDS`], so
/// a single stalled round inflating `plan_ns` must not be able to
/// trigger it; single-phrase moves are bounded and cheap to undo, so
/// they keep acting on one boundary's evidence.
const EVAC_STREAK: u32 = 4;
/// Per-observation clamp: a new ns-per-unit sample may move at most this
/// factor away from the current estimate before blending. Shared-hardware
/// scheduling stalls produce isolated 2–5× spikes that are measurement
/// artifacts, not path cost; the clamp bounds how far one round can drag
/// the EWMA while leaving genuine drift to converge geometrically.
const OBS_CLAMP: f64 = 4.0;

/// Per-phrase route state for the Hybrid resolver pair: which path each
/// phrase is bound to, and (in adaptive mode) the cost model that decides
/// when a phrase should move.
pub(crate) struct Router {
    /// Per phrase: `true` routes to the plan, `false` to the sort
    /// network.
    route: Vec<bool>,
    /// Phrases allowed on the plan path (separable, non-empty interest).
    /// Non-eligible phrases are pinned to the sort network.
    eligible: Vec<bool>,
    /// Per phrase, marginal expected plan cost in item units
    /// (`2k ×` expected materialized nodes).
    plan_marginal: Vec<f64>,
    /// Per phrase, marginal expected merge cost in item units. At
    /// saturated search rates these collapse toward zero (a shared cone
    /// carries its items whether or not any one subscriber occurs), which
    /// is exactly why the group terms below exist.
    sort_marginal: Vec<f64>,
    /// Per phrase search rates `sr_q`.
    rates: Vec<f64>,
    /// The plan path's fixed per-occupied-round cost in item units (the
    /// `O(n)` leaf sweep `PlanResolver::resolve` pays whenever at least
    /// one plan-routed phrase occurs).
    plan_fixed: f64,
    /// Expected merge-network items per round over the *currently*
    /// sort-routed phrases (the Section III-B cost of the network
    /// restricted to them). This is the sort path's group cost — the
    /// calibration weight that keeps `sort_ns` an honest ns-per-item even
    /// though the per-phrase marginals vanish under sharing. Recomputed
    /// by the resolver layer whenever the route changes.
    sort_fixed: f64,
    /// Expected *extra* items per round if every plan-eligible phrase
    /// were absorbed into the sort network — the group-evacuation price
    /// the per-phrase marginal sum cannot see. Recomputed with
    /// `sort_fixed`.
    sort_absorb_extra: f64,
    /// Items one occurring phrase's Threshold-Algorithm scan consumes off
    /// its merged stream (~k), the per-occurrence floor under the
    /// vanishing marginals.
    ta_items: f64,
    /// EWMA ns per item unit, per path. The plan scale starts at 1.0 and
    /// the sort scale at [`SORT_NS_PRIOR`], so pre-calibration decisions
    /// reduce to the cost model with that machine-independent skew; each
    /// path's first real observation replaces its prior outright.
    plan_ns: f64,
    sort_ns: f64,
    /// EWMA of each path's *whole-round* measured resolve nanos and of
    /// the number of occurring phrases it served, kept alongside the
    /// per-item scales. The online group-evacuation decision prices both
    /// sides from these directly: under heavy sharing the structural
    /// model's absorption delta collapses to zero (every merge node
    /// already serves some sort-routed phrase), so the only honest price
    /// for absorbing a phrase is what serving one phrase on the sort path
    /// measurably costs.
    plan_round_ns: f64,
    plan_round_phrases: f64,
    sort_round_ns: f64,
    sort_round_phrases: f64,
    /// Whether each path has been measured at least once; migrations wait
    /// for both (the seed already encodes every model-only conclusion).
    plan_observed: bool,
    sort_observed: bool,
    /// Per phrase, boundaries left before it may migrate again.
    cooldown: Vec<u32>,
    /// Net boundaries of evidence the group-evacuation condition has
    /// accumulated (misses drain rather than reset; see [`EVAC_STREAK`]).
    evac_streak: u32,
    /// Reusable migration buffer handed back by [`Router::rebalance`].
    pending: Vec<(usize, bool)>,
    /// Reusable leave-one-out vacancy scratch for
    /// [`Router::best_single_move`]: prefix/suffix products of
    /// `(1 - sr)` over plan-routed phrases.
    vacancy_prefix: Vec<f64>,
    vacancy_suffix: Vec<f64>,
    /// False for the static separability route (no model, no migration).
    adaptive: bool,
    /// Pins an adaptive router to its seed route (the `route_frozen`
    /// engine-config escape hatch; forced migrations still apply).
    frozen: bool,
}

impl Router {
    /// The static route: separability decides once, nothing moves.
    pub(crate) fn fixed(route: Vec<bool>) -> Self {
        Router {
            route,
            eligible: Vec::new(),
            plan_marginal: Vec::new(),
            sort_marginal: Vec::new(),
            rates: Vec::new(),
            plan_fixed: 0.0,
            sort_fixed: 0.0,
            sort_absorb_extra: 0.0,
            ta_items: 0.0,
            plan_ns: 1.0,
            sort_ns: 1.0,
            plan_round_ns: 0.0,
            plan_round_phrases: 0.0,
            sort_round_ns: 0.0,
            sort_round_phrases: 0.0,
            plan_observed: false,
            sort_observed: false,
            cooldown: Vec::new(),
            evac_streak: 0,
            pending: Vec::new(),
            vacancy_prefix: Vec::new(),
            vacancy_suffix: Vec::new(),
            adaptive: false,
            frozen: true,
        }
    }

    /// Builds an adaptive router and seeds its route from the pure cost
    /// model (deterministic: no timing has been observed yet).
    /// `sort_fixed` and `sort_absorb_extra` describe the sort network at
    /// the *static* starting route (every eligible phrase on the plan);
    /// the caller refreshes them via [`Router::set_sort_model`] after the
    /// seed — and after any later migration — since both depend on which
    /// phrases the network is actively serving.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn adaptive(
        eligible: Vec<bool>,
        plan_marginal: Vec<f64>,
        sort_marginal: Vec<f64>,
        rates: Vec<f64>,
        plan_fixed: f64,
        sort_fixed: f64,
        sort_absorb_extra: f64,
        ta_items: f64,
        frozen: bool,
    ) -> Self {
        let m = eligible.len();
        let mut router = Router {
            route: eligible.clone(),
            eligible,
            plan_marginal,
            sort_marginal,
            rates,
            plan_fixed,
            sort_fixed,
            sort_absorb_extra,
            ta_items,
            plan_ns: 1.0,
            sort_ns: SORT_NS_PRIOR,
            plan_round_ns: 0.0,
            plan_round_phrases: 0.0,
            sort_round_ns: 0.0,
            sort_round_phrases: 0.0,
            plan_observed: false,
            sort_observed: false,
            cooldown: vec![0; m],
            evac_streak: 0,
            pending: Vec::new(),
            vacancy_prefix: Vec::new(),
            vacancy_suffix: Vec::new(),
            adaptive: true,
            frozen,
        };
        router.seed();
        router
    }

    /// Current route, indexed by phrase: `true` = plan, `false` = sort.
    pub(crate) fn route(&self) -> &[bool] {
        &self.route
    }

    /// The workload search rates the router models with (the resolver
    /// layer masks these by the current route when recomputing the sort
    /// network's group cost).
    pub(crate) fn search_rates(&self) -> &[f64] {
        &self.rates
    }

    /// Refreshes the sort path's group terms after the active phrase set
    /// changed: `sort_fixed` is the network's expected items per round
    /// over the currently sort-routed phrases, `sort_absorb_extra` the
    /// additional expected items if every plan-routed eligible phrase
    /// were absorbed as well.
    pub(crate) fn set_sort_model(&mut self, sort_fixed: f64, sort_absorb_extra: f64) {
        self.sort_fixed = sort_fixed;
        self.sort_absorb_extra = sort_absorb_extra;
    }

    pub(crate) fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Explicitly migrates a phrase (testing/operator seam); bypasses
    /// hysteresis and `frozen`, but not eligibility. Returns whether the
    /// route changed. The caller applies the same move to the resolvers.
    pub(crate) fn force_route(&mut self, q: usize, to_plan: bool) -> bool {
        if !self.adaptive || q >= self.route.len() {
            return false;
        }
        if to_plan && !self.eligible[q] {
            return false;
        }
        if self.route[q] == to_plan {
            return false;
        }
        self.route[q] = to_plan;
        self.cooldown[q] = COOLDOWN_ROUNDS;
        true
    }

    /// Seeds the route: start from the static assignment (every eligible
    /// phrase on the plan) and walk downhill on the modeled total until
    /// no single move — or evacuating the plan wholesale — helps.
    fn seed(&mut self) {
        let m = self.route.len();
        if self.seed_evacuation_saving(SEED_EVAC_MARGIN) > 0.0 {
            for route in &mut self.route {
                *route = false;
            }
        }
        for _ in 0..(2 * m + 4) {
            let Some((q, to_plan)) = self.best_single_move(0.0) else {
                break;
            };
            self.route[q] = to_plan;
        }
    }

    /// Records one round's plan-path `resolve` wall-clock against the
    /// model-unit weight of the phrases it served.
    pub(crate) fn observe_plan(&mut self, nanos: u128, phrases: &[PhraseId]) {
        if !self.adaptive {
            return;
        }
        let weight: f64 = self.plan_fixed
            + phrases
                .iter()
                .map(|p| self.plan_marginal[p.index()])
                .sum::<f64>();
        if weight <= f64::EPSILON {
            return;
        }
        let obs = nanos as f64 / weight;
        let raw = nanos as f64;
        if self.plan_observed {
            let clamped = obs.clamp(self.plan_ns / OBS_CLAMP, self.plan_ns * OBS_CLAMP);
            self.plan_ns = (1.0 - EWMA_ALPHA) * self.plan_ns + EWMA_ALPHA * clamped;
            let raw = raw.clamp(
                self.plan_round_ns / OBS_CLAMP,
                self.plan_round_ns * OBS_CLAMP,
            );
            self.plan_round_ns = (1.0 - EWMA_ALPHA) * self.plan_round_ns + EWMA_ALPHA * raw;
            self.plan_round_phrases =
                (1.0 - EWMA_ALPHA) * self.plan_round_phrases + EWMA_ALPHA * phrases.len() as f64;
        } else {
            self.plan_ns = obs;
            self.plan_round_ns = raw;
            self.plan_round_phrases = phrases.len() as f64;
        }
        self.plan_observed = true;
    }

    /// Records one round's sort-path `resolve` wall-clock (refresh
    /// excluded — `sort_refresh_nanos` tracks that separately, so the
    /// signal is not biased against the sort path). The weight is the
    /// network's expected items over the routed set plus the occurring
    /// phrases' TA scans — the group cost, not the marginal sum, so the
    /// resulting `sort_ns` prices an item honestly even when sharing
    /// drives every marginal to zero.
    pub(crate) fn observe_sort(&mut self, nanos: u128, phrases: &[PhraseId]) {
        if !self.adaptive {
            return;
        }
        let weight: f64 = self.sort_fixed + self.ta_items * phrases.len() as f64;
        if weight <= f64::EPSILON {
            return;
        }
        let obs = nanos as f64 / weight;
        let raw = nanos as f64;
        if self.sort_observed {
            let clamped = obs.clamp(self.sort_ns / OBS_CLAMP, self.sort_ns * OBS_CLAMP);
            self.sort_ns = (1.0 - EWMA_ALPHA) * self.sort_ns + EWMA_ALPHA * clamped;
            let raw = raw.clamp(
                self.sort_round_ns / OBS_CLAMP,
                self.sort_round_ns * OBS_CLAMP,
            );
            self.sort_round_ns = (1.0 - EWMA_ALPHA) * self.sort_round_ns + EWMA_ALPHA * raw;
            self.sort_round_phrases =
                (1.0 - EWMA_ALPHA) * self.sort_round_phrases + EWMA_ALPHA * phrases.len() as f64;
        } else {
            self.sort_ns = obs;
            self.sort_round_ns = raw;
            self.sort_round_phrases = phrases.len() as f64;
        }
        self.sort_observed = true;
    }

    /// Round-boundary migration pass. Applies the winning moves to the
    /// route and returns them (`(phrase, to_plan)`) for the caller to
    /// mirror into the resolvers. Empty until both paths have been
    /// measured (the seed already encodes the model-only optimum), when
    /// frozen, and whenever no move clears the hysteresis margin.
    pub(crate) fn rebalance(&mut self) -> &[(usize, bool)] {
        self.pending.clear();
        if !self.adaptive || self.frozen || !(self.plan_observed && self.sort_observed) {
            return &self.pending;
        }
        for c in &mut self.cooldown {
            *c = c.saturating_sub(1);
        }
        // Evacuating the plan wholesale drops its fixed per-round sweep —
        // the move single-phrase deltas cannot see when occupancy stays
        // saturated (e.g. every search rate at 1.0). It is also the one
        // move noise must never fire: [`EVAC_STREAK`] net boundaries of
        // sustained evidence are required.
        if self.measured_evacuation_saving(ONLINE_EVAC_MARGIN) > 0.0 {
            self.evac_streak += 1;
            if self.evac_streak >= EVAC_STREAK {
                self.evac_streak = 0;
                for q in 0..self.route.len() {
                    if self.route[q] {
                        self.route[q] = false;
                        self.cooldown[q] = COOLDOWN_ROUNDS;
                        self.pending.push((q, false));
                    }
                }
                return &self.pending;
            }
        } else {
            self.evac_streak = self.evac_streak.saturating_sub(1);
        }
        while self.pending.len() < MAX_MIGRATIONS_PER_BOUNDARY {
            let Some((q, to_plan)) = self.best_single_move(HYSTERESIS) else {
                break;
            };
            self.route[q] = to_plan;
            self.cooldown[q] = COOLDOWN_ROUNDS;
            self.pending.push((q, to_plan));
        }
        &self.pending
    }

    /// `Π (1 − sr_q)` over plan-routed phrases, optionally excluding one.
    fn plan_vacancy(&self, exclude: usize) -> f64 {
        let mut none = 1.0;
        for q in 0..self.route.len() {
            if self.route[q] && q != exclude {
                none *= 1.0 - self.rates[q];
            }
        }
        none
    }

    /// Calibrated cost of serving `q` on the plan, charging it the fixed
    /// sweep's occupancy increase `p_any(with q) − p_any(without q)`.
    fn plan_cost(&self, q: usize, occupancy_delta: f64) -> f64 {
        self.plan_ns * (self.plan_marginal[q] + self.plan_fixed * occupancy_delta)
    }

    /// Calibrated cost of serving `q` on the sort path: its marginal
    /// upstream traffic plus its expected TA scan.
    fn sort_cost(&self, q: usize) -> f64 {
        self.sort_ns * (self.sort_marginal[q] + self.rates[q] * self.ta_items)
    }

    /// Seed-time saving from moving every plan-routed phrase to the sort
    /// path, priced from the structural model alone (nothing has been
    /// measured yet): the plan side's whole modeled cost (fixed sweep
    /// plus marginals) against the network's modeled absorption traffic
    /// plus the movers' TA scans.
    fn seed_evacuation_saving(&self, theta: f64) -> f64 {
        let occupancy = 1.0 - self.plan_vacancy(usize::MAX);
        if occupancy <= 0.0 {
            return 0.0;
        }
        let mut plan_total = self.plan_fixed * occupancy;
        let mut mover_scans = 0.0;
        for q in 0..self.route.len() {
            if self.route[q] {
                plan_total += self.plan_marginal[q];
                mover_scans += self.rates[q] * self.ta_items;
            }
        }
        let cur = self.plan_ns * plan_total;
        let alt = self.sort_ns * (self.sort_absorb_extra + mover_scans);
        cur - alt - theta * cur
    }

    /// Online saving from evacuating the plan wholesale, priced from the
    /// *measured* per-round path costs rather than the structural model.
    /// Under heavy sharing the model cannot price absorption at all —
    /// when every merge node already serves some sort-routed phrase, the
    /// masked-rate expected-cost delta is exactly zero — so the modeled
    /// `alt` says evacuation is nearly free even where the static hybrid
    /// measurably wins. Instead: `cur` is the plan path's measured EWMA
    /// round cost, and each absorbed occurrence is charged the sort
    /// path's measured *mean* cost per occurring phrase. The mean
    /// overstates the marginal (it amortizes the shared network's fixed
    /// traffic over the phrases riding it), which biases the decision
    /// toward staying — the plan path only evacuates when its fixed
    /// sweep is so poorly amortized that it loses even to that
    /// overestimate, which is precisely the low-occupancy regime the
    /// group move exists for.
    fn measured_evacuation_saving(&self, theta: f64) -> f64 {
        if self.sort_round_phrases < 1.0 {
            return 0.0;
        }
        let mut mover_rate = 0.0;
        let mut occupied = false;
        for q in 0..self.route.len() {
            if self.route[q] {
                if self.cooldown.get(q).is_some_and(|&c| c > 0) {
                    return 0.0;
                }
                occupied = true;
                mover_rate += self.rates[q];
            }
        }
        if !occupied {
            return 0.0;
        }
        let cur = self.plan_round_ns;
        let alt = mover_rate * self.sort_round_ns / self.sort_round_phrases;
        cur - alt - theta * cur
    }

    /// The single migration with the largest modeled saving, or `None`
    /// when nothing clears `theta × current cost`.
    fn best_single_move(&mut self, theta: f64) -> Option<(usize, bool)> {
        let m = self.route.len();
        // Leave-one-out vacancies from one prefix and one suffix product
        // sweep: `plan_vacancy(q) = prefix[q] * suffix[q + 1]`. The
        // direct per-candidate product loop made every boundary O(m^2) —
        // at a few hundred phrases that burned tens of microseconds per
        // round on a scan that usually proposes nothing.
        self.vacancy_prefix.clear();
        self.vacancy_suffix.clear();
        self.vacancy_prefix.resize(m + 1, 1.0);
        self.vacancy_suffix.resize(m + 1, 1.0);
        for q in 0..m {
            let f = if self.route[q] {
                1.0 - self.rates[q]
            } else {
                1.0
            };
            self.vacancy_prefix[q + 1] = self.vacancy_prefix[q] * f;
        }
        for q in (0..m).rev() {
            let f = if self.route[q] {
                1.0 - self.rates[q]
            } else {
                1.0
            };
            self.vacancy_suffix[q] = self.vacancy_suffix[q + 1] * f;
        }
        let vacancy = self.vacancy_prefix[m];
        let p_any = 1.0 - vacancy;
        let mut best: Option<(usize, bool, f64)> = None;
        for q in 0..m {
            if !self.eligible[q] || self.cooldown.get(q).is_some_and(|&c| c > 0) {
                continue;
            }
            let (to_plan, cur, alt) = if self.route[q] {
                let p_any_without = 1.0 - self.vacancy_prefix[q] * self.vacancy_suffix[q + 1];
                let cur = self.plan_cost(q, p_any - p_any_without);
                (false, cur, self.sort_cost(q))
            } else {
                let p_any_with = 1.0 - vacancy * (1.0 - self.rates[q]);
                let alt = self.plan_cost(q, p_any_with - p_any);
                (true, self.sort_cost(q), alt)
            };
            let saving = cur - alt - theta * cur;
            if saving > 0.0 && best.as_ref().is_none_or(|&(_, _, s)| saving > s) {
                best = Some((q, to_plan, saving));
            }
        }
        best.map(|(q, to_plan, _)| (q, to_plan))
    }
}
