//! Sharded, pipelined round execution.
//!
//! The classic executor runs a round as three global barriers: throttle
//! every participant, winner-determine every occurring phrase, then
//! price/display/settle. This module partitions the phrases into
//! *shards* — each with its own resolver state (a plan-DAG slice or
//! subset merge network from the existing subset-compilation machinery)
//! and its own budget-accounting domain — and runs the round as a
//! dataflow over [`exec::shard_pipeline`]'s worker pool: while one
//! worker winner-determines shard N, another is already throttling
//! shard N+1, and a third is pricing shard N−1's outcomes into
//! [`DisplayEvent`]s. Only the final commit — RNG click-fate draws,
//! pending-ad pushes, settlement — is serial, replayed in global
//! phrase-occurrence order so the whole construction is bit-identical
//! to the sequential executor (see `budget::domain` for the
//! reconciliation invariant).
//!
//! Why this is safe, stage by stage:
//!
//! - **Throttle.** A throttled bid is a pure function of the advertiser's
//!   *global* participation count `m_i` and the *pre-round* ledger, both
//!   immutable during the pipeline. An advertiser whose interest set
//!   spans shards is throttled redundantly, once per shard, to the same
//!   value — so shard-local results merge without coordination.
//! - **Winner determination.** Each shard's resolvers are compiled over
//!   exactly its phrase subset; a phrase's auction reads only its own
//!   interest set's bids, all refreshed by the shard's throttle stage.
//!   The `ThrottleBounds` budget accessor reads ledgers *during* WD,
//!   which is why no ledger mutation may overlap the pipeline.
//! - **Settle prep.** Pricing reads effective bids, never the RNG or
//!   ledgers; each priced slot becomes a [`DisplayEvent`].
//! - **Commit.** The only RNG- and ledger-mutating stage, serial and in
//!   global order — the deterministic cross-shard budget reconciliation.

use std::time::Instant;

use parking_lot::Mutex;

use ssa_auction::ids::PhraseId;
use ssa_auction::instance::AuctionEntry;
use ssa_auction::money::Money;
use ssa_auction::pricing::price_assignment_parts;
use ssa_workload::clicks::ClickOutcome;
use ssa_workload::Workload;

use crate::budget::domain::DisplayEvent;
use crate::budget::BudgetContext;
use crate::exec;

use super::resolvers::{Resolvers, RoundContext};
use super::{
    budget_context_parts, AuctionOutcome, BudgetPolicy, Engine, EngineConfig, EngineMetrics,
    Ledgers, PendingAd, SharingStrategy, WdExec,
};

/// The static phrase → shard assignment, fixed at engine construction.
pub struct ShardPlan {
    /// Shard index per phrase.
    shard_of: Vec<usize>,
    /// Number of (non-empty) shards; empty shards are compressed away so
    /// shard indices are dense.
    count: usize,
}

impl ShardPlan {
    /// Greedily partitions the workload's phrases into at most `shards`
    /// balanced shards.
    ///
    /// Phrases are placed in descending expected weight
    /// (`search_rate · (|I_q| + 1)`, index-ascending on ties) onto the
    /// shard with the best score: current load, discounted by an
    /// affinity bonus for shards already holding a large fraction of the
    /// phrase's interest set. The bonus steers overlapping phrases
    /// together — spanning advertisers are correct either way (they are
    /// throttled redundantly per shard) but keeping them co-located
    /// avoids paying that redundancy. Fully deterministic: ties break
    /// toward the lowest shard index. Shards left empty (more shards
    /// than phrases, or extreme skew) are compressed away.
    pub fn partition(workload: &Workload, shards: usize) -> ShardPlan {
        let m = workload.phrase_count();
        let n = workload.advertiser_count();
        let shards = shards.max(1).min(m.max(1));
        let rates = workload.search_rates();
        let mut order: Vec<usize> = (0..m).collect();
        let weight =
            |q: usize| -> f64 { rates[q].max(1e-6) * (workload.interest[q].len() + 1) as f64 };
        order.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)).then(a.cmp(&b)));

        let mut shard_of = vec![0usize; m];
        let mut load = vec![0.0f64; shards];
        let mut members: Vec<Vec<bool>> = vec![vec![false; n]; shards];
        for q in order {
            let w = weight(q);
            let interest = &workload.interest[q];
            let mut best = 0usize;
            let mut best_score = f64::INFINITY;
            for s in 0..shards {
                let overlap = if interest.is_empty() {
                    0.0
                } else {
                    let shared = interest.iter().filter(|a| members[s][a.index()]).count();
                    shared as f64 / interest.len() as f64
                };
                let score = load[s] - 0.25 * w * overlap;
                if score < best_score {
                    best_score = score;
                    best = s;
                }
            }
            shard_of[q] = best;
            load[best] += w;
            for a in interest {
                members[best][a.index()] = true;
            }
        }

        // Compress empty shards so indices are dense.
        let mut used = vec![false; shards];
        for &s in &shard_of {
            used[s] = true;
        }
        let mut remap = vec![usize::MAX; shards];
        let mut count = 0;
        for s in 0..shards {
            if used[s] {
                remap[s] = count;
                count += 1;
            }
        }
        for s in &mut shard_of {
            *s = remap[*s];
        }
        ShardPlan {
            shard_of,
            count: count.max(1),
        }
    }

    /// Number of non-empty shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The shard owning phrase `q`.
    pub fn shard_of(&self, q: usize) -> usize {
        self.shard_of[q]
    }

    /// The phrase membership mask of shard `s`.
    fn subset(&self, s: usize) -> Vec<bool> {
        self.shard_of.iter().map(|&x| x == s).collect()
    }
}

/// One shard's private state: its resolvers (compiled over its phrase
/// subset) and the round-scratch buffers its pipeline chain fills.
/// Workers lock exactly one shard at a time; the main thread only locks
/// shards the pipeline has finished with.
struct ShardState {
    resolvers: Resolvers,
    /// Dense per-advertiser effective bids, persistent across rounds.
    /// Entries for advertisers not participating in this shard this
    /// round go stale; no occurring phrase of this shard can read them
    /// (a phrase's auction reads only its refreshed interest set).
    bids: Vec<Money>,
    /// This round's participants (advertisers interested in at least one
    /// occurring phrase of this shard), in discovery order.
    participants: Vec<u32>,
    /// Round stamp per advertiser backing `participants` dedup.
    stamp: Vec<u64>,
    epoch: u64,
    /// This round's outcomes, one per occurring shard phrase in order.
    outcomes: Vec<AuctionOutcome>,
    /// This round's display events, one list per outcome.
    events: Vec<Vec<DisplayEvent>>,
    /// Per-round metrics scratch, absorbed into the engine's metrics at
    /// commit time (zeroed at the start of each chain).
    metrics: EngineMetrics,
}

/// The sharded executor: the phrase partition plus per-shard state.
pub(super) struct Sharded {
    plan: ShardPlan,
    shards: Vec<Mutex<ShardState>>,
    /// Per-shard occurring-phrase lists for the current round (persistent
    /// buffers, outside the mutexes: filled by the main thread before
    /// dispatch, read-only during the pipeline).
    occ: Vec<Vec<PhraseId>>,
    /// Indices of shards with at least one occurring phrase this round.
    active: Vec<usize>,
    /// Per-shard commit cursors (reused each round).
    cursors: Vec<usize>,
}

impl Sharded {
    pub(super) fn new(workload: &Workload, config: &EngineConfig, plan: ShardPlan) -> Self {
        let n = workload.advertiser_count();
        let shards = (0..plan.count())
            .map(|s| {
                let subset = plan.subset(s);
                Mutex::new(ShardState {
                    resolvers: Resolvers::for_shard(workload, config, &subset),
                    bids: vec![Money::ZERO; n],
                    participants: Vec::new(),
                    stamp: vec![0; n],
                    epoch: 0,
                    outcomes: Vec::new(),
                    events: Vec::new(),
                    metrics: EngineMetrics::default(),
                })
            })
            .collect();
        let count = plan.count();
        Sharded {
            plan,
            shards,
            occ: (0..count).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            cursors: vec![0; count],
        }
    }

    pub(super) fn shard_count(&self) -> usize {
        self.plan.count()
    }

    /// Heap footprint of the executor's persistent hot state (per-shard
    /// resolvers, bid/stamp arrays, scratch lists) in bytes, for the
    /// memory-scaling gate.
    pub(super) fn heap_bytes(&mut self) -> usize {
        use std::mem::size_of;
        let mut total = self.plan.shard_of.capacity() * size_of::<usize>()
            + self.active.capacity() * size_of::<usize>()
            + self.cursors.capacity() * size_of::<usize>();
        for list in &self.occ {
            total += list.capacity() * size_of::<PhraseId>();
        }
        for shard in &mut self.shards {
            let state = shard.get_mut();
            total += state.resolvers.heap_bytes()
                + state.bids.capacity() * size_of::<Money>()
                + state.participants.capacity() * size_of::<u32>()
                + state.stamp.capacity() * size_of::<u64>()
                + state.outcomes.capacity() * size_of::<AuctionOutcome>()
                + state.events.capacity() * size_of::<Vec<DisplayEvent>>();
        }
        total
    }

    /// Splits the round's occurring phrases into per-shard lists and
    /// records which shards have work. Reuses every buffer.
    fn begin_round(&mut self, occurring: &[PhraseId]) {
        for list in &mut self.occ {
            list.clear();
        }
        self.active.clear();
        for &q in occurring {
            let s = self.plan.shard_of(q.index());
            if self.occ[s].is_empty() {
                self.active.push(s);
            }
            self.occ[s].push(q);
        }
        self.active.sort_unstable();
        for c in &mut self.cursors {
            *c = 0;
        }
    }
}

/// One shard's whole pipeline chain — throttle, winner determination,
/// settle prep — run on a worker thread. Reads only shared pre-round
/// state (`ledgers` via `budgets` included) plus its own locked
/// [`ShardState`]; never touches the RNG.
#[allow(clippy::too_many_arguments)]
fn run_shard_chain(
    state: &mut ShardState,
    occ: &[PhraseId],
    workload: &Workload,
    config: &EngineConfig,
    ledgers: &Ledgers,
    current_bids: &[Money],
    m_i: &[u64],
    budgets: &(dyn Fn(usize, u64) -> BudgetContext + Sync),
) {
    state.metrics = EngineMetrics::default();

    // Participants: the union of the occurring shard phrases' interest
    // sets, deduplicated by round stamp, in discovery order.
    state.epoch += 1;
    state.participants.clear();
    for &q in occ {
        for a in &workload.interest[q.index()] {
            let i = a.index();
            if state.stamp[i] != state.epoch {
                state.stamp[i] = state.epoch;
                state.participants.push(i as u32);
            }
        }
    }

    // Stage 1 — throttle the shard's participants against the global
    // participation counts and pre-round ledgers. Identical inputs to
    // the sequential stage, so a spanning advertiser gets the same
    // value in every shard that throttles it.
    let started = Instant::now();
    let policy = config.budget_policy;
    let skip_throttle =
        policy == BudgetPolicy::ThrottleBounds && config.sharing == SharingStrategy::Unshared;
    let mut exacts = 0u64;
    for &i in &state.participants {
        let i = i as usize;
        state.bids[i] = if skip_throttle {
            // The unshared bounds resolver selects winners on lazily
            // refined bounds and backfills exact bids below.
            Money::ZERO
        } else {
            match policy {
                BudgetPolicy::Ignore => {
                    if ledgers.remaining(i).is_zero() {
                        Money::ZERO
                    } else {
                        current_bids[i]
                    }
                }
                BudgetPolicy::ThrottleExact | BudgetPolicy::ThrottleBounds => {
                    exacts += 1;
                    budgets(i, m_i[i]).throttled_bid_exact()
                }
            }
        };
    }
    let throttle_nanos = started.elapsed().as_nanos();
    state.metrics.exact_throttle_evaluations += exacts;
    state.metrics.throttle_nanos += throttle_nanos;
    state.metrics.max_round_throttle_nanos = throttle_nanos;

    // Stage 2 — winner determination over the shard's resolvers. The
    // shard is the unit of parallelism: intra-resolver threads stay 1.
    let started = Instant::now();
    let ShardState {
        ref mut resolvers,
        ref mut bids,
        ref mut metrics,
        ref mut outcomes,
        ..
    } = *state;
    let ctx = RoundContext {
        workload,
        k: config.slot_factors.len(),
        wd_threads: 1,
        budget_policy: policy,
        m_i,
        budgets,
    };
    *outcomes = resolvers.resolve_round(&ctx, occ, bids, metrics);
    state.metrics.wd_nanos += started.elapsed().as_nanos();

    // Stage 3 prep — price each outcome into display events. Reads only
    // the shard's refreshed bids; RNG consumption waits for the ordered
    // commit.
    let started = Instant::now();
    state.events.clear();
    for outcome in &state.outcomes {
        let q = outcome.phrase.index();
        let entries: Vec<AuctionEntry> = workload.interest[q]
            .iter()
            .enumerate()
            .map(|(pos, &a)| {
                AuctionEntry::new(a, state.bids[a.index()], workload.phrase_factors[q][pos])
            })
            .collect();
        // Borrowed-parts pricing: the shared slot-factor table is never
        // cloned (or re-validated) per phrase.
        let priced = price_assignment_parts(
            &entries,
            &config.slot_factors,
            &outcome.assignment,
            config.pricing,
        );
        let mut events = Vec::with_capacity(priced.len());
        for slot in priced {
            let factor = workload
                .phrase_factor(outcome.phrase, slot.advertiser)
                .unwrap_or(0.0);
            let display_ctr = (factor * config.slot_factors[slot.slot.index()]).clamp(0.0, 1.0);
            events.push(DisplayEvent {
                advertiser: slot.advertiser,
                price: slot.price_per_click.round_down_to(config.billing_increment),
                display_ctr,
            });
        }
        state.events.push(events);
    }
    state.metrics.settle_nanos += started.elapsed().as_nanos();
}

/// One round of the sharded pipelined executor; bit-identical to
/// [`Engine::run_round`]'s sequential path in outcomes, effective bids,
/// and budget snapshots.
pub(super) fn run_round_sharded(engine: &mut Engine) -> Vec<AuctionOutcome> {
    engine.metrics.rounds += 1;
    let occurring = engine.sampler.next_round();
    let n = engine.workload.advertiser_count();

    // Global per-advertiser participation counts plus the deduplicated
    // participants list; `m_i` is all-zero between rounds (sparsely
    // re-zeroed at the end), so first touch doubles as dedup.
    let mut m_i = std::mem::take(&mut engine.m_i_scratch);
    let mut participants = std::mem::take(&mut engine.participants);
    participants.clear();
    for &q in &occurring {
        for a in &engine.workload.interest[q.index()] {
            let i = a.index();
            if m_i[i] == 0 {
                participants.push(i as u32);
            }
            m_i[i] += 1;
        }
    }

    // The merged effective-bid buffer the oracle seams read. Persistent:
    // resetting last round's participants' entries restores the all-zero
    // state the sequential stage-1 would start from (non-participants
    // always throttle to zero), and the shard merge below overlays only
    // nonzero values.
    let mut effective_bids = std::mem::take(&mut engine.last_effective_bids);
    effective_bids.resize(n, Money::ZERO); // first round only
    for &i in &engine.prev_participants {
        effective_bids[i as usize] = Money::ZERO;
    }

    match &mut engine.wd {
        WdExec::Sharded(sharded) => sharded.begin_round(&occurring),
        WdExec::Single(_) => unreachable!("run_round dispatches only sharded engines here"),
    }

    // The pipeline: workers drain the active shards, running each one's
    // whole chain (throttle → WD → settle prep); the main thread merges
    // shard bids into the global buffer as chains complete. Nothing in
    // here mutates ledgers or the RNG — every read (including the
    // bounds policy's mid-WD budget reads) sees pre-round state, which
    // is what makes shard scheduling order invisible.
    let pipeline_started = Instant::now();
    {
        let Engine {
            ref workload,
            ref config,
            ref ledgers,
            ref current_bids,
            ref clicker,
            ref wd,
            ..
        } = *engine;
        let WdExec::Sharded(sharded) = wd else {
            unreachable!("matched above")
        };
        let budgets = |i: usize, m: u64| budget_context_parts(ledgers, current_bids, clicker, i, m);
        let m_i = &m_i;
        exec::shard_pipeline(
            sharded.active.len(),
            config.wd_threads,
            |idx| {
                let s = sharded.active[idx];
                let mut state = sharded.shards[s].lock();
                run_shard_chain(
                    &mut state,
                    &sharded.occ[s],
                    workload,
                    config,
                    ledgers,
                    current_bids,
                    m_i,
                    &budgets,
                );
            },
            |idx, ()| {
                // Merge the shard's participant bids into the global
                // buffer. Writing only nonzero values makes the merge
                // order-independent: a zero (pre-zeroed buffer, a
                // fully throttled bid, or the bounds path's
                // not-backfilled participants) is the value the buffer
                // already holds, and any two shards that both hold an
                // advertiser computed the same value.
                let s = sharded.active[idx];
                let state = sharded.shards[s].lock();
                for &i in &state.participants {
                    let i = i as usize;
                    let bid = state.bids[i];
                    if !bid.is_zero() {
                        effective_bids[i] = bid;
                    }
                }
            },
        );
    }
    let pipeline_nanos = pipeline_started.elapsed().as_nanos();
    engine.metrics.max_round_wd_nanos = engine.metrics.max_round_wd_nanos.max(pipeline_nanos);
    engine.metrics.auctions += occurring.len() as u64;
    engine.last_effective_bids = effective_bids;

    // Commit — the serial tail. Replay every shard's outcomes and
    // display events in global phrase-occurrence order (the budget
    // reconciliation invariant, see `budget::domain`): click fates are
    // drawn and pending ads pushed exactly as the sequential executor
    // would, then settlement runs once over the reconciled ledgers.
    let started = Instant::now();
    let mut outcomes = Vec::with_capacity(occurring.len());
    {
        let WdExec::Sharded(sharded) = &mut engine.wd else {
            unreachable!("matched above")
        };
        for &s in &sharded.active {
            let state = sharded.shards[s].get_mut();
            engine.metrics.absorb(&state.metrics);
        }
        for &q in &occurring {
            let s = sharded.plan.shard_of(q.index());
            let at = sharded.cursors[s];
            sharded.cursors[s] += 1;
            let state = sharded.shards[s].get_mut();
            outcomes.push(state.outcomes[at].clone());
            for ev in &state.events[at] {
                let fate = engine.clicker.impression(ev.display_ctr);
                engine.metrics.impressions += 1;
                engine.metrics.expected_value += ev.display_ctr * ev.price.to_f64();
                engine.ledgers.push_pending(
                    ev.advertiser.index(),
                    PendingAd {
                        price: ev.price,
                        display_ctr: ev.display_ctr,
                        age: 0,
                        clicks_at_age: match fate {
                            ClickOutcome::ClickAfter { delay } => Some(delay),
                            ClickOutcome::NoClick => None,
                        },
                    },
                );
            }
        }
    }
    engine.settle_round();
    let settle_nanos = started.elapsed().as_nanos();
    engine.metrics.settle_nanos += settle_nanos;
    engine.metrics.max_round_settle_nanos = engine.metrics.max_round_settle_nanos.max(settle_nanos);

    if engine.programs.is_some() {
        engine.apply_bidding_programs(&m_i, &outcomes);
    }
    // Restore the all-zero `m_i` invariant sparsely and rotate the
    // participants lists (next round resets exactly these bid entries).
    for &i in &participants {
        m_i[i as usize] = 0;
    }
    engine.m_i_scratch = m_i;
    std::mem::swap(&mut engine.prev_participants, &mut participants);
    engine.participants = participants;
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_workload::WorkloadConfig;

    fn workload(phrases: usize, advertisers: usize, seed: u64) -> Workload {
        Workload::generate(&WorkloadConfig {
            advertisers,
            phrases,
            seed,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn partition_covers_every_phrase_with_dense_shards() {
        let w = workload(24, 100, 3);
        for shards in [1, 2, 4, 7] {
            let plan = ShardPlan::partition(&w, shards);
            assert!(plan.count() >= 1 && plan.count() <= shards.min(24));
            let mut seen = vec![false; plan.count()];
            for q in 0..24 {
                let s = plan.shard_of(q);
                assert!(s < plan.count(), "dense shard ids");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&s| s), "no empty shard survives");
        }
    }

    #[test]
    fn partition_with_more_shards_than_phrases() {
        let w = workload(3, 30, 11);
        let plan = ShardPlan::partition(&w, 16);
        // At most one shard per phrase; empty shards compressed away.
        assert!(plan.count() <= 3);
        let mut seen = vec![false; plan.count()];
        for q in 0..3 {
            seen[plan.shard_of(q)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_is_deterministic() {
        let w = workload(24, 100, 9);
        let a = ShardPlan::partition(&w, 4);
        let b = ShardPlan::partition(&w, 4);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn advertiser_spanning_every_shard_is_a_participant_everywhere() {
        // Hand-build a workload where advertiser 0 is interested in every
        // phrase: whatever the partition does, each shard's participant
        // collection must include it, and the engine must still agree
        // with the sequential executor (the redundant-throttle design).
        let mut w = workload(8, 40, 5);
        let id = ssa_auction::ids::AdvertiserId::from_index(0);
        let factor = w.advertisers[0].base_factor;
        for q in 0..8 {
            if !w.interest[q].contains(&id) {
                // Interest lists are sorted by id; index 0 goes first.
                w.interest[q].insert(0, id);
                w.phrase_factors[q].insert(0, factor);
            }
        }
        let plan = ShardPlan::partition(&w, 4);
        let shards_touched: std::collections::BTreeSet<usize> =
            (0..8).map(|q| plan.shard_of(q)).collect();
        assert!(!shards_touched.is_empty());

        let mut cfg = EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        };
        let mut sharded = Engine::new(w.clone(), cfg.clone());
        cfg.shards = 1;
        let mut seq = Engine::new(w, cfg);
        for _ in 0..6 {
            let a = sharded.run_round();
            let b = seq.run_round();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.phrase, y.phrase);
                assert_eq!(x.assignment, y.assignment);
            }
            assert_eq!(sharded.last_effective_bids(), seq.last_effective_bids());
        }
        assert_eq!(sharded.budget_snapshots(), seq.budget_snapshots());
    }

    #[test]
    fn single_phrase_collapses_to_single_executor() {
        let w = workload(1, 10, 2);
        let engine = Engine::new(
            w,
            EngineConfig {
                shards: 8,
                ..EngineConfig::default()
            },
        );
        // One phrase can only fill one shard; the engine falls back to
        // the classic executor and reports one shard.
        assert_eq!(engine.metrics().shards_resolved, 1);
    }
}
