//! Engine metrics.

use ssa_auction::money::Money;

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineMetrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Phrase auctions resolved.
    pub auctions: u64,
    /// Ads displayed.
    pub impressions: u64,
    /// Clicks that landed (within the expiry window).
    pub clicks: u64,
    /// Revenue actually collected.
    pub revenue: Money,
    /// Payments forgiven because the click landed after the budget was
    /// exhausted (the naive policy's leak; Section IV's "lost revenue").
    pub forgiven: Money,
    /// Clicks whose payment was partially or fully forgiven.
    pub clicks_beyond_budget: u64,
    /// Top-k aggregation operations performed (shared-plan strategy).
    pub aggregation_ops: u64,
    /// Advertiser entries scanned (unshared strategy).
    pub advertisers_scanned: u64,
    /// Merge-network operator invocations (shared-sort strategy).
    pub merge_invocations: u64,
    /// TA sorted-access stages (shared-sort strategy).
    pub ta_stages: u64,
    /// Throttled-bid bound evaluations (bounded budget policy).
    pub bound_evaluations: u64,
    /// Total expected value (Σ d_j · score) of the assignments made.
    pub expected_value: f64,
    /// Wall-clock time spent resolving winner determination, in
    /// nanoseconds.
    pub resolution_nanos: u128,
}

impl EngineMetrics {
    /// Merges another metrics block into this one.
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.rounds += other.rounds;
        self.auctions += other.auctions;
        self.impressions += other.impressions;
        self.clicks += other.clicks;
        self.revenue = self.revenue.saturating_add(other.revenue);
        self.forgiven = self.forgiven.saturating_add(other.forgiven);
        self.clicks_beyond_budget += other.clicks_beyond_budget;
        self.aggregation_ops += other.aggregation_ops;
        self.advertisers_scanned += other.advertisers_scanned;
        self.merge_invocations += other.merge_invocations;
        self.ta_stages += other.ta_stages;
        self.bound_evaluations += other.bound_evaluations;
        self.expected_value += other.expected_value;
        self.resolution_nanos += other.resolution_nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = EngineMetrics {
            rounds: 1,
            revenue: Money::from_units(2),
            expected_value: 1.5,
            ..Default::default()
        };
        let b = EngineMetrics {
            rounds: 2,
            revenue: Money::from_units(3),
            expected_value: 0.5,
            clicks: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.revenue, Money::from_units(5));
        assert_eq!(a.clicks, 7);
        assert!((a.expected_value - 2.0).abs() < 1e-12);
    }
}
