//! Engine metrics.

use ssa_auction::money::Money;

/// Counters accumulated over a simulation run.
///
/// Wall-clock time is recorded per round-executor stage: *throttle*
/// (effective-bid computation), *wd* (winner determination proper), and
/// *settle* (pricing, ad display, and click settlement). Each stage also
/// tracks its worst single round, so tail latency survives aggregation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineMetrics {
    /// Rounds executed.
    pub rounds: u64,
    /// Phrase auctions resolved.
    pub auctions: u64,
    /// Ads displayed.
    pub impressions: u64,
    /// Clicks that landed (within the expiry window).
    pub clicks: u64,
    /// Revenue actually collected.
    pub revenue: Money,
    /// Payments forgiven because the click landed after the budget was
    /// exhausted (the naive policy's leak; Section IV's "lost revenue").
    pub forgiven: Money,
    /// Clicks whose payment was partially or fully forgiven.
    pub clicks_beyond_budget: u64,
    /// Top-k aggregation operations performed (shared-plan strategy).
    pub aggregation_ops: u64,
    /// Advertiser entries scanned (unshared strategy).
    pub advertisers_scanned: u64,
    /// Merge-network operator invocations (shared-sort strategy): one per
    /// item a merge operator sends upstream, the cost the Section III-B
    /// model bounds by `Σ_v |I_v|`. With the persistent network this
    /// counts only *newly merged* items — prefixes cached from earlier
    /// rounds are re-read for free — so it is expected to be far below a
    /// fresh-per-round engine's count (that gap is the perf win, see
    /// `sort_cache_items_reused`). Deterministic for a given workload and
    /// seed; identical across `ta_threads`/`wd_threads` settings.
    pub merge_invocations: u64,
    /// TA sorted-access stages (shared-sort strategy): total depth both
    /// of TA's sorted lists were consumed to, summed over phrase
    /// auctions. Depends only on stream contents, so it is identical
    /// whether the network is fresh or persistent, sequential or
    /// concurrent.
    pub ta_stages: u64,
    /// Persistent-network nodes invalidated by cross-round refresh
    /// (shared-sort strategy): changed leaves plus every merge operator
    /// in their dirty cones, summed over rounds. The first round counts
    /// the whole network (everything is built dirty). Deterministic;
    /// identical across thread counts.
    pub sort_nodes_invalidated: u64,
    /// Cached merge-network items that survived refresh (shared-sort
    /// strategy): Σ over rounds of the items still cached after dirty-cone
    /// invalidation — merged prefixes the round's TA re-consumes without
    /// re-merging. Zero on the first round. Deterministic; identical
    /// across thread counts.
    pub sort_cache_items_reused: u64,
    /// Phrase auctions routed to the shared aggregation plan
    /// (`SharedAggregation` routes every auction here; `Hybrid` only the
    /// separable subset).
    pub phrases_routed_plan: u64,
    /// Phrase auctions routed to the shared sort network (`SharedSort`
    /// routes every auction here; `Hybrid` only the non-separable
    /// subset).
    pub phrases_routed_sort: u64,
    /// Phrase auctions routed to the unshared per-phrase scan.
    pub phrases_routed_unshared: u64,
    /// Phrases migrated between the Hybrid resolvers by the adaptive
    /// router (plus explicit `force_hybrid_route` calls). Always zero
    /// under static routing. Online migrations are driven by measured
    /// wall-clock, so this counter — and, under `RoutingMode::Adaptive`,
    /// the `phrases_routed_*` split — is timing-dependent and zeroed by
    /// [`EngineMetrics::without_timing`].
    pub router_migrations: u64,
    /// Times the adaptive router rebuilt the Hybrid sort resolver's
    /// network: steady-state compactions onto the sort-routed subset
    /// (shedding the full-set arena's cache footprint once the route has
    /// held still), plus forced expansions when a migration entered a
    /// phrase a compacted network had dropped. Timing-driven like
    /// `router_migrations`; zeroed by [`EngineMetrics::without_timing`].
    pub router_sort_rebuilds: u64,
    /// Throttled-bid bound evaluations (bounded budget policy).
    pub bound_evaluations: u64,
    /// Exact throttled-bid computations (the Section IV convolution, or a
    /// full-depth bound refinement pinning the same value). Under
    /// `Unshared` + `ThrottleBounds` only priced winners and runners-up
    /// pay this cost; every other throttling path pays it once per
    /// participating advertiser per round.
    pub exact_throttle_evaluations: u64,
    /// Total expected value (Σ d_j · score) of the assignments made.
    pub expected_value: f64,
    /// Winner-determination worker threads actually in use, after
    /// resolving `wd_threads = 0` ("auto") to `available_parallelism()`
    /// at engine construction. Host-dependent under auto, so zeroed by
    /// [`EngineMetrics::without_timing`].
    pub wd_threads_resolved: u64,
    /// Execution shards actually in use, after resolving `shards = 0`
    /// ("auto") to `available_parallelism()` at engine construction and
    /// clamping to the phrase count. Host-dependent under auto, so
    /// zeroed by [`EngineMetrics::without_timing`].
    pub shards_resolved: u64,
    /// Wall-clock nanoseconds computing effective (throttled) bids.
    pub throttle_nanos: u128,
    /// Wall-clock nanoseconds in winner determination proper.
    pub wd_nanos: u128,
    /// Wall-clock nanoseconds in the shared-plan resolver's `resolve`
    /// (included in `wd_nanos`; under `Hybrid`, the plan-routed share of
    /// the round).
    pub wd_plan_nanos: u128,
    /// Wall-clock nanoseconds in the shared-sort resolver's `resolve`
    /// *only* — network refresh is accounted separately in
    /// `sort_refresh_nanos`, so the per-path resolver costs are directly
    /// comparable (the adaptive router's calibration signal reads these).
    /// Both are included in `wd_nanos`, which wraps the whole
    /// winner-determination stage.
    pub wd_sort_nanos: u128,
    /// Wall-clock nanoseconds in the unshared resolver (included in
    /// `wd_nanos`).
    pub wd_unshared_nanos: u128,
    /// Wall-clock nanoseconds diffing bids and refreshing the persistent
    /// merge network (`prepare`), disjoint from `wd_sort_nanos`; included
    /// in `wd_nanos`.
    pub sort_refresh_nanos: u128,
    /// Wall-clock nanoseconds pricing, displaying, and settling clicks.
    pub settle_nanos: u128,
    /// Worst single-round throttle-stage latency, in nanoseconds.
    pub max_round_throttle_nanos: u128,
    /// Worst single-round winner-determination latency, in nanoseconds.
    pub max_round_wd_nanos: u128,
    /// Worst single-round settle-stage latency, in nanoseconds.
    pub max_round_settle_nanos: u128,
}

impl EngineMetrics {
    /// Merges another metrics block into this one: counters and stage
    /// totals add, per-round maxima take the max.
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.rounds += other.rounds;
        self.auctions += other.auctions;
        self.impressions += other.impressions;
        self.clicks += other.clicks;
        self.revenue = self.revenue.saturating_add(other.revenue);
        self.forgiven = self.forgiven.saturating_add(other.forgiven);
        self.clicks_beyond_budget += other.clicks_beyond_budget;
        self.aggregation_ops += other.aggregation_ops;
        self.advertisers_scanned += other.advertisers_scanned;
        self.merge_invocations += other.merge_invocations;
        self.ta_stages += other.ta_stages;
        self.sort_nodes_invalidated += other.sort_nodes_invalidated;
        self.sort_cache_items_reused += other.sort_cache_items_reused;
        self.phrases_routed_plan += other.phrases_routed_plan;
        self.phrases_routed_sort += other.phrases_routed_sort;
        self.phrases_routed_unshared += other.phrases_routed_unshared;
        self.router_migrations += other.router_migrations;
        self.router_sort_rebuilds += other.router_sort_rebuilds;
        self.bound_evaluations += other.bound_evaluations;
        self.exact_throttle_evaluations += other.exact_throttle_evaluations;
        self.expected_value += other.expected_value;
        self.wd_threads_resolved = self.wd_threads_resolved.max(other.wd_threads_resolved);
        self.shards_resolved = self.shards_resolved.max(other.shards_resolved);
        self.throttle_nanos += other.throttle_nanos;
        self.wd_nanos += other.wd_nanos;
        self.wd_plan_nanos += other.wd_plan_nanos;
        self.wd_sort_nanos += other.wd_sort_nanos;
        self.wd_unshared_nanos += other.wd_unshared_nanos;
        self.sort_refresh_nanos += other.sort_refresh_nanos;
        self.settle_nanos += other.settle_nanos;
        self.max_round_throttle_nanos = self
            .max_round_throttle_nanos
            .max(other.max_round_throttle_nanos);
        self.max_round_wd_nanos = self.max_round_wd_nanos.max(other.max_round_wd_nanos);
        self.max_round_settle_nanos = self
            .max_round_settle_nanos
            .max(other.max_round_settle_nanos);
    }

    /// Total resolution time (throttle + winner determination), the
    /// pre-split `resolution_nanos` aggregate.
    pub fn resolution_nanos(&self) -> u128 {
        self.throttle_nanos + self.wd_nanos
    }

    /// A copy with every wall-clock field — and the timing-*driven*
    /// `router_migrations` counter — zeroed, for comparing the
    /// deterministic counters of two runs (e.g. `wd_threads` 1 vs 4)
    /// where only timing may legitimately differ. Note that under
    /// `RoutingMode::Adaptive` the `phrases_routed_plan`/`_sort` split
    /// also depends on migration history and is not comparable across
    /// runs; checks over adaptive engines compare outcomes, not routing
    /// counters.
    pub fn without_timing(&self) -> EngineMetrics {
        EngineMetrics {
            router_migrations: 0,
            router_sort_rebuilds: 0,
            wd_threads_resolved: 0,
            shards_resolved: 0,
            throttle_nanos: 0,
            wd_nanos: 0,
            wd_plan_nanos: 0,
            wd_sort_nanos: 0,
            wd_unshared_nanos: 0,
            sort_refresh_nanos: 0,
            settle_nanos: 0,
            max_round_throttle_nanos: 0,
            max_round_wd_nanos: 0,
            max_round_settle_nanos: 0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = EngineMetrics {
            rounds: 1,
            revenue: Money::from_units(2),
            expected_value: 1.5,
            ..Default::default()
        };
        let b = EngineMetrics {
            rounds: 2,
            revenue: Money::from_units(3),
            expected_value: 0.5,
            clicks: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.revenue, Money::from_units(5));
        assert_eq!(a.clicks, 7);
        assert!((a.expected_value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_stage_totals_and_maxes_round_latency() {
        let mut a = EngineMetrics {
            throttle_nanos: 10,
            wd_nanos: 100,
            settle_nanos: 5,
            max_round_throttle_nanos: 8,
            max_round_wd_nanos: 60,
            max_round_settle_nanos: 5,
            ..Default::default()
        };
        let b = EngineMetrics {
            throttle_nanos: 20,
            wd_nanos: 40,
            settle_nanos: 15,
            max_round_throttle_nanos: 20,
            max_round_wd_nanos: 40,
            max_round_settle_nanos: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.throttle_nanos, 30);
        assert_eq!(a.wd_nanos, 140);
        assert_eq!(a.settle_nanos, 20);
        assert_eq!(a.max_round_throttle_nanos, 20);
        assert_eq!(a.max_round_wd_nanos, 60);
        assert_eq!(a.max_round_settle_nanos, 5);
        assert_eq!(a.resolution_nanos(), 170);
    }

    #[test]
    fn without_timing_ignores_wall_clock_only() {
        let a = EngineMetrics {
            rounds: 3,
            clicks: 4,
            wd_nanos: 999,
            max_round_settle_nanos: 7,
            ..Default::default()
        };
        let b = EngineMetrics {
            rounds: 3,
            clicks: 4,
            wd_nanos: 123,
            throttle_nanos: 55,
            ..Default::default()
        };
        assert_ne!(a, b);
        assert_eq!(a.without_timing(), b.without_timing());
    }
}
